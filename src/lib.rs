//! # tectonic
//!
//! Umbrella crate for the reproduction of *"Towards a Tectonic Traffic
//! Shift? Investigating Apple's New Relay Network"* (Sattler, Aulbach,
//! Zirngibl, Carle — IMC 2022).
//!
//! This crate re-exports every workspace member under one roof so examples
//! and downstream users can depend on a single crate:
//!
//! * [`net`] — CIDR prefixes, prefix tries, ASNs, deterministic RNG, sim time
//! * [`dns`] — DNS wire format, EDNS0 Client Subnet, servers and resolvers
//! * [`bgp`] — RIB, AS topology, visibility history, AS populations
//! * [`geo`] — countries/cities, geohash, the Apple egress list
//! * [`quic`] — QUIC long-header subset used for ingress probing
//! * [`relay`] — the simulated iCloud Private Relay deployment
//! * [`atlas`] — the simulated RIPE-Atlas-like probe platform
//! * [`core`] — the paper's measurement toolchain and analyses
//! * [`simnet`] — deterministic fault injection between clients and servers
//! * [`engine`] — the sharded deterministic discrete-event scan engine
//!
//! On top of the re-exports, [`chaos`] wires the fault layer through the
//! full paper pipeline and checks the per-scenario invariants (see
//! `DESIGN.md` §10).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]

pub mod chaos;

pub use tectonic_atlas as atlas;
pub use tectonic_bgp as bgp;
pub use tectonic_core as core;
pub use tectonic_dns as dns;
pub use tectonic_engine as engine;
pub use tectonic_geo as geo;
pub use tectonic_net as net;
pub use tectonic_quic as quic;
pub use tectonic_relay as relay;
pub use tectonic_simnet as simnet;
