//! The chaos harness: the full paper pipeline under fault injection.
//!
//! [`run_pipeline`] executes the same sequence as
//! `examples/full_paper_run.rs` — ECS scans, client attribution, egress
//! analysis, Atlas campaigns, blocking survey, through-relay scans, QUIC
//! probing — at a reduced scale, optionally routing every client↔server
//! exchange through a [`simnet`](crate::simnet) [`FaultedChannel`]. With
//! `plan: None` the faulted wrappers are *absent entirely* (the golden
//! code path, byte-for-byte today's pipeline); with a plan, each link is
//! wrapped and every injected fault is recorded in the channel ledger.
//!
//! [`check_invariants`] then reconciles a faulted run against the same
//! seed's golden run: fault counters must equal the pipeline's own
//! skip/timeout/decode counters (no silently swallowed faults), discovery
//! totals may only shrink, and fault-invisible scenarios must reproduce
//! the golden artifacts byte-identically. The scenario registry and the
//! invariants are documented in DESIGN.md §10.
//!
//! Everything here is library code under the workspace's no-panic lint:
//! the harness must never be the thing that crashes during a chaos run.

use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr};

use crate::atlas::population::PopulationConfig;
use crate::atlas::MeasurementOutcome;
use crate::core::atlas_campaign::{AtlasCampaignReport, AtlasSetup};
use crate::core::attribution::Table2;
use crate::core::blocking::survey;
use crate::core::correlation::CorrelationReport;
use crate::core::ecs_scan::{EcsScanReport, EcsScanner};
use crate::core::egress_analysis::EgressAnalysis;
use crate::core::masque_load::{self, StormConfig};
use crate::core::quic_probe::QuicProbeReport;
use crate::core::relay_scan::{RelayScanConfig, RelayScanSeries};
use crate::core::report;
use crate::core::rotation::RotationReport;
use crate::dns::{AuthoritativeServer, DomainName, NameServer, QType, RData, Record, Zone};
use crate::engine::EngineConfig;
use crate::geo::CountryCode;
use crate::net::{Asn, Epoch, IpNet, SimClock, SimDuration, SimTime};
use crate::relay::{Deployment, DeploymentConfig, DnsMode, Domain};
use crate::simnet::{
    scenarios, Delivery, FaultPlan, FaultedChannel, FaultedServer, Link, LinkStats, RibEvent,
};

/// Sizing knobs for one chaos pipeline run. The defaults keep a full
/// scenario matrix affordable under `cargo test -q` while leaving every
/// stage with enough volume for the invariants to bite.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Deployment scale divisor (as [`DeploymentConfig::scaled`]).
    pub scale: u64,
    /// Atlas probe population.
    pub probes: usize,
    /// QUIC probing sample size.
    pub quic_sample: usize,
    /// Client pairs in the §4 CONNECT-UDP session storm.
    pub storm_clients: u32,
    /// When set, the ECS scans, Atlas campaigns, and open-DNS relay series
    /// run on the sharded discrete-event engine with this configuration;
    /// `None` (the default) is the legacy serial path, byte-for-byte.
    /// Engine runs are worker-invariant: the same seed produces the same
    /// [`ChaosRun`] for every `workers` value.
    pub engine: Option<EngineConfig>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            scale: 4096,
            probes: 400,
            quic_sample: 40,
            storm_clients: 96,
            engine: None,
        }
    }
}

/// The pipeline counters the invariants reconcile against the fault
/// ledger. Everything is a plain count so two runs compare with `==`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosMetrics {
    /// Queries sent across all ECS scans.
    pub scan_queries: u64,
    /// Dropped-reply events observed by the scanner (all scans).
    pub scan_rate_limited: u64,
    /// Scanner retries (all scans).
    pub scan_retries: u64,
    /// Subnets abandoned after the retry budget (all scans).
    pub scan_exhausted: u64,
    /// Scanner decode errors (all scans).
    pub scan_decode_errors: u64,
    /// Distinct ingress addresses per scan, in scan order (Table 1 input).
    pub table1_totals: Vec<usize>,
    /// Probes in the Atlas A campaign that timed out.
    pub mask_a_timeouts: usize,
    /// Distinct IPv4 addresses the A campaign observed.
    pub mask_a_addresses: usize,
    /// Distinct IPv6 addresses the AAAA campaign observed.
    pub aaaa_addresses: usize,
    /// Blocking-survey blocked verdicts.
    pub blocked: usize,
    /// Blocked-by-NXDOMAIN verdicts.
    pub blocked_nxdomain: usize,
    /// Blocked-by-REFUSED verdicts.
    pub blocked_refused: usize,
    /// Hijack verdicts.
    pub hijacks: usize,
    /// Failed rounds across the open-DNS relay series (operator series
    /// plus rotation series).
    pub relay_failures: u64,
    /// Failed rounds in the fixed-DNS series (no DNS path: always 0).
    pub fixed_failures: u64,
    /// Rounds the rotation series completed.
    pub rotation_rounds: usize,
    /// QUIC probes sent.
    pub quic_probed: usize,
    /// QUIC probes eaten by an injected ingress blackhole.
    pub quic_blackholed: usize,
    /// QUIC standard-Initial timeouts.
    pub quic_standard_timeouts: usize,
    /// QUIC version negotiations received.
    pub quic_negotiations: usize,
    /// Table 3 total subnet count (v4 + v6, all operators) before any flap.
    pub table3_total_subnets: u64,
    /// Table 3 total after the withdraw leg of a BGP flap.
    pub table3_post_flap: Option<u64>,
    /// Table 3 total after the restore leg of a BGP flap.
    pub table3_restored: Option<u64>,
    /// Rendered Table 3 before any flap — the byte-comparison surface the
    /// restore leg must reproduce exactly.
    pub table3_pre_flap_render: String,
    /// Rendered Table 3 after the restore leg of a BGP flap. The flap now
    /// flows through the RIB's delta overlay (no snapshot invalidation),
    /// so this must be byte-identical to the pre-flap render.
    pub table3_restored_render: Option<String>,
    /// §4 storm: sessions the clients attempted (before admission).
    pub storm_attempted: u64,
    /// §4 storm: sessions the egress opened (equals tokens issued).
    pub storm_sessions: u64,
    /// §4 storm: tokens the ingress granted.
    pub storm_tokens_issued: u64,
    /// §4 storm: admissions rejected by the per-user daily budget.
    pub storm_token_rejections: u64,
    /// §4 storm: sessions skipped for lack of an operator at the location.
    pub storm_no_operator: u64,
    /// §4 storm: peak simultaneously-open sessions.
    pub storm_peak: u64,
    /// §4 storm: datagrams clients injected into the tunnel.
    pub storm_sent: u64,
    /// §4 storm: datagrams that survived the faulted tunnel (possibly
    /// mutated).
    pub storm_forwarded: u64,
    /// §4 storm: datagrams the egress accepted as valid.
    pub storm_delivered: u64,
    /// §4 storm: datagrams dropped at the egress as undecodable.
    pub storm_session_drops: u64,
    /// §4 storm: validated echo replies back at the clients.
    pub storm_replies: u64,
    /// §4 storm: datagrams addressed to unknown/closed sessions.
    pub storm_strays: u64,
}

/// One pipeline execution: the rendered artifacts, the reconciliation
/// metrics, and the channel's fault ledger.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Concatenated rendered reports (Tables 1–4, blocking, Figure 3,
    /// rotation, correlation, QUIC) — the byte-comparison surface.
    pub artifacts: String,
    /// The reconciliation counters.
    pub metrics: ChaosMetrics,
    /// Final per-link fault ledger (empty map for golden runs).
    pub stats: BTreeMap<Link, LinkStats>,
    /// [`Link::AtlasAuth`] ledger snapshotted right after the A campaign,
    /// before the AAAA campaign reuses the link — the A-campaign
    /// invariants reconcile against this, not the final ledger.
    pub atlas_a_stats: LinkStats,
}

fn sum_scan_counters(metrics: &mut ChaosMetrics, report: &EcsScanReport) {
    metrics.scan_queries += report.queries_sent;
    metrics.scan_rate_limited += report.rate_limited;
    metrics.scan_retries += report.retries;
    metrics.scan_exhausted += report.exhausted;
    metrics.scan_decode_errors += report.decode_errors;
    metrics.table1_totals.push(report.total());
}

/// The engine-stage server list: one faulted wrapper per shard, or the
/// bare auth when no faults are active (golden engine runs). The engine
/// indexes it `shard % len`, so with one wrapper per shard each shard
/// talks to its own channel and never contends on a ledger lock.
fn engine_servers<'a>(
    wraps: &'a [FaultedServer<'a>],
    fallback: &'a (dyn NameServer + Sync),
) -> Vec<&'a (dyn NameServer + Sync)> {
    if wraps.is_empty() {
        vec![fallback]
    } else {
        wraps
            .iter()
            .map(|w| w as &(dyn NameServer + Sync))
            .collect()
    }
}

/// Routes §4 storm datagrams through the scenario's fault channels:
/// engine runs carry one channel per shard (each storm shard only ever
/// calls its own index, keeping the RNG streams worker-invariant), serial
/// runs share the main channel.
struct MasqueWire<'a> {
    channels: Vec<&'a FaultedChannel>,
}

impl masque_load::DatagramChannel for MasqueWire<'_> {
    fn transfer(&self, shard: usize, src: IpAddr, now: SimTime, wire: &[u8]) -> Option<Vec<u8>> {
        let channel = self.channels.get(shard % self.channels.len().max(1))?;
        match channel.deliver(Link::MasqueData, src, now, wire.len(), false) {
            Delivery::Deliver | Delivery::RewriteRcode(_) => Some(wire.to_vec()),
            Delivery::Drop => None,
            Delivery::Truncate(len) => {
                let mut mutated = wire.to_vec();
                mutated.truncate(len);
                Some(mutated)
            }
            Delivery::CorruptCounts => {
                // The DNS-shaped corruption stomps bytes 4..12; on a sealed
                // MASQUE datagram that lands inside the magic/seq fields,
                // so the egress detects the damage and counts a drop.
                let mut mutated = wire.to_vec();
                for byte in mutated.iter_mut().take(12).skip(4) {
                    *byte = 0xFF;
                }
                Some(mutated)
            }
        }
    }
}

fn table3_subnet_total(analysis: &EgressAnalysis<'_>) -> u64 {
    analysis
        .table3()
        .rows
        .iter()
        .map(|r| (r.v4_subnets + r.v6_subnets) as u64)
        .sum()
}

/// Runs the full paper pipeline once. `plan: None` is the golden path —
/// no wrapper types anywhere, exactly today's pipeline; `Some(plan)`
/// threads every link through a [`FaultedChannel`] seeded from `seed`.
pub fn run_pipeline(seed: u64, plan: Option<&FaultPlan>, config: &ChaosConfig) -> ChaosRun {
    let channel = plan.map(|p| FaultedChannel::new(p.clone(), seed));
    // One extra fault channel per engine shard: each shard's RNG stream
    // must depend only on (seed, shard index) — never on worker
    // interleaving — so engine runs are worker-invariant, and shards never
    // share a channel lock. The main `channel` keeps serving the serial
    // stages (control survey, QUIC, BGP feed).
    let shard_channels: Vec<FaultedChannel> = match (plan, config.engine.as_ref()) {
        (Some(p), Some(e)) => (0..e.shards.max(1))
            .map(|s| {
                let salt = (s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                FaultedChannel::new(p.clone(), seed ^ salt)
            })
            .collect(),
        _ => Vec::new(),
    };
    let mut deployment = Deployment::build(seed, DeploymentConfig::scaled(config.scale));
    let auth = deployment.auth_server_unlimited();
    let scanner = EcsScanner::default();

    let mut metrics = ChaosMetrics {
        scan_queries: 0,
        scan_rate_limited: 0,
        scan_retries: 0,
        scan_exhausted: 0,
        scan_decode_errors: 0,
        table1_totals: Vec::new(),
        mask_a_timeouts: 0,
        mask_a_addresses: 0,
        aaaa_addresses: 0,
        blocked: 0,
        blocked_nxdomain: 0,
        blocked_refused: 0,
        hijacks: 0,
        relay_failures: 0,
        fixed_failures: 0,
        rotation_rounds: 0,
        quic_probed: 0,
        quic_blackholed: 0,
        quic_standard_timeouts: 0,
        quic_negotiations: 0,
        table3_total_subnets: 0,
        table3_post_flap: None,
        table3_restored: None,
        table3_pre_flap_render: String::new(),
        table3_restored_render: None,
        storm_attempted: 0,
        storm_sessions: 0,
        storm_tokens_issued: 0,
        storm_token_rejections: 0,
        storm_no_operator: 0,
        storm_peak: 0,
        storm_sent: 0,
        storm_forwarded: 0,
        storm_delivered: 0,
        storm_session_drops: 0,
        storm_replies: 0,
        storm_strays: 0,
    };

    // ----- Table 1: ECS scans (January baseline + April default/fallback).
    let scan_wrap = channel
        .as_ref()
        .map(|c| FaultedServer::new(c, Link::ScanAuth, &auth));
    let scan_auth: &dyn NameServer = match &scan_wrap {
        Some(wrapped) => wrapped,
        None => &auth,
    };
    let scan_shards: Vec<FaultedServer<'_>> = shard_channels
        .iter()
        .map(|c| FaultedServer::new(c, Link::ScanAuth, &auth))
        .collect();
    let scan = |domain: Domain, epoch: Epoch| match config.engine.as_ref() {
        None => {
            let mut clock = SimClock::new(epoch.start());
            scanner.scan(domain.name(), scan_auth, &deployment.rib, &mut clock)
        }
        Some(e) => scanner.scan_engine_sharded(
            domain.name(),
            &engine_servers(&scan_shards, &auth),
            &deployment.rib,
            epoch.start(),
            e,
        ),
    };
    let jan = scan(Domain::MaskQuic, Epoch::Jan2022);
    let april = scan(Domain::MaskQuic, Epoch::Apr2022);
    let april_fallback = scan(Domain::MaskH2, Epoch::Apr2022);
    for scan_report in [&jan, &april, &april_fallback] {
        sum_scan_counters(&mut metrics, scan_report);
    }
    let table2 = Table2::build(&april, &deployment.aspop);
    let rows = vec![
        (Epoch::Jan2022, jan, None),
        (Epoch::Apr2022, april, Some(april_fallback)),
    ];
    let mut artifacts = report::render_table1(&rows);

    // ----- Table 2 + Tables 3/4 (pre-flap egress analysis).
    artifacts.push_str(&report::render_table2(&table2));
    {
        let analysis = EgressAnalysis::new(&deployment.egress_list, &deployment.rib);
        let table3_render = report::render_table3(&analysis.table3());
        artifacts.push_str(&table3_render);
        artifacts.push_str(&report::render_table4(&analysis.table4()));
        metrics.table3_total_subnets = table3_subnet_total(&analysis);
        metrics.table3_pre_flap_render = table3_render;
    }

    // ----- Atlas campaigns (A-link ledger snapshotted before AAAA).
    let atlas = AtlasSetup::build(
        &deployment,
        &PopulationConfig::paper().with_probes(config.probes),
        99,
    );
    let atlas_wrap = channel
        .as_ref()
        .map(|c| FaultedServer::new(c, Link::AtlasAuth, &auth));
    let atlas_auth: &dyn NameServer = match &atlas_wrap {
        Some(wrapped) => wrapped,
        None => &auth,
    };
    let atlas_shards: Vec<FaultedServer<'_>> = shard_channels
        .iter()
        .map(|c| FaultedServer::new(c, Link::AtlasAuth, &auth))
        .collect();
    let mask_campaign = |qtype: QType, seed: u64| match config.engine.as_ref() {
        None => {
            atlas.run_mask_campaign_with(atlas_auth, Domain::MaskQuic, qtype, Epoch::Apr2022, seed)
        }
        Some(e) => atlas.run_mask_campaign_engine(
            &engine_servers(&atlas_shards, &auth),
            Domain::MaskQuic,
            qtype,
            Epoch::Apr2022,
            seed,
            e,
        ),
    };
    let a_results = mask_campaign(QType::A, 1);
    let atlas_a_stats = {
        let mut stats = channel
            .as_ref()
            .map(|c| c.stats_for(Link::AtlasAuth))
            .unwrap_or_default();
        for c in &shard_channels {
            stats.absorb(&c.stats_for(Link::AtlasAuth));
        }
        stats
    };
    let aaaa_results = mask_campaign(QType::AAAA, 2);
    metrics.mask_a_timeouts = a_results
        .iter()
        .filter(|r| matches!(r.outcome, MeasurementOutcome::Timeout))
        .count();
    let a_report = AtlasCampaignReport::aggregate(&deployment, &a_results);
    let aaaa_report = AtlasCampaignReport::aggregate(&deployment, &aaaa_results);
    metrics.mask_a_addresses = a_report.v4_addresses.len();
    metrics.aaaa_addresses = aaaa_report.v6_addresses.len();

    // ----- Blocking survey (control domain on its own faultable link).
    let mut control_zone = Zone::new(DomainName::literal("atlas-measurements.net"));
    control_zone.add_record(Record::new(
        DomainName::literal("control.atlas-measurements.net"),
        300,
        RData::A(Ipv4Addr::new(93, 184, 216, 34)),
    ));
    let control_auth = AuthoritativeServer::new().with_zone(control_zone);
    let control_wrap = channel
        .as_ref()
        .map(|c| FaultedServer::new(c, Link::ControlAuth, &control_auth));
    let control_dyn: &dyn NameServer = match &control_wrap {
        Some(wrapped) => wrapped,
        None => &control_auth,
    };
    let control_results = atlas.run_control_campaign(control_dyn, Epoch::Apr2022, 3);
    let is_ingress = |addr: IpAddr| deployment.fleets.is_ingress(addr);
    let blocking = survey(&a_results, &control_results, &is_ingress);
    metrics.blocked = blocking.blocked;
    metrics.blocked_nxdomain = blocking
        .verdicts
        .get("BlockedNxDomain")
        .copied()
        .unwrap_or(0);
    metrics.blocked_refused = blocking
        .verdicts
        .get("BlockedRefused")
        .copied()
        .unwrap_or(0);
    metrics.hijacks = blocking.hijacks;
    artifacts.push_str(&report::render_blocking(&blocking));

    // ----- Figure 3 + rotation (shortened schedules, same structure).
    let vantage_ops = vec![Asn::CLOUDFLARE, Asn::AKAMAI_PR];
    let open_device =
        deployment.vantage_device(CountryCode::DE, DnsMode::Open, vantage_ops.clone());
    let forced = deployment
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)
        .first()
        .copied()
        .unwrap_or(Ipv4Addr::new(17, 0, 0, 1));
    let fixed_device =
        deployment.vantage_device(CountryCode::DE, DnsMode::Fixed(forced), vantage_ops);
    let relay_wrap = channel
        .as_ref()
        .map(|c| FaultedServer::new(c, Link::RelayDns, &auth));
    let relay_auth: &dyn NameServer = match &relay_wrap {
        Some(wrapped) => wrapped,
        None => &auth,
    };
    let start = Epoch::May2022.start();
    let operator_schedule = RelayScanConfig {
        interval: SimDuration::from_mins(5),
        duration: SimDuration::from_hours(6),
    };
    let rotation_schedule = RelayScanConfig {
        interval: SimDuration::from_secs(30),
        duration: SimDuration::from_hours(2),
    };
    let relay_shards: Vec<FaultedServer<'_>> = shard_channels
        .iter()
        .map(|c| FaultedServer::new(c, Link::RelayDns, &auth))
        .collect();
    // Engine runs assign connection ids per round: the open device's
    // counter stays untouched, so the rotation series continues at the id
    // a failure-free operator series would have reached (two per round) —
    // matching the legacy counter exactly on fault-free runs.
    let open = match config.engine.as_ref() {
        None => RelayScanSeries::run(&open_device, relay_auth, &operator_schedule, start),
        Some(e) => RelayScanSeries::run_engine(
            &open_device,
            &engine_servers(&relay_shards, &auth),
            &operator_schedule,
            start,
            0,
            e,
        ),
    };
    let fixed = RelayScanSeries::run(&fixed_device, &auth, &operator_schedule, start);
    artifacts.push_str(&report::render_fig3(&open, &fixed));
    let rotation_series = match config.engine.as_ref() {
        None => RelayScanSeries::run(&open_device, relay_auth, &rotation_schedule, start),
        Some(e) => RelayScanSeries::run_engine(
            &open_device,
            &engine_servers(&relay_shards, &auth),
            &rotation_schedule,
            start,
            2 * operator_schedule.rounds(),
            e,
        ),
    };
    let rotation = RotationReport::from_series(&rotation_series);
    artifacts.push_str(&report::render_rotation(&rotation));
    metrics.relay_failures = open.failures + rotation_series.failures;
    metrics.fixed_failures = fixed.failures;
    metrics.rotation_rounds = rotation_series.rounds.len();

    // ----- Correlation audit (deployment-level, no network traversal).
    let correlation = CorrelationReport::audit(&deployment, Epoch::Apr2022);
    artifacts.push_str(&report::render_correlation(&correlation));

    // ----- QUIC probing.
    let quic = match &channel {
        Some(c) => QuicProbeReport::probe_with(&deployment, config.quic_sample, &mut || {
            c.ingress_blackholed()
        }),
        None => QuicProbeReport::probe(&deployment, config.quic_sample),
    };
    artifacts.push_str(&report::render_quic(&quic));
    metrics.quic_probed = quic.probed;
    metrics.quic_blackholed = quic.blackholed;
    metrics.quic_standard_timeouts = quic.standard_timeouts;
    metrics.quic_negotiations = quic.negotiations;

    // ----- §4 session storm: the CONNECT-UDP data plane under the
    // scenario's tunnel faults. Admission and the CONNECT/close exchanges
    // ride the reliable stream; only the tunnelled datagrams cross
    // [`Link::MasqueData`].
    let mut storm_cfg = StormConfig::sized(config.storm_clients, 2, seed ^ 0x5E55_0104);
    // 2 rounds × 2 agents = 4 admissions per client against a budget of 3:
    // the daily budget deterministically rejects each client's last try.
    storm_cfg.per_day_tokens = 3;
    if let Some(e) = config.engine.as_ref() {
        storm_cfg.shards = e.shards.max(1);
    }
    let storm_wire = channel.as_ref().map(|c| MasqueWire {
        channels: if shard_channels.is_empty() {
            vec![c]
        } else {
            shard_channels.iter().collect()
        },
    });
    let storm = match (storm_wire.as_ref(), config.engine.as_ref()) {
        (Some(wire), Some(e)) => masque_load::run_engine(&deployment, &storm_cfg, wire, e.workers),
        (Some(wire), None) => masque_load::run_serial(&deployment, &storm_cfg, wire),
        (None, Some(e)) => masque_load::run_engine(
            &deployment,
            &storm_cfg,
            &masque_load::PerfectChannel,
            e.workers,
        ),
        (None, None) => {
            masque_load::run_serial(&deployment, &storm_cfg, &masque_load::PerfectChannel)
        }
    };
    for line in storm.render() {
        artifacts.push_str(&line);
        artifacts.push('\n');
    }
    metrics.storm_attempted = storm_cfg.attempted_sessions();
    metrics.storm_sessions = storm.sessions.len() as u64;
    metrics.storm_tokens_issued = storm.tokens_issued;
    metrics.storm_token_rejections = storm.token_rejections;
    metrics.storm_no_operator = storm.no_operator;
    metrics.storm_peak = storm.peak_concurrent;
    metrics.storm_sent = storm.datagrams_sent;
    metrics.storm_forwarded = storm.datagrams_forwarded;
    metrics.storm_delivered = storm.datagrams_delivered;
    metrics.storm_session_drops = storm.session_drops;
    metrics.storm_replies = storm.replies_received;
    metrics.storm_strays = storm.strays;

    // ----- BGP flap (after every artifact is computed): withdraw every
    // k-th egress-origin prefix over the faulted event feed, measure the
    // Table 3 shrinkage, then replay the announcements and verify exact
    // recovery.
    if let (Some(c), Some(flap)) = (&channel, plan.and_then(FaultPlan::flap)) {
        let victims: Vec<(IpNet, Asn)> = deployment
            .rib
            .iter()
            .filter(|(_, origin)| Asn::EGRESS_OPERATORS.contains(origin))
            .enumerate()
            .filter(|(i, _)| i % flap.one_in.max(1) == 0)
            .map(|(_, entry)| entry)
            .collect();
        let withdrawals: Vec<RibEvent> = victims
            .iter()
            .map(|(net, _)| RibEvent::Withdraw(*net))
            .collect();
        for event in c.feed_events(Link::BgpFeed, &withdrawals) {
            if let RibEvent::Withdraw(net) = event {
                deployment.rib.withdraw(&net);
            }
        }
        {
            let analysis = EgressAnalysis::new(&deployment.egress_list, &deployment.rib);
            metrics.table3_post_flap = Some(table3_subnet_total(&analysis));
        }
        let announcements: Vec<RibEvent> = victims
            .iter()
            .map(|(net, origin)| RibEvent::Announce(*net, *origin))
            .collect();
        for event in c.feed_events(Link::BgpFeed, &announcements) {
            if let RibEvent::Announce(net, origin) = event {
                deployment.rib.announce(net, origin);
            }
        }
        let analysis = EgressAnalysis::new(&deployment.egress_list, &deployment.rib);
        metrics.table3_restored = Some(table3_subnet_total(&analysis));
        metrics.table3_restored_render = Some(report::render_table3(&analysis.table3()));
    }

    // Fold the per-shard engine channels into the main ledger: the
    // invariants reconcile against injection totals, which are sums over
    // every channel the run touched.
    let mut stats = channel
        .as_ref()
        .map(FaultedChannel::stats)
        .unwrap_or_default();
    for c in &shard_channels {
        for (link, link_stats) in c.stats() {
            stats.entry(link).or_default().absorb(&link_stats);
        }
    }
    ChaosRun {
        artifacts,
        metrics,
        stats,
        atlas_a_stats,
    }
}

fn link_stats(run: &ChaosRun, link: Link) -> LinkStats {
    run.stats.get(&link).cloned().unwrap_or_default()
}

/// Reconciles a faulted run against the same-seed golden run, returning
/// every violated invariant as a human-readable message (empty = pass).
///
/// The universal invariants hold for every scenario; scenario-specific
/// checks (documented per scenario in DESIGN.md §10) are dispatched on the
/// name. `broken-fixture` deliberately demands zero injected scan drops
/// while its plan injects 50 % loss, so it always violates — the fixture
/// the CLI smoke test uses to prove a violated invariant fails the run.
pub fn check_invariants(scenario: &str, run: &ChaosRun, golden: &ChaosRun) -> Vec<String> {
    let mut violations = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            violations.push(msg);
        }
    };
    let m = &run.metrics;
    let g = &golden.metrics;
    let scan = link_stats(run, Link::ScanAuth);
    let relay = link_stats(run, Link::RelayDns);
    let quic = link_stats(run, Link::QuicIngress);
    let control = link_stats(run, Link::ControlAuth);
    let atlas_a = &run.atlas_a_stats;
    let plan = scenarios::by_name(scenario);
    check(plan.is_some(), format!("unknown scenario `{scenario}`"));

    // --- Universal: every drop the scanner saw is an injected fault (the
    // golden auth is unlimited: zero organic drops), every drop was either
    // retried or exhausted, and every undecodable mutation surfaced as
    // exactly one decode error.
    check(
        m.scan_rate_limited == m.scan_retries + m.scan_exhausted,
        format!(
            "scan drop ledger split: {} dropped != {} retried + {} exhausted",
            m.scan_rate_limited, m.scan_retries, m.scan_exhausted
        ),
    );
    check(
        scan.all_dropped() == m.scan_rate_limited,
        format!(
            "injected scan drops {} != scanner-observed drops {}",
            scan.all_dropped(),
            m.scan_rate_limited
        ),
    );
    check(
        scan.undecodable() == m.scan_decode_errors,
        format!(
            "injected undecodable replies {} != scanner decode errors {}",
            scan.undecodable(),
            m.scan_decode_errors
        ),
    );
    // --- Universal: faults only ever lose discovery.
    check(
        m.table1_totals.len() == g.table1_totals.len()
            && m.table1_totals
                .iter()
                .zip(&g.table1_totals)
                .all(|(faulted, golden)| faulted <= golden),
        format!(
            "Table 1 totals exceed fault-free totals: {:?} vs {:?}",
            m.table1_totals, g.table1_totals
        ),
    );
    // --- Universal: Atlas A timeouts grew by exactly the injected
    // drop/garbage count on the probe link (organic flakes are
    // seed-identical between the two runs).
    check(
        m.mask_a_timeouts as u64
            == g.mask_a_timeouts as u64 + atlas_a.all_dropped() + atlas_a.undecodable(),
        format!(
            "A-campaign timeouts {} != golden {} + injected {}",
            m.mask_a_timeouts,
            g.mask_a_timeouts,
            atlas_a.all_dropped() + atlas_a.undecodable()
        ),
    );
    // --- Universal: with a healthy control domain, the blocking survey
    // grows by exactly the injected blocking-resolver rewrites.
    let control_inert = plan
        .as_ref()
        .map(|p| p.faults_for(Link::ControlAuth).is_inert())
        .unwrap_or(true);
    if control_inert {
        check(
            m.blocked as u64 == g.blocked as u64 + atlas_a.rcode_rewritten,
            format!(
                "blocked verdicts {} != golden {} + injected rewrites {}",
                m.blocked, g.blocked, atlas_a.rcode_rewritten
            ),
        );
        check(
            m.blocked_nxdomain as u64 == g.blocked_nxdomain as u64 + atlas_a.rcode_rewritten,
            format!(
                "NXDOMAIN verdicts {} != golden {} + injected rewrites {}",
                m.blocked_nxdomain, g.blocked_nxdomain, atlas_a.rcode_rewritten
            ),
        );
    }
    // --- Universal: every failed relay round is an injected DNS fault,
    // and the fixed-DNS device (no DNS path) never fails.
    check(
        relay.all_dropped() + relay.undecodable() == m.relay_failures,
        format!(
            "injected relay-DNS faults {} != failed rounds {}",
            relay.all_dropped() + relay.undecodable(),
            m.relay_failures
        ),
    );
    check(
        m.fixed_failures == 0,
        format!("fixed-DNS series failed {} rounds", m.fixed_failures),
    );
    // --- Universal: QUIC accounting — blackholes equal injected ingress
    // drops, every probe times out on the standard Initial (blackholed or
    // not), and exactly the non-blackholed probes negotiate.
    check(
        quic.all_dropped() == m.quic_blackholed as u64,
        format!(
            "injected QUIC drops {} != blackholed probes {}",
            quic.all_dropped(),
            m.quic_blackholed
        ),
    );
    check(
        m.quic_standard_timeouts == m.quic_probed,
        format!(
            "standard-Initial timeouts {}/{} (paper behaviour must survive faults)",
            m.quic_standard_timeouts, m.quic_probed
        ),
    );
    check(
        m.quic_negotiations == m.quic_probed.saturating_sub(m.quic_blackholed),
        format!(
            "negotiations {} != probed {} - blackholed {}",
            m.quic_negotiations, m.quic_probed, m.quic_blackholed
        ),
    );
    // --- Universal: §4 storm accounting. Admission rides the reliable
    // stream, so the session/token counts are fault-independent; every
    // tunnelled datagram must reconcile as delivered, channel-dropped, or
    // egress-dropped against the [`Link::MasqueData`] ledger.
    let masque = link_stats(run, Link::MasqueData);
    check(
        m.storm_sessions == g.storm_sessions
            && m.storm_tokens_issued == g.storm_tokens_issued
            && m.storm_sent == g.storm_sent,
        format!(
            "storm admission must be fault-independent: {}/{}/{} vs golden {}/{}/{}",
            m.storm_sessions,
            m.storm_tokens_issued,
            m.storm_sent,
            g.storm_sessions,
            g.storm_tokens_issued,
            g.storm_sent
        ),
    );
    check(
        m.storm_tokens_issued + m.storm_token_rejections + m.storm_no_operator
            == m.storm_attempted,
        format!(
            "storm admissions don't partition: {} issued + {} rejected + {} no-operator != {} attempted",
            m.storm_tokens_issued, m.storm_token_rejections, m.storm_no_operator, m.storm_attempted
        ),
    );
    check(
        m.storm_sessions == m.storm_tokens_issued,
        format!(
            "every granted token must become a session report: {} sessions vs {} tokens",
            m.storm_sessions, m.storm_tokens_issued
        ),
    );
    check(
        masque.deliveries == m.storm_sent,
        format!(
            "storm datagrams bypassed the channel: {} ledger deliveries vs {} sent",
            masque.deliveries, m.storm_sent
        ),
    );
    check(
        m.storm_sent == m.storm_forwarded + masque.all_dropped(),
        format!(
            "storm channel-loss split: {} sent != {} forwarded + {} dropped",
            m.storm_sent,
            m.storm_forwarded,
            masque.all_dropped()
        ),
    );
    check(
        m.storm_forwarded == m.storm_delivered + m.storm_session_drops,
        format!(
            "storm egress split: {} forwarded != {} delivered + {} session drops",
            m.storm_forwarded, m.storm_delivered, m.storm_session_drops
        ),
    );
    check(
        m.storm_session_drops == masque.undecodable(),
        format!(
            "injected garbage {} != egress session drops {}",
            masque.undecodable(),
            m.storm_session_drops
        ),
    );
    check(
        m.storm_replies == m.storm_delivered,
        format!(
            "replies {} != delivered {} (return path is loss-free)",
            m.storm_replies, m.storm_delivered
        ),
    );
    check(
        m.storm_strays == 0,
        format!("storm produced {} stray datagrams", m.storm_strays),
    );
    // --- Universal: pre-flap Table 3 is untouched by delivery faults, and
    // a flap may only shrink it, recovering exactly on restore.
    check(
        m.table3_total_subnets == g.table3_total_subnets,
        format!(
            "pre-flap Table 3 subnets {} != golden {}",
            m.table3_total_subnets, g.table3_total_subnets
        ),
    );
    if let Some(post) = m.table3_post_flap {
        check(
            post <= g.table3_total_subnets,
            format!(
                "post-flap Table 3 subnets {} exceed fault-free {}",
                post, g.table3_total_subnets
            ),
        );
        check(
            m.table3_restored == Some(g.table3_total_subnets),
            format!(
                "restored Table 3 subnets {:?} != fault-free {}",
                m.table3_restored, g.table3_total_subnets
            ),
        );
        // The flap/restore cycle runs through the RIB's delta overlay
        // (announce/withdraw patch the frozen table in place); the
        // rendered Table 3 must come back byte-identical, not merely
        // equal in totals.
        check(
            m.table3_restored_render.as_deref() == Some(m.table3_pre_flap_render.as_str()),
            "post-restore Table 3 render is not byte-identical to the pre-flap render".to_string(),
        );
        check(
            m.table3_pre_flap_render == g.table3_pre_flap_render,
            "pre-flap Table 3 render differs from the golden run".to_string(),
        );
    }

    // --- Scenario-specific checks.
    let artifacts_identical = run.artifacts == golden.artifacts;
    match scenario {
        "baseline" => {
            check(
                artifacts_identical,
                "zero-fault run must reproduce the golden artifacts byte-identically".to_string(),
            );
            check(
                run.stats.values().all(|s| {
                    s.all_dropped() + s.undecodable() + s.rcode_rewritten + s.duplicated == 0
                }),
                "zero-fault run must inject nothing".to_string(),
            );
        }
        "lossy-resolver" | "rate-limit-storm" => {
            check(
                m.scan_exhausted == 0,
                format!(
                    "retry budget must absorb the loss, but {} subnets exhausted",
                    m.scan_exhausted
                ),
            );
            check(
                scan.all_dropped() > 0,
                "scenario injected no scan drops at all".to_string(),
            );
            check(
                artifacts_identical,
                "retried loss must leave the artifacts byte-identical".to_string(),
            );
        }
        "flaky-network" => {
            check(
                scan.duplicated + scan.reordered + scan.jitter_events > 0,
                "scenario injected no duplication/reordering/jitter".to_string(),
            );
            check(
                artifacts_identical,
                "duplication/reordering/jitter must be invisible in the artifacts".to_string(),
            );
        }
        "truncator" => check(
            scan.truncated > 0 && m.scan_decode_errors > 0,
            "scenario must surface truncated replies as decode errors".to_string(),
        ),
        "garbage-replies" => check(
            scan.corrupted > 0 && m.scan_decode_errors > 0,
            "scenario must surface corrupted replies as decode errors".to_string(),
        ),
        "blocking-resolvers" => check(
            atlas_a.rcode_rewritten > 0 && m.blocked > g.blocked,
            "scenario must convert rewritten probes into blocked verdicts".to_string(),
        ),
        "control-outage" => {
            check(
                control.blackhole_dropped > 0,
                "scenario must blackhole the control domain".to_string(),
            );
            check(
                m.blocked_refused == 0,
                format!(
                    "REFUSED without control corroboration must degrade to Broken, got {}",
                    m.blocked_refused
                ),
            );
            check(
                m.blocked == g.blocked.saturating_sub(g.blocked_refused),
                format!(
                    "blocked verdicts {} != golden {} minus uncorroborated REFUSED {}",
                    m.blocked, g.blocked, g.blocked_refused
                ),
            );
        }
        "ingress-blackhole" => check(
            m.relay_failures > 0 && m.quic_blackholed > 0,
            "scenario must fail relay rounds and blackhole QUIC probes".to_string(),
        ),
        "relay-session-storm" => {
            check(
                masque.dropped > 0 && masque.burst_dropped > 0 && masque.undecodable() > 0,
                "storm must exercise loss, rate-limit bursts, and garbage on the tunnel"
                    .to_string(),
            );
            check(
                m.storm_delivered < m.storm_sent,
                "tunnel faults must cost datagrams".to_string(),
            );
            check(
                m.storm_token_rejections > 0,
                "the per-user daily budget must bite".to_string(),
            );
        }
        "bgp-flap" => check(
            matches!(m.table3_post_flap, Some(post) if post < g.table3_total_subnets),
            format!(
                "withdrawing half the egress table must shrink Table 3: {:?} vs {}",
                m.table3_post_flap, g.table3_total_subnets
            ),
        ),
        "kitchen-sink" => check(
            scan.all_dropped() > 0
                && atlas_a.rcode_rewritten > 0
                && m.relay_failures > 0
                && m.quic_blackholed > 0
                && masque.all_dropped() > 0
                && m.table3_post_flap.is_some(),
            "kitchen-sink must exercise every fault family at once".to_string(),
        ),
        // The deliberately broken fixture: demands zero injected scan
        // drops while its plan injects 50 % loss.
        "broken-fixture" => check(
            scan.all_dropped() == 0,
            format!(
                "broken-fixture fires by design: {} injected scan drops (expected 0)",
                scan.all_dropped()
            ),
        ),
        _ => {}
    }
    violations
}
