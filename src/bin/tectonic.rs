//! `tectonic` — command-line front end to the reproduction toolchain.
//!
//! ```text
//! tectonic scan      [--scale N] [--epoch jan|feb|mar|apr] [--domain default|fallback] [--rate-limited]
//! tectonic egress    [--scale N]
//! tectonic atlas     [--scale N] [--probes N]
//! tectonic relay-scan[--scale N] [--rounds N] [--interval-secs N]
//! tectonic audit     [--scale N]
//! tectonic monitor   [--scale N]
//! tectonic qoe       [--scale N] [--samples N]
//! ```
//!
//! Every subcommand builds the deterministic deployment (seed 2022 unless
//! `--seed` is given) and prints the corresponding paper artefact.

use std::collections::HashMap;

use tectonic::core::attribution::Table2;
use tectonic::core::correlation::CorrelationReport;
use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::egress_analysis::EgressAnalysis;
use tectonic::core::load::{render_load, LoadReport};
use tectonic::core::monitor::{evolution, render_evolution};
use tectonic::core::qoe::{qoe_experiment, render_qoe};
use tectonic::core::relay_scan::{RelayScanConfig, RelayScanSeries};
use tectonic::core::report;
use tectonic::core::rotation::RotationReport;
use tectonic::geo::country::CountryCode;
use tectonic::net::{Asn, Epoch, SimClock, SimDuration};
use tectonic::relay::{Deployment, DeploymentConfig, DnsMode, Domain, LatencyModel};

/// Minimal `--key value` / `--flag` argument parser.
struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(key) = arg.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    values.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { values, flags }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

fn epoch_of_str(s: &str) -> Epoch {
    match s.to_ascii_lowercase().as_str() {
        "jan" => Epoch::Jan2022,
        "feb" => Epoch::Feb2022,
        "mar" => Epoch::Mar2022,
        "may" => Epoch::May2022,
        _ => Epoch::Apr2022,
    }
}

fn build(args: &Args) -> Deployment {
    let scale: u64 = args.get("scale", 64);
    let seed: u64 = args.get("seed", 2022);
    eprintln!("building deployment (scale 1/{scale}, seed {seed})…");
    Deployment::build(seed, DeploymentConfig::scaled(scale))
}

fn usage() -> ! {
    eprintln!(
        "usage: tectonic <scan|egress|atlas|relay-scan|audit|monitor|qoe> [options]\n\
         common options: --scale N (default 64), --seed N (default 2022)\n\
         scan      : --epoch jan|feb|mar|apr, --domain default|fallback, --rate-limited\n\
         atlas     : --probes N (default 11700)\n\
         relay-scan: --rounds N (default 288), --interval-secs N (default 300)\n\
         qoe       : --samples N (default 5000)"
    );
    std::process::exit(2);
}

fn cmd_scan(args: &Args) {
    let d = build(args);
    let epoch = epoch_of_str(&args.get_str("epoch", "apr"));
    let domain = if args.get_str("domain", "default") == "fallback" {
        Domain::MaskH2
    } else {
        Domain::MaskQuic
    };
    let auth = if args.has("rate-limited") {
        d.auth_server()
    } else {
        d.auth_server_unlimited()
    };
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(epoch.start());
    let report = scanner.scan(domain.name(), &auth, &d.rib, &mut clock);
    println!(
        "{} {} scan: {} addresses ({} Apple, {} AkamaiPR) in {} BGP prefixes",
        epoch,
        domain.label(),
        report.total(),
        report.count_for(Asn::APPLE),
        report.count_for(Asn::AKAMAI_PR),
        report.ingress_prefixes.len(),
    );
    println!(
        "{} queries sent, {} skipped by scope, {} dropped ({} retried, {} exhausted), \
         {} decode errors, {} simulated hours",
        report.queries_sent,
        report.skipped_by_scope,
        report.rate_limited,
        report.retries,
        report.exhausted,
        report.decode_errors,
        report.duration.as_secs() / 3600,
    );
    let table2 = Table2::build(&report, &d.aspop);
    print!("{}", report::render_table2(&table2));
    let load = LoadReport::build(&report, &|a| d.fleets.asn_of(std::net::IpAddr::V4(a)), 3);
    print!("{}", render_load(&load));
}

fn cmd_egress(args: &Args) {
    let d = build(args);
    // Round-trip the list through its CSV form so the run reports the same
    // rows-ok/rows-skipped statistics a real egress-list download would.
    let (parsed, stats) =
        tectonic::geo::egress::EgressList::parse_csv_lossy(&d.egress_list.to_csv());
    println!(
        "egress CSV: {} rows ok, {} rows skipped",
        stats.rows_ok, stats.rows_skipped,
    );
    let analysis = EgressAnalysis::new(&parsed, &d.rib);
    print!("{}", report::render_table3(&analysis.table3()));
    print!("{}", report::render_table4(&analysis.table4()));
    let shares = analysis.country_shares();
    println!(
        "top countries: {} {:.1}%, {} {:.1}%; blank city {:.1}%",
        shares[0].0,
        shares[0].1 * 100.0,
        shares[1].0,
        shares[1].1 * 100.0,
        analysis.blank_city_share() * 100.0,
    );
}

fn cmd_atlas(args: &Args) {
    use std::net::Ipv4Addr;
    use tectonic::atlas::population::PopulationConfig;
    use tectonic::core::atlas_campaign::{AtlasCampaignReport, AtlasSetup};
    use tectonic::core::blocking::survey;
    use tectonic::dns::server::AuthoritativeServer;
    use tectonic::dns::{DomainName, QType, RData, Record, Zone};
    let d = build(args);
    let probes: usize = args.get("probes", 11_700);
    let atlas = AtlasSetup::build(&d, &PopulationConfig::paper().with_probes(probes), 99);
    println!(
        "{} probes, public-resolver share {:.1}%",
        atlas.probes.len(),
        atlas.public_resolver_share() * 100.0
    );
    let a = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 1);
    let aaaa = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::AAAA, Epoch::Apr2022, 2);
    let a_report = AtlasCampaignReport::aggregate(&d, &a);
    let aaaa_report = AtlasCampaignReport::aggregate(&d, &aaaa);
    println!(
        "A: {} addresses; AAAA: {} addresses (Apple {}, AkamaiPR {})",
        a_report.v4_addresses.len(),
        aaaa_report.v6_addresses.len(),
        aaaa_report.v6_count_for(Asn::APPLE),
        aaaa_report.v6_count_for(Asn::AKAMAI_PR),
    );
    let mut control_zone = Zone::new(DomainName::literal("atlas-measurements.net"));
    control_zone.add_record(Record::new(
        DomainName::literal("control.atlas-measurements.net"),
        300,
        RData::A(Ipv4Addr::new(93, 184, 216, 34)),
    ));
    let control_auth = AuthoritativeServer::new().with_zone(control_zone);
    let control = atlas.run_control_campaign(&control_auth, Epoch::Apr2022, 3);
    let blocking = survey(&a, &control, &|addr| d.fleets.is_ingress(addr));
    print!("{}", report::render_blocking(&blocking));
}

fn cmd_relay_scan(args: &Args) {
    let d = build(args);
    let auth = d.auth_server_unlimited();
    let interval: u64 = args.get("interval-secs", 300);
    let rounds: u64 = args.get("rounds", 288);
    let config = RelayScanConfig {
        interval: SimDuration::from_secs(interval),
        duration: SimDuration::from_secs(interval * rounds),
    };
    let device = d.vantage_device(
        CountryCode::DE,
        DnsMode::Open,
        vec![Asn::CLOUDFLARE, Asn::AKAMAI_PR],
    );
    let series = RelayScanSeries::run(&device, &auth, &config, Epoch::May2022.start());
    println!(
        "{} rounds, {} failures, operators {:?}, {} operator changes",
        series.rounds.len(),
        series.failures,
        series
            .operators_seen()
            .iter()
            .map(|a| a.label())
            .collect::<Vec<_>>(),
        series.operator_changes().len(),
    );
    print!(
        "{}",
        report::render_rotation(&RotationReport::from_series(&series))
    );
}

fn cmd_audit(args: &Args) {
    let d = build(args);
    let audit = CorrelationReport::audit(&d, Epoch::Apr2022);
    print!("{}", report::render_correlation(&audit));
    let quic = tectonic::core::quic_probe::QuicProbeReport::probe(&d, 100);
    print!("{}", report::render_quic(&quic));
}

fn cmd_monitor(args: &Args) {
    let d = build(args);
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let scans: Vec<_> = Epoch::SCANS
        .iter()
        .map(|epoch| {
            let mut clock = SimClock::new(epoch.start());
            (
                *epoch,
                scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock),
            )
        })
        .collect();
    print!("{}", render_evolution(&evolution(&scans)));
}

fn cmd_qoe(args: &Args) {
    let d = build(args);
    let samples: usize = args.get("samples", 5_000);
    let optimised = qoe_experiment(&d, &LatencyModel::default(), samples, 7);
    let plain = qoe_experiment(
        &d,
        &LatencyModel {
            backbone_factor: 1.25,
            ..LatencyModel::default()
        },
        samples,
        7,
    );
    print!("{}", render_qoe(&optimised, &plain));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    let args = Args::parse(&argv[1..]);
    match command.as_str() {
        "scan" => cmd_scan(&args),
        "egress" => cmd_egress(&args),
        "atlas" => cmd_atlas(&args),
        "relay-scan" => cmd_relay_scan(&args),
        "audit" => cmd_audit(&args),
        "monitor" => cmd_monitor(&args),
        "qoe" => cmd_qoe(&args),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_key_values_and_flags() {
        let args = Args::parse(&argv("--scale 32 --rate-limited --epoch mar"));
        assert_eq!(args.get::<u64>("scale", 64), 32);
        assert!(args.has("rate-limited"));
        assert!(!args.has("scale"));
        assert_eq!(args.get_str("epoch", "apr"), "mar");
        assert_eq!(args.get::<u64>("missing", 7), 7);
    }

    #[test]
    fn trailing_flag_is_a_flag() {
        let args = Args::parse(&argv("--probes 100 --rate-limited"));
        assert_eq!(args.get::<usize>("probes", 0), 100);
        assert!(args.has("rate-limited"));
    }

    #[test]
    fn epoch_parsing() {
        assert_eq!(epoch_of_str("jan"), Epoch::Jan2022);
        assert_eq!(epoch_of_str("MAR"), Epoch::Mar2022);
        assert_eq!(epoch_of_str("nonsense"), Epoch::Apr2022);
        assert_eq!(epoch_of_str("may"), Epoch::May2022);
    }

    #[test]
    fn bad_numbers_fall_back_to_default() {
        let args = Args::parse(&argv("--scale banana"));
        assert_eq!(args.get::<u64>("scale", 64), 64);
    }
}
