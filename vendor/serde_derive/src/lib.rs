//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so this crate re-implements
//! the two derives the codebase uses without `syn`/`quote`: the token stream
//! is walked by hand and the generated impls are assembled as source text and
//! re-parsed. Supported shapes: non-generic structs (named, tuple, unit) and
//! enums (unit / newtype / tuple / struct variants). Supported attributes:
//! container `#[serde(transparent)]`, `#[serde(try_from = "T", into = "T")]`,
//! and field `#[serde(skip)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    skip: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consumes a run of `#[...]` attributes, folding any `serde(...)` items
    /// into `attrs` via `apply`.
    fn take_attrs(&mut self, mut apply: impl FnMut(&str, Option<&str>)) {
        while self.peek_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: expected [...] after #, got {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if inner.peek_ident("serde") {
                inner.next();
                let args = match inner.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    other => panic!("serde_derive: expected serde(...), got {other:?}"),
                };
                let mut items = Cursor::new(args.stream());
                while let Some(tok) = items.next() {
                    let key = match tok {
                        TokenTree::Ident(i) => i.to_string(),
                        TokenTree::Punct(p) if p.as_char() == ',' => continue,
                        other => panic!("serde_derive: unexpected serde attr token {other:?}"),
                    };
                    if items.peek_punct('=') {
                        items.next();
                        let val = match items.next() {
                            Some(TokenTree::Literal(l)) => {
                                let s = l.to_string();
                                s.trim_matches('"').to_string()
                            }
                            other => panic!("serde_derive: expected literal, got {other:?}"),
                        };
                        apply(&key, Some(&val));
                    } else {
                        apply(&key, None);
                    }
                }
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(super)`, ...
    fn skip_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a type (or expression) up to a top-level comma or end of input;
    /// consumes the trailing comma if present. Tracks `<`/`>` nesting so
    /// commas inside generics don't end the field.
    fn skip_to_field_end(&mut self) {
        let mut angle: i32 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(ts);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let mut skip = false;
        cur.take_attrs(|key, _| {
            if key == "skip" {
                skip = true;
            }
        });
        if cur.peek().is_none() {
            break;
        }
        cur.skip_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        if !cur.peek_punct(':') {
            panic!("serde_derive: expected `:` after field {name}");
        }
        cur.next();
        cur.skip_to_field_end();
        fields.push(Field {
            name: Some(name),
            skip,
        });
    }
    fields
}

fn parse_tuple_fields(ts: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(ts);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let mut skip = false;
        cur.take_attrs(|key, _| {
            if key == "skip" {
                skip = true;
            }
        });
        if cur.peek().is_none() {
            break;
        }
        cur.skip_visibility();
        cur.skip_to_field_end();
        fields.push(Field { name: None, skip });
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(ts);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.take_attrs(|_, _| {});
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                cur.next();
                Fields::Tuple(parse_tuple_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                cur.next();
                Fields::Named(parse_named_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Explicit discriminant (`= expr`) and/or trailing comma.
        if cur.peek_punct('=') {
            cur.next();
            cur.skip_to_field_end();
        } else if cur.peek_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(ts: TokenStream) -> Input {
    let mut cur = Cursor::new(ts);
    let mut attrs = ContainerAttrs::default();
    cur.take_attrs(|key, val| match (key, val) {
        ("transparent", None) => attrs.transparent = true,
        ("try_from", Some(v)) => attrs.try_from = Some(v.to_string()),
        ("into", Some(v)) => attrs.into = Some(v.to_string()),
        _ => {}
    });
    cur.skip_visibility();
    let kind = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if cur.peek_punct('<') {
        panic!("serde_derive: generic type {name} is not supported by the vendored derive");
    }
    let shape = match kind.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Input { name, attrs, shape }
}

// ------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = if let Some(into_ty) = &input.attrs.into {
        format!(
            "let v: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_content(&v)"
        )
    } else {
        match &input.shape {
            Shape::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
            Shape::Struct(Fields::Tuple(fields)) => {
                let live: Vec<usize> = fields
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| !f.skip)
                    .map(|(i, _)| i)
                    .collect();
                if live.len() == 1 {
                    // Newtype (and `transparent`) structs serialize as the inner value.
                    format!("::serde::Serialize::to_content(&self.{})", live[0])
                } else {
                    let items: Vec<String> = live
                        .iter()
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
            }
            Shape::Struct(Fields::Named(fields)) => {
                let live: Vec<&str> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| f.name.as_deref().unwrap())
                    .collect();
                if input.attrs.transparent && live.len() == 1 {
                    format!("::serde::Serialize::to_content(&self.{})", live[0])
                } else {
                    let items: Vec<String> = live
                        .iter()
                        .map(|n| {
                            format!(
                                "(::serde::Content::Str(\"{n}\".to_string()), \
                                 ::serde::Serialize::to_content(&self.{n}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", items.join(", "))
                }
            }
            Shape::Enum(variants) => {
                let mut arms = Vec::new();
                for v in variants {
                    let vname = &v.name;
                    let arm = match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(fields) if fields.len() == 1 => format!(
                            "{name}::{vname}(f0) => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(\"{vname}\".to_string()), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        Fields::Tuple(fields) => {
                            let binds: Vec<String> =
                                (0..fields.len()).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(\"{vname}\".to_string()), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_deref().unwrap()).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|n| {
                                    format!(
                                        "(::serde::Content::Str(\"{n}\".to_string()), \
                                         ::serde::Serialize::to_content({n}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(\"{vname}\".to_string()), \
                                 ::serde::Content::Map(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    };
                    arms.push(arm);
                }
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// `from_content` expression for one named field out of map content `{src}`.
fn named_field_expr(src: &str, field: &Field) -> String {
    let n = field.name.as_deref().unwrap();
    if field.skip {
        format!("{n}: ::std::default::Default::default(),")
    } else {
        format!(
            "{n}: match ::serde::Content::get({src}, \"{n}\") {{\n\
             Some(v) => ::serde::Deserialize::from_content(v)?,\n\
             None => ::serde::Deserialize::from_content(&::serde::Content::Null)\n\
             .map_err(|_| ::serde::DeError::custom(\"missing field `{n}`\"))?,\n\
             }},"
        )
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = if let Some(from_ty) = &input.attrs.try_from {
        format!(
            "let v: {from_ty} = ::serde::Deserialize::from_content(c)?;\n\
             ::std::convert::TryFrom::try_from(v).map_err(::serde::DeError::custom)"
        )
    } else {
        match &input.shape {
            Shape::Struct(Fields::Unit) => format!("{{ let _ = c; Ok({name}) }}"),
            Shape::Struct(Fields::Tuple(fields)) => {
                let live: Vec<usize> = fields
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| !f.skip)
                    .map(|(i, _)| i)
                    .collect();
                if live.len() == 1 && fields.len() == 1 {
                    format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
                } else {
                    let mut pre = String::from(
                        "let s = ::serde::Content::as_seq(c)\
                         .ok_or_else(|| ::serde::DeError::expected(\"sequence\", c))?;\n\
                         let mut it = s.iter();\n",
                    );
                    let mut items = Vec::new();
                    for (i, f) in fields.iter().enumerate() {
                        if f.skip {
                            items.push("::std::default::Default::default()".to_string());
                        } else {
                            pre.push_str(&format!(
                                "let f{i} = ::serde::Deserialize::from_content(\
                                 it.next().ok_or_else(|| \
                                 ::serde::DeError::custom(\"tuple too short\"))?)?;\n"
                            ));
                            items.push(format!("f{i}"));
                        }
                    }
                    format!("{pre}Ok({name}({}))", items.join(", "))
                }
            }
            Shape::Struct(Fields::Named(fields)) => {
                let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                if input.attrs.transparent && live.len() == 1 {
                    let n = live[0].name.as_deref().unwrap();
                    let defaults: Vec<String> = fields
                        .iter()
                        .filter(|f| f.skip)
                        .map(|f| {
                            format!(
                                "{}: ::std::default::Default::default(),",
                                f.name.as_deref().unwrap()
                            )
                        })
                        .collect();
                    format!(
                        "Ok({name} {{ {n}: ::serde::Deserialize::from_content(c)?, {} }})",
                        defaults.join(" ")
                    )
                } else {
                    let items: Vec<String> =
                        fields.iter().map(|f| named_field_expr("c", f)).collect();
                    format!("Ok({name} {{\n{}\n}})", items.join("\n"))
                }
            }
            Shape::Enum(variants) => {
                let mut unit_arms = Vec::new();
                let mut data_arms = Vec::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname}),"));
                        }
                        Fields::Tuple(fields) if fields.len() == 1 => {
                            data_arms.push(format!(
                                "\"{vname}\" => Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_content(v)?)),"
                            ));
                        }
                        Fields::Tuple(fields) => {
                            let mut pre = String::from(
                                "let s = ::serde::Content::as_seq(v)\
                                 .ok_or_else(|| ::serde::DeError::expected(\"sequence\", v))?;\n\
                                 let mut it = s.iter();\n",
                            );
                            let mut items = Vec::new();
                            for i in 0..fields.len() {
                                pre.push_str(&format!(
                                    "let f{i} = ::serde::Deserialize::from_content(\
                                     it.next().ok_or_else(|| \
                                     ::serde::DeError::custom(\"tuple too short\"))?)?;\n"
                                ));
                                items.push(format!("f{i}"));
                            }
                            data_arms.push(format!(
                                "\"{vname}\" => {{ {pre}Ok({name}::{vname}({})) }}",
                                items.join(", ")
                            ));
                        }
                        Fields::Named(fields) => {
                            let items: Vec<String> =
                                fields.iter().map(|f| named_field_expr("v", f)).collect();
                            data_arms.push(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{\n{}\n}}),",
                                items.join("\n")
                            ));
                        }
                    }
                }
                format!(
                    "match c {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n\
                     {unit}\n\
                     other => Err(::serde::DeError::custom(\
                     format!(\"unknown variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                     let (k, v) = &entries[0];\n\
                     let k = match k {{\n\
                     ::serde::Content::Str(s) => s.as_str(),\n\
                     other => return Err(::serde::DeError::expected(\"variant name\", other)),\n\
                     }};\n\
                     match k {{\n\
                     {data}\n\
                     other => Err(::serde::DeError::custom(\
                     format!(\"unknown variant {{other:?}}\"))),\n\
                     }}\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"enum variant\", other)),\n\
                     }}",
                    unit = unit_arms.join("\n"),
                    data = data_arms.join("\n"),
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

/// Derives `serde::Serialize` via the vendored content-tree model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` via the vendored content-tree model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
