//! Vendored minimal `proptest` shim.
//!
//! The build environment has no crates.io access, so the repository carries a
//! small deterministic property-testing harness exposing the subset of the
//! proptest API the test suites use: `proptest!` with `#![proptest_config]`,
//! `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, numeric
//! range strategies, `Just`, tuples, `prop_map` / `prop_filter`,
//! `collection::vec`, `option::of`, and a small `string_regex` subset.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test RNG (seeded from the test name and case index, so failures are
//! reproducible run-to-run) and there is no shrinking — the failing input is
//! reported as-is via the panic message.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- RNG

/// Deterministic per-case generator (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `index` of test `name` — stable across runs.
    pub fn for_case(name: &str, index: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------- errors

/// A failed assertion inside a proptest case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

// ---------------------------------------------------------------- config

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------- strategy

/// A generator of random values of type [`Strategy::Value`].
///
/// `generate` returns `None` when a `prop_filter` rejects the draw; the
/// runner retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `f` returns false.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.f)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// Numeric ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as i128).rem_euclid(span);
                Some((self.start as i128 + off) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                let off = (rng.next_u64() as i128).rem_euclid(span);
                Some((*self.start() as i128 + off) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        Some(self.start + unit * (self.end - self.start))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        Some(self.start() + unit * (self.end() - self.start()))
    }
}

/// Primitive types with a full-domain `any::<T>()` strategy.
pub trait ArbitraryPrim: Sized {
    /// A uniform draw over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryPrim for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arb_prim {
    ($($t:ty),*) => {$(
        impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrim for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl ArbitraryPrim for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of a primitive type.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$n.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J),
}

/// One boxed alternative of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> Option<V>>;

/// Type-erased alternative used by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// A union over the given closures (one per alternative).
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

/// Boxes a strategy into a [`Union`] arm.
pub fn union_arm<S: Strategy + 'static>(s: S) -> UnionArm<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

// ---------------------------------------------------------------- modules

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]; inclusive.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // Bounded retries so one unlucky rejection doesn't kill the
                // whole vector draw.
                let mut element = None;
                for _ in 0..100 {
                    if let Some(v) = self.element.generate(rng) {
                        element = Some(v);
                        break;
                    }
                }
                out.push(element?);
            }
            Some(out)
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy yielding `None` about a quarter of the time and `Some`
    /// of the inner strategy otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.below(4) == 0 {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }
}

/// Regex-shaped string strategies (small subset).
pub mod string {
    use super::{Strategy, TestRng};

    enum Atom {
        /// Characters a class can produce.
        Class(Vec<char>),
        /// A literal character.
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// See [`string_regex`].
    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    /// Regex parse error.
    #[derive(Debug)]
    pub struct Error(String);

    impl core::fmt::Display for Error {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Builds a string strategy from a simple regex: a sequence of literal
    /// characters and character classes (`[a-z0-9_-]`, ranges + literals),
    /// each optionally quantified with `{n}` or `{m,n}`. This covers the
    /// patterns the test suites use; anything fancier is a parse error.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i + 1)
                        .ok_or_else(|| Error(format!("unclosed class in {pattern:?}")))?;
                    let body = &chars[i + 1..close];
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            let (lo, hi) = (body[j], body[j + 2]);
                            if lo > hi {
                                return Err(Error(format!("bad range in {pattern:?}")));
                            }
                            for c in lo..=hi {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(body[j]);
                            j += 1;
                        }
                    }
                    if set.is_empty() {
                        return Err(Error(format!("empty class in {pattern:?}")));
                    }
                    i = close + 1;
                    Atom::Class(set)
                }
                '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                    return Err(Error(format!(
                        "unsupported regex construct {:?} in {pattern:?}",
                        chars[i]
                    )));
                }
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?;
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional {n} / {m,n} quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .ok_or_else(|| Error(format!("unclosed quantifier in {pattern:?}")))?;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((lo, hi)) = body.split_once(',') {
                    let lo = lo
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| Error(format!("bad quantifier in {pattern:?}")))?;
                    let hi = hi
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| Error(format!("bad quantifier in {pattern:?}")))?;
                    (lo, hi)
                } else {
                    let n = body
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| Error(format!("bad quantifier in {pattern:?}")))?;
                    (n, n)
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> Option<String> {
            let mut out = String::new();
            for piece in &self.pieces {
                let n = piece.min + rng.below((piece.max - piece.min) as u64 + 1) as usize;
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Lit(c) => out.push(*c),
                        Atom::Class(set) => {
                            out.push(set[rng.below(set.len() as u64) as usize]);
                        }
                    }
                }
            }
            Some(out)
        }
    }
}

// ---------------------------------------------------------------- runner

/// Draws from a strategy, retrying filter rejections.
pub fn draw<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    for _ in 0..1000 {
        if let Some(v) = strategy.generate(rng) {
            return v;
        }
    }
    panic!("proptest: strategy rejected 1000 consecutive draws");
}

/// Runs `case` for each configured case index; panics on the first failure.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    for index in 0..config.cases {
        let mut rng = TestRng::for_case(name, index);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case {index}/{} of `{name}` failed: {e}",
                config.cases
            );
        }
    }
}

// ---------------------------------------------------------------- macros

/// Defines property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::draw(&($strat), __rng);)*
                    let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// One-of strategy over the listed alternatives (uniform).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($arm)),+])
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, string};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn oneof_and_filter(v in prop_oneof![Just(1u8), Just(2u8)], e in (0u32..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(v == 1 || v == 2);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn string_regex_shapes(s in prop::string::string_regex("[a-z]{2,4}-R[0-9]{2}").unwrap()) {
            let (head, tail) = s.split_once('-').unwrap();
            prop_assert!(head.len() >= 2 && head.len() <= 4);
            prop_assert!(head.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(tail.starts_with('R'));
            prop_assert_eq!(tail.len(), 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("x", 7);
        let mut b = crate::TestRng::for_case("x", 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
