//! Vendored minimal subset of `parking_lot`: a [`Mutex`] with the
//! non-poisoning `lock()` signature, implemented over `std::sync::Mutex`.
//! The build environment has no crates.io access, so the repository carries
//! this shim; only the API surface the codebase uses is provided.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error
/// (a panicked holder simply passes the data on, like `parking_lot`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
