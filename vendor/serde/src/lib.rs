//! Vendored minimal serde shim.
//!
//! The build environment has no crates.io access, so the repository carries
//! a small self-describing serialization framework exposing the same public
//! names the codebase uses (`Serialize`, `Deserialize`, the derive macros).
//! Instead of serde's visitor-based data model, values round-trip through a
//! [`Content`] tree which `serde_json` (also vendored) prints and parses.
//! The derive macros in `serde_derive` generate `to_content`/`from_content`
//! implementations; the container attributes the codebase uses
//! (`transparent`, `try_from`/`into`, per-field `skip`) are honoured.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the intermediate form between typed data
/// and JSON text.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key → value map (keys serialize to strings in JSON).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a string key in a map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()?.iter().find_map(|(k, v)| match k {
            Content::Str(s) if s == key => Some(v),
            _ => None,
        })
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Content) -> Self {
        let kind = match found {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        };
        DeError::custom(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` to a content tree.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| DeError::custom(format!("bad integer {s:?}")))?,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| DeError::custom(format!("bad integer {s:?}")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        // JSON numbers top out at u64 here; bigger values ride as strings.
        match u64::try_from(*self) {
            Ok(v) => Content::U64(v),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::U64(v) => Ok(*v as u128),
            Content::Str(s) => s
                .parse::<u128>()
                .map_err(|_| DeError::custom(format!("bad integer {s:?}"))),
            other => Err(DeError::expected("u128", other)),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::expected("float", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::expected("char", c))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", c))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_content(c)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort by serialized form.
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Content::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Content::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", c))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::expected("tuple", c))?;
                let mut it = s.iter();
                Ok(($(
                    {
                        let _ = $n;
                        $t::from_content(
                            it.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                        )?
                    },
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

// ------------------------------------------------------------- net types

macro_rules! impl_display_fromstr {
    ($($t:ty => $what:literal),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Str(self.to_string())
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_str().ok_or_else(|| DeError::expected($what, c))?;
                s.parse::<$t>()
                    .map_err(|_| DeError::custom(format!(concat!("bad ", $what, " {:?}"), s)))
            }
        }
    )*};
}

impl_display_fromstr! {
    Ipv4Addr => "IPv4 address",
    Ipv6Addr => "IPv6 address",
    IpAddr => "IP address",
    SocketAddr => "socket address"
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-9i32).to_content()).unwrap(), -9);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
    }

    #[test]
    fn integer_keys_accept_strings() {
        // JSON object keys arrive as strings; integer key types re-parse.
        assert_eq!(u64::from_content(&Content::Str("123".into())).unwrap(), 123);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_content(&v.to_content()).unwrap(), v);
        let m: BTreeMap<u32, String> = [(1, "a".to_string()), (2, "b".to_string())].into();
        assert_eq!(
            BTreeMap::<u32, String>::from_content(&m.to_content()).unwrap(),
            m
        );
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_content(&o.to_content()).unwrap(), None);
    }

    #[test]
    fn addresses_as_strings() {
        let a: IpAddr = "17.0.0.1".parse().unwrap();
        assert_eq!(a.to_content(), Content::Str("17.0.0.1".into()));
        assert_eq!(IpAddr::from_content(&a.to_content()).unwrap(), a);
    }
}
