//! Vendored minimal `serde_json`: JSON text ⇄ the vendored serde shim's
//! [`serde::Content`] tree. The build environment has no crates.io access,
//! so only the surface the codebase uses is provided: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and a [`Value`] type with string
//! indexing and integer comparison for test assertions.

#![forbid(unsafe_code)]

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- printing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        // Real serde_json refuses non-finite floats; emit null like its
        // `Value` printer does.
        "null".to_string()
    }
}

/// JSON object keys must be strings; renders scalars to their key form.
fn key_string(c: &Content) -> String {
    match c {
        Content::Str(s) => s.clone(),
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        Content::F64(v) => fmt_f64(*v),
        other => format!("{other:?}"),
    }
}

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&fmt_f64(*v)),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(&key_string(k), out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(&key_string(k), out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serializes `value` to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                other.map(|c| c as char)
            ))),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|v| i64::try_from(v).ok())
                .map(|v| Content::I64(-v))
                .ok_or_else(|| Error::new(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new("bad literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new("bad literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new("bad literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        other => {
                            return Err(Error::new(format!("expected ',' or ']', found {other:?}")))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Content::Str(key), value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}', found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!("unexpected byte {:?}", b as char))),
        }
    }
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------- Value

/// A parsed JSON value, for structural assertions in tests.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (normalized through [`Content`]).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn from_inner(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::Number(*v as f64),
            Content::I64(v) => Value::Number(*v as f64),
            Content::F64(v) => Value::Number(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_inner).collect()),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (key_string(k), Value::from_inner(v)))
                    .collect(),
            ),
        }
    }

    /// Object member by key, or [`Value::Null`] when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as f64, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric content as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(v) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Self, DeError> {
        Ok(Value::from_inner(c))
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(v) => {
                if v.fract() == 0.0 && *v >= 0.0 && *v < u64::MAX as f64 {
                    Content::U64(*v as u64)
                } else if v.fract() == 0.0 && *v < 0.0 && *v > i64::MIN as f64 {
                    Content::I64(*v as i64)
                } else {
                    Content::F64(*v)
                }
            }
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(|v| v.to_content()).collect()),
            Value::Object(entries) => Content::Map(
                entries
                    .iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                    .collect(),
            ),
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(v) if *v == *other as f64)
            }
        }

        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&self.to_content(), &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&"a\"b").unwrap(), r#""a\"b""#);
        assert_eq!(from_str::<String>(r#""a\"b""#).unwrap(), "a\"b");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u8, 2, 3];
        let j = to_string(&v).unwrap();
        assert_eq!(j, "[1,2,3]");
        assert_eq!(from_str::<Vec<u8>>(&j).unwrap(), v);

        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_string());
        let j = to_string(&m).unwrap();
        assert_eq!(j, r#"{"7":"x"}"#);
        assert_eq!(from_str::<BTreeMap<u32, String>>(&j).unwrap(), m);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v: Value = from_str(r#"{"count": 6, "name": "relay", "xs": [1, 2]}"#).unwrap();
        assert_eq!(v["count"], 6);
        assert_eq!(v["name"], "relay");
        assert_eq!(v["xs"][1], 2);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u8];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("nope").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
