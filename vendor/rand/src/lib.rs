//! Vendored minimal subset of the `rand` crate: the [`RngCore`] trait and
//! its [`Error`] type. The simulation implements its own xoshiro256++
//! generator (`tectonic_net::SimRng`) and only needs the trait so standard
//! adapters keep working; the build environment has no crates.io access.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations (never produced by `SimRng`).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Wraps a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible for deterministic generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
