//! Vendored minimal subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the repository
//! vendors the small slice of the `bytes` API it actually uses: a growable
//! byte buffer ([`BytesMut`]) plus the [`Buf`]/[`BufMut`] read/write traits.
//! Semantics match the upstream crate for the covered surface.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Read access to a byte cursor: big-endian integer reads that advance.
pub trait Buf {
    /// Remaining readable bytes.
    fn remaining(&self) -> usize;
    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16` and advances.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        *self = &self[2..];
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes([self[0], self[1], self[2], self[3]]);
        *self = &self[4..];
        v
    }
}

/// Write access: big-endian integer and slice appends.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable, reusable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Clears the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consumes the buffer, yielding the underlying `Vec`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { inner: v.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.inner.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_index() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0xBEEF);
        b.put_u8(7);
        b.put_u32(0x01020304);
        b.put_slice(&[9, 9]);
        assert_eq!(b.len(), 9);
        assert_eq!(&b[0..2], &[0xBE, 0xEF]);
        b[0..2].copy_from_slice(&[0, 1]);
        assert_eq!(b.to_vec()[..3], [0, 1, 7]);
    }

    #[test]
    fn buf_reads_advance() {
        let data = [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u16(), 0xDEAD);
        assert_eq!(s.get_u32(), 0xBEEF0102);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(&[1; 40]);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }
}
