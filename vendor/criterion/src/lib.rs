//! Vendored minimal `criterion` shim.
//!
//! The build environment has no crates.io access, so the repository carries a
//! small wall-clock benchmark harness exposing the criterion API surface the
//! bench suites use: `Criterion::benchmark_group`, `BenchmarkGroup` with
//! `sample_size` / `bench_function` / `finish`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark is calibrated so one sample takes roughly 10 ms, then
//! `sample_size` samples are timed and per-iteration min / mean / median are
//! printed. When the `BENCH_JSON` environment variable names a file, results
//! are appended to it as JSON lines for downstream tooling.

#![forbid(unsafe_code)]
// Wall-clock timing is this shim's whole job; the SimClock policy in
// clippy.toml does not apply to the bench harness.
#![allow(clippy::disallowed_methods)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (ignored: every invocation is
/// setup + routine, timed around the routine only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// An opaque hint that reads/writes through it must be treated as observable
/// side effects (best-effort without inline asm).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 100,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(stats) => {
                println!(
                    "  {:<40} min {:>12} mean {:>12} median {:>12} ({} samples x {} iters)",
                    id,
                    format_ns(stats.min_ns),
                    format_ns(stats.mean_ns),
                    format_ns(stats.median_ns),
                    self.sample_size,
                    stats.iters_per_sample,
                );
                write_json_line(&self.name, &id, &stats);
            }
            None => println!("  {id:<40} (no measurement: bencher not invoked)"),
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

struct Stats {
    min_ns: f64,
    mean_ns: f64,
    median_ns: f64,
    iters_per_sample: u64,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn write_json_line(group: &str, id: &str, stats: &Stats) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"group\":\"{group}\",\"bench\":\"{id}\",\"min_ns\":{:.1},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"iters_per_sample\":{}}}\n",
        stats.min_ns, stats.mean_ns, stats.median_ns, stats.iters_per_sample,
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: could not append to BENCH_JSON={path}: {e}");
    }
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    result: Option<Stats>,
}

/// Target wall-clock time for one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed window.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
    }

    fn run(&mut self, mut sample: impl FnMut(u64) -> Duration) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes at least ~TARGET_SAMPLE (or a single iteration exceeds it).
        let mut iters: u64 = 1;
        loop {
            let took = sample(iters);
            if took >= TARGET_SAMPLE || iters >= 1 << 20 {
                break;
            }
            let scale = TARGET_SAMPLE.as_secs_f64() / took.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.clamp(1.5, 100.0)).ceil() as u64;
        }

        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| sample(iters).as_secs_f64() * 1e9 / iters as f64)
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min_ns = per_iter_ns[0];
        let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        self.result = Some(Stats {
            min_ns,
            mean_ns,
            median_ns,
            iters_per_sample: iters,
        });
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this shim
            // runs everything and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_000_000.0), "2.00 ms");
    }
}
