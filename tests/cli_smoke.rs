//! Smoke tests for the `tectonic` CLI binary and the `xtask chaos`
//! driver.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_tectonic"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

fn run_xtask(args: &[&str]) -> (String, String, bool) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "-q", "-p", "xtask", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("xtask runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn scan_subcommand_prints_fleet() {
    let (stdout, _, ok) = run(&["scan", "--scale", "2048"]);
    assert!(ok);
    assert!(stdout.contains("Apr 2022 Default scan"));
    assert!(stdout.contains("Apple"));
    assert!(stdout.contains("AkamaiPR"));
    assert!(stdout.contains("Table 2"));
    assert!(
        stdout.contains("decode errors"),
        "scan counters surface the decode-error total: {stdout}"
    );
}

#[test]
fn egress_subcommand_prints_tables() {
    let (stdout, _, ok) = run(&["egress", "--scale", "512"]);
    assert!(ok);
    assert!(stdout.contains("Table 3"));
    assert!(stdout.contains("Table 4"));
    assert!(stdout.contains("top countries: US"));
    assert!(
        stdout.contains("rows ok, 0 rows skipped"),
        "egress CSV round-trip reports parse statistics: {stdout}"
    );
}

#[test]
fn audit_subcommand_prints_census() {
    let (stdout, _, ok) = run(&["audit", "--scale", "2048"]);
    assert!(ok);
    assert!(stdout.contains("Correlation audit"));
    assert!(stdout.contains("2021-06"));
    assert!(stdout.contains("QUIC probing"));
}

#[test]
fn qoe_subcommand_prints_comparison() {
    let (stdout, _, ok) = run(&["qoe", "--scale", "2048", "--samples", "300"]);
    assert!(ok);
    assert!(stdout.contains("QoE impact"));
    assert!(stdout.contains("median overhead"));
}

#[test]
fn chaos_scenario_prints_invariant_summary() {
    let (stdout, stderr, ok) = run_xtask(&["chaos", "--scenario", "baseline", "--seed", "1"]);
    assert!(ok, "chaos baseline failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("chaos: scenario baseline seed 1: OK"),
        "per-cell verdict line missing: {stdout}"
    );
    assert!(
        stdout.contains("invariant"),
        "invariant summary missing: {stdout}"
    );
    assert!(
        stdout.contains("chaos: 1 scenario-runs, 0 invariant violation(s)"),
        "summary line missing: {stdout}"
    );
}

#[test]
fn chaos_broken_fixture_exits_nonzero() {
    let (stdout, stderr, ok) = run_xtask(&["chaos", "--scenario", "broken-fixture", "--seed", "1"]);
    assert!(!ok, "broken fixture must fail:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("invariant violated"),
        "violation detail missing: {stdout}"
    );
    assert!(
        stdout.contains("1 invariant violation(s)"),
        "violation count missing: {stdout}"
    );
}

#[test]
fn lint_sarif_writes_valid_report() {
    let dir = std::env::temp_dir().join("tectonic-cli-smoke-sarif");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("lint.sarif");
    let path_str = path.to_str().expect("utf-8 temp path");
    let (stdout, stderr, ok) = run_xtask(&["lint", "--sarif", path_str]);
    assert!(ok, "lint --sarif failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("wrote SARIF report to"),
        "confirmation line missing: {stdout}"
    );
    let text = std::fs::read_to_string(&path).expect("SARIF file written");
    assert!(text.contains("\"version\": \"2.1.0\""));
    assert!(text.contains("\"name\": \"lintkit\""));
    // The rule table is always present, findings or not.
    assert!(text.contains("\"id\": \"map-iter-order\""));
    assert!(text.contains("\"id\": \"rng-fork-order\""));
    assert!(text.contains("\"id\": \"shard-state-escape\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_sarif_unwritable_path_fails() {
    let (stdout, stderr, ok) = run_xtask(&[
        "lint",
        "--sarif",
        "/nonexistent-smoke-dir/lint.sarif",
    ]);
    assert!(!ok, "unwritable SARIF path must fail:\n{stdout}\n{stderr}");
    assert!(
        stderr.contains("xtask lint: writing"),
        "write error missing: {stderr}"
    );
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn missing_subcommand_fails() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}
