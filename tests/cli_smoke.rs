//! Smoke tests for the `tectonic` CLI binary and the `xtask chaos`
//! driver.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;

/// Serializes the tests that invoke `xtask lint`: they share the real
/// workspace's on-disk lint cache, so concurrent runs would race the
/// hit/miss counters the assertions below pin down.
static LINT_LOCK: Mutex<()> = Mutex::new(());

fn workspace_cache() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("target/lintkit-cache.json")
}

fn run(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_tectonic"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

fn run_xtask(args: &[&str]) -> (String, String, bool) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "-q", "-p", "xtask", "--"])
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("xtask runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn scan_subcommand_prints_fleet() {
    let (stdout, _, ok) = run(&["scan", "--scale", "2048"]);
    assert!(ok);
    assert!(stdout.contains("Apr 2022 Default scan"));
    assert!(stdout.contains("Apple"));
    assert!(stdout.contains("AkamaiPR"));
    assert!(stdout.contains("Table 2"));
    assert!(
        stdout.contains("decode errors"),
        "scan counters surface the decode-error total: {stdout}"
    );
}

#[test]
fn egress_subcommand_prints_tables() {
    let (stdout, _, ok) = run(&["egress", "--scale", "512"]);
    assert!(ok);
    assert!(stdout.contains("Table 3"));
    assert!(stdout.contains("Table 4"));
    assert!(stdout.contains("top countries: US"));
    assert!(
        stdout.contains("rows ok, 0 rows skipped"),
        "egress CSV round-trip reports parse statistics: {stdout}"
    );
}

#[test]
fn audit_subcommand_prints_census() {
    let (stdout, _, ok) = run(&["audit", "--scale", "2048"]);
    assert!(ok);
    assert!(stdout.contains("Correlation audit"));
    assert!(stdout.contains("2021-06"));
    assert!(stdout.contains("QUIC probing"));
}

#[test]
fn qoe_subcommand_prints_comparison() {
    let (stdout, _, ok) = run(&["qoe", "--scale", "2048", "--samples", "300"]);
    assert!(ok);
    assert!(stdout.contains("QoE impact"));
    assert!(stdout.contains("median overhead"));
}

#[test]
fn chaos_scenario_prints_invariant_summary() {
    let (stdout, stderr, ok) = run_xtask(&["chaos", "--scenario", "baseline", "--seed", "1"]);
    assert!(ok, "chaos baseline failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("chaos: scenario baseline seed 1: OK"),
        "per-cell verdict line missing: {stdout}"
    );
    assert!(
        stdout.contains("invariant"),
        "invariant summary missing: {stdout}"
    );
    assert!(
        stdout.contains("chaos: 1 scenario-runs, 0 invariant violation(s)"),
        "summary line missing: {stdout}"
    );
}

#[test]
fn chaos_broken_fixture_exits_nonzero() {
    let (stdout, stderr, ok) = run_xtask(&["chaos", "--scenario", "broken-fixture", "--seed", "1"]);
    assert!(!ok, "broken fixture must fail:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("invariant violated"),
        "violation detail missing: {stdout}"
    );
    assert!(
        stdout.contains("1 invariant violation(s)"),
        "violation count missing: {stdout}"
    );
}

#[test]
fn lint_sarif_writes_valid_report() {
    let _guard = LINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join("tectonic-cli-smoke-sarif");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("lint.sarif");
    let path_str = path.to_str().expect("utf-8 temp path");
    let (stdout, stderr, ok) = run_xtask(&["lint", "--sarif", path_str]);
    assert!(ok, "lint --sarif failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("wrote SARIF report to"),
        "confirmation line missing: {stdout}"
    );
    let text = std::fs::read_to_string(&path).expect("SARIF file written");
    assert!(text.contains("\"version\": \"2.1.0\""));
    assert!(text.contains("\"name\": \"lintkit\""));
    // The rule table is always present, findings or not.
    assert!(text.contains("\"id\": \"map-iter-order\""));
    assert!(text.contains("\"id\": \"rng-fork-order\""));
    assert!(text.contains("\"id\": \"shard-state-escape\""));
    assert!(text.contains("\"id\": \"alloc-in-hot-path\""));
    assert!(text.contains("\"id\": \"narrowing-cast\""));
    assert!(text.contains("\"id\": \"unchecked-arith\""));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lint_sarif_unwritable_path_fails() {
    let _guard = LINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (stdout, stderr, ok) = run_xtask(&["lint", "--sarif", "/nonexistent-smoke-dir/lint.sarif"]);
    assert!(!ok, "unwritable SARIF path must fail:\n{stdout}\n{stderr}");
    assert!(
        stderr.contains("xtask lint: writing"),
        "write error missing: {stderr}"
    );
}

#[test]
fn lint_timings_reports_cold_then_warm_cache_counts() {
    let _guard = LINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cache = workspace_cache();
    let _ = fs::remove_file(&cache);
    // Cold: nothing can be served from cache, and the pass persists one.
    let (stdout, stderr, ok) = run_xtask(&["lint", "--timings"]);
    assert!(ok, "cold lint --timings failed:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("xtask lint: timings —"),
        "timings line missing: {stdout}"
    );
    assert!(
        stdout.contains("0 cache hit(s)"),
        "cold run must serve nothing from cache: {stdout}"
    );
    assert!(cache.is_file(), "lint persisted the cache");
    // Warm: every per-file result is served from the cache just written.
    let (stdout2, stderr2, ok2) = run_xtask(&["lint", "--timings"]);
    assert!(ok2, "warm lint --timings failed:\n{stdout2}\n{stderr2}");
    assert!(
        stdout2.contains("0 miss(es)"),
        "warm run must re-lint nothing: {stdout2}"
    );
}

#[test]
fn lint_discards_a_stale_or_corrupt_cache() {
    let _guard = LINT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cache = workspace_cache();
    // Ensure a cache exists, then clobber it with bytes no schema accepts —
    // the shape of a cache left by an older lintkit version.
    let (_, _, ok) = run_xtask(&["lint"]);
    assert!(ok, "seeding lint run failed");
    fs::write(&cache, "{ \"schema\": \"stale\", not even json").expect("clobber cache");
    let (stdout, stderr, ok) = run_xtask(&["lint", "--timings"]);
    assert!(
        ok,
        "lint must recover from a bad cache:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("0 cache hit(s)"),
        "a discarded cache serves nothing: {stdout}"
    );
    assert!(
        stdout.contains("xtask lint: clean"),
        "verdict unchanged by cache state: {stdout}"
    );
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

#[test]
fn missing_subcommand_fails() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}
