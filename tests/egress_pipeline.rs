//! Integration: the egress list pipeline — generation, CSV round trip,
//! per-epoch growth, RIB attribution, GeoDb adoption, analyses.

use tectonic::core::egress_analysis::EgressAnalysis;
use tectonic::geo::country::CountryCode;
use tectonic::geo::egress::EgressList;
use tectonic::geo::mmdb::GeoDb;
use tectonic::net::{Asn, Epoch};
use tectonic::relay::{Deployment, DeploymentConfig};

fn deployment() -> Deployment {
    Deployment::build(91, DeploymentConfig::scaled(16))
}

#[test]
fn csv_round_trip_preserves_the_full_list() {
    let d = deployment();
    let csv = d.egress_list.to_csv();
    let parsed = EgressList::parse_csv(&csv).expect("own CSV parses");
    assert_eq!(parsed.len(), d.egress_list.len());
    for (a, b) in parsed.entries().iter().zip(d.egress_list.entries()) {
        assert_eq!(a, b);
    }
}

#[test]
fn every_subnet_is_attributable_via_bgp() {
    let d = deployment();
    for e in d.egress_list.entries() {
        let (_, asn) = d
            .rib
            .lookup_net(&e.subnet)
            .unwrap_or_else(|| panic!("{} unrouted", e.subnet));
        assert!(
            Asn::EGRESS_OPERATORS.contains(&asn),
            "{} attributed to non-egress {asn}",
            e.subnet
        );
    }
}

#[test]
fn snapshots_grow_with_little_churn() {
    let d = deployment();
    let jan = d.egress_list_at(Epoch::Jan2022);
    let may = d.egress_list_at(Epoch::May2022);
    let growth = may.len() as f64 / jan.len() as f64 - 1.0;
    assert!((0.10..0.20).contains(&growth), "growth {growth:.3}");
    // Churn: January subnets persist into May.
    let may_subnets: std::collections::HashSet<String> =
        may.entries().iter().map(|e| e.subnet.to_string()).collect();
    let missing = jan
        .entries()
        .iter()
        .filter(|e| !may_subnets.contains(&e.subnet.to_string()))
        .count();
    assert_eq!(missing, 0, "{missing} January subnets vanished by May");
}

#[test]
fn geodb_adoption_prevents_relay_localisation() {
    // The paper's MaxMind finding: the database mirrors Apple's list, so a
    // lookup returns the *represented* location, making it useless for
    // locating the physical relay.
    let d = deployment();
    let db = GeoDb::from_egress_list(&d.egress_list);
    let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
    assert!(analysis.mmdb_adoption_share(&db) > 0.99);
    // Two subnets of the same operator in the same BGP prefix can map to
    // different countries — physically implausible, proving the data is
    // client-facing, not relay-facing.
    let mut seen: std::collections::HashMap<String, CountryCode> = Default::default();
    let mut contradiction = false;
    for e in d.egress_list.entries().iter().filter(|e| e.subnet.is_v4()) {
        if let Some((prefix, _)) = d.rib.lookup_net(&e.subnet) {
            let key = prefix.to_string();
            match seen.get(&key) {
                Some(cc) if *cc != e.cc => {
                    contradiction = true;
                    break;
                }
                _ => {
                    seen.insert(key, e.cc);
                }
            }
        }
    }
    assert!(
        contradiction,
        "expected same-prefix subnets with different represented countries"
    );
}

#[test]
fn akamai_covers_superset_of_akamai_eg_countries() {
    // §4.2: "AkamaiPR covers all CCs that AkamaiEG covers plus 212 more."
    let d = deployment();
    let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
    let ccs_of = |asn: Asn| -> std::collections::BTreeSet<CountryCode> {
        d.egress_list
            .entries()
            .iter()
            .filter(|e| d.rib.lookup_net(&e.subnet).is_some_and(|(_, a)| a == asn))
            .map(|e| e.cc)
            .collect()
    };
    let pr = ccs_of(Asn::AKAMAI_PR);
    let eg = ccs_of(Asn::AKAMAI_EG);
    assert!(eg.is_subset(&pr), "AkamaiEG countries not ⊆ AkamaiPR");
    assert!(pr.len() > eg.len() + 100);
    let _ = analysis;
}

#[test]
fn egress_selector_only_serves_listed_subnets() {
    use tectonic::net::SimTime;
    let d = deployment();
    let selector = d.egress_selector();
    let listed: std::collections::HashSet<String> = d
        .egress_list
        .entries()
        .iter()
        .map(|e| e.subnet.to_string())
        .collect();
    let now = SimTime::from_ymd(2022, 5, 10);
    for key in 0..40u64 {
        for conn in 0..5u64 {
            if let Some(sel) = selector.select(key, CountryCode::US, now, conn, false) {
                assert!(
                    listed.contains(&sel.subnet.to_string()),
                    "selected {} not in the published list",
                    sel.subnet
                );
                assert!(sel.subnet.contains(sel.addr));
            }
        }
    }
}

#[test]
fn table3_row_invariants_hold_per_epoch() {
    let d = deployment();
    for epoch in [Epoch::Jan2022, Epoch::Mar2022, Epoch::May2022] {
        let list = d.egress_list_at(epoch);
        let analysis = EgressAnalysis::new(&list, &d.rib);
        let t3 = analysis.table3();
        for row in &t3.rows {
            assert!(row.v4_addresses >= row.v4_subnets as u64, "{}", row.asn);
            if row.asn == Asn::CLOUDFLARE {
                assert_eq!(row.v4_addresses, row.v4_subnets as u64);
            }
            if row.asn == Asn::FASTLY {
                assert_eq!(row.v4_addresses, 2 * row.v4_subnets as u64);
            }
            if row.asn == Asn::AKAMAI_EG {
                assert_eq!(row.v4_bgp_prefixes, 1);
            }
        }
    }
}
