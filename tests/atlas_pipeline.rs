//! Integration: the Atlas-style measurement pipeline against the relay
//! deployment — validation subset, IPv6 enumeration, blocking survey.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use tectonic::atlas::population::PopulationConfig;
use tectonic::core::atlas_campaign::{AtlasCampaignReport, AtlasSetup};
use tectonic::core::blocking::{survey, ProbeVerdict};
use tectonic::core::ecs_scan::EcsScanner;
use tectonic::dns::server::AuthoritativeServer;
use tectonic::dns::{QType, RData, Record, Zone};
use tectonic::net::{Asn, Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, Domain};

fn setup() -> (Deployment, AtlasSetup) {
    let d = Deployment::build(77, DeploymentConfig::scaled(256));
    let atlas = AtlasSetup::build(&d, &PopulationConfig::paper().with_probes(6_000), 5);
    (d, atlas)
}

fn control_auth() -> AuthoritativeServer {
    let mut zone = Zone::new("atlas-measurements.net".parse().unwrap());
    zone.add_record(Record::new(
        "control.atlas-measurements.net".parse().unwrap(),
        300,
        RData::A("93.184.216.34".parse().unwrap()),
    ));
    AuthoritativeServer::new().with_zone(zone)
}

#[test]
fn atlas_addresses_are_a_subset_of_the_ecs_scan() {
    let (d, atlas) = setup();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let ecs = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);

    let results = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 1);
    let report = AtlasCampaignReport::aggregate(&d, &results);
    let atlas_ingress: BTreeSet<Ipv4Addr> = report
        .v4_addresses
        .iter()
        .filter(|a| d.fleets.is_ingress(std::net::IpAddr::V4(**a)))
        .copied()
        .collect();
    assert!(
        atlas_ingress.is_subset(&ecs.discovered),
        "Atlas view must be contained in the ECS enumeration"
    );
    assert!(!atlas_ingress.is_empty());
}

#[test]
fn ipv6_enumeration_shape() {
    let (d, atlas) = setup();
    let results = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::AAAA, Epoch::Apr2022, 2);
    let report = AtlasCampaignReport::aggregate(&d, &results);
    // The AS split mirrors the paper: Akamai PR hosts the lion's share.
    let apple = report.v6_count_for(Asn::APPLE);
    let akamai = report.v6_count_for(Asn::AKAMAI_PR);
    // 6 k probes cover Apple's small fleet almost fully but only part of
    // AkamaiPR's; the full 11.7 k population (see the r2 bench) recovers
    // the paper's ≈3.5× ratio. The ordering must hold regardless.
    assert!(
        akamai as f64 > apple as f64 * 1.5,
        "AkamaiPR {akamai} vs Apple {apple}"
    );
    // Both operators' addresses are inside their v6 ingress prefixes.
    for (asn, addrs) in &report.v6_by_as {
        for a in addrs {
            assert_eq!(d.fleets.asn_of(std::net::IpAddr::V6(*a)), Some(*asn));
        }
    }
}

#[test]
fn blocking_survey_matches_configured_population() {
    let (d, atlas) = setup();
    let mask = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 3);
    let control = atlas.run_control_campaign(&control_auth(), Epoch::Apr2022, 4);
    let is_ingress = |addr: std::net::IpAddr| d.fleets.is_ingress(addr);
    let report = survey(&mask, &control, &is_ingress);
    // Shares within the paper's neighbourhood.
    assert!(
        (0.07..0.14).contains(&report.timeout_share),
        "timeout share {:.3}",
        report.timeout_share
    );
    assert!(
        (0.035..0.075).contains(&report.blocked_share),
        "blocked share {:.3}",
        report.blocked_share
    );
    assert_eq!(report.hijacks, 1, "exactly one hijack configured");
    // NXDOMAIN dominates the failing responses.
    let nx = report
        .rcode_breakdown
        .get("NXDOMAIN")
        .copied()
        .unwrap_or(0.0);
    assert!(nx > 0.5, "NXDOMAIN share {nx:.3}");
}

#[test]
fn classification_consistency_with_probe_policies() {
    let (d, atlas) = setup();
    let mask = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 6);
    let control = atlas.run_control_campaign(&control_auth(), Epoch::Apr2022, 7);
    let is_ingress = |addr: std::net::IpAddr| d.fleets.is_ingress(addr);
    // Re-classify each probe and compare against its configured policy.
    let control_by_id: std::collections::HashMap<u32, _> = control
        .iter()
        .map(|r| (r.probe_id, r.outcome.clone()))
        .collect();
    for (probe, result) in atlas.probes.iter().zip(&mask) {
        let verdict = tectonic::core::blocking::classify(
            &result.outcome,
            control_by_id.get(&result.probe_id).unwrap(),
            &is_ingress,
        );
        use tectonic::dns::resolver::ResolverPolicy as P;
        match probe.policy {
            P::Normal => assert!(
                matches!(verdict, ProbeVerdict::Working | ProbeVerdict::Timeout),
                "normal probe {} classified {verdict:?}",
                probe.id
            ),
            P::BlockNxDomain => assert!(matches!(
                verdict,
                ProbeVerdict::BlockedNxDomain | ProbeVerdict::Timeout
            )),
            P::BlockNoData => assert!(matches!(
                verdict,
                ProbeVerdict::BlockedNoData | ProbeVerdict::Timeout
            )),
            P::Hijack(_) => assert!(matches!(
                verdict,
                ProbeVerdict::Hijacked | ProbeVerdict::Timeout
            )),
            _ => {}
        }
    }
}

#[test]
fn whoami_reveals_resolver_identity() {
    use tectonic::atlas::whoami::whoami_server;
    use tectonic::dns::server::{NameServer, QueryContext, ServerReply};
    use tectonic::dns::{decode_message, encode_message, Message};
    let (_, atlas) = setup();
    let auth = whoami_server();
    // For each public-resolver probe, the whoami answer must be the
    // resolver's (anycast) address, not the probe's.
    for probe in atlas
        .probes
        .iter()
        .filter(|p| p.resolver_kind.is_public())
        .take(50)
    {
        let q = Message::query(1, "whoami.akamai.net".parse().unwrap(), QType::A);
        let ctx = QueryContext {
            src: probe.resolver_addr,
            now: Epoch::Apr2022.start(),
        };
        match auth.handle_query(&encode_message(&q), &ctx) {
            ServerReply::Response(bytes) => {
                let r = decode_message(&bytes).unwrap();
                assert_eq!(
                    r.a_answers().first().map(|a| std::net::IpAddr::V4(*a)),
                    Some(probe.resolver_addr)
                );
            }
            ServerReply::Dropped => panic!("whoami dropped"),
        }
    }
}
