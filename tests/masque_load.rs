//! The §4 acceptance surface: a traffic-scale CONNECT-UDP session storm
//! through the sharded engine, proven deterministic (same seed ⇒
//! byte-identical per-session metrics at any worker count) and reproducing
//! the paper's §4 findings as statistical assertions:
//!
//! 1. the egress *operator* is stable per client within a stickiness
//!    window (§4.2),
//! 2. consecutive requests rotate the egress *address* at roughly the
//!    1 − 1/pool rate the three-address geohash cells predict (§4.3),
//! 3. parallel requests (Safari + curl in flight together) get distinct
//!    addresses at roughly the same rate (§4.3).

use tectonic::core::masque_load::{run_engine, run_serial, PerfectChannel, StormConfig};
use tectonic::relay::{Deployment, DeploymentConfig};

fn deployment(seed: u64) -> Deployment {
    Deployment::build(seed, DeploymentConfig::scaled(512))
}

/// ≥2,000 concurrent sessions through the engine, byte-identical to the
/// serial driver at every worker count — the PR's headline acceptance
/// criterion.
#[test]
fn two_thousand_concurrent_sessions_run_deterministically() {
    let d = deployment(21);
    // 1200 client pairs kick within 1.2 s of each other and each session
    // lives 2.5 s: every session of a round is simultaneously open.
    let cfg = StormConfig::sized(1200, 2, 0xF00D);
    let serial = run_serial(&d, &cfg, &PerfectChannel);
    assert!(
        serial.peak_concurrent >= 2_000,
        "peak concurrency {} below the 2,000-session floor",
        serial.peak_concurrent
    );
    assert_eq!(serial.sessions.len() as u64, cfg.attempted_sessions());
    let serial_json = serde_json::to_string(&serial).expect("serialise serial report");
    for workers in [1, 2, 4] {
        let engine = run_engine(&d, &cfg, &PerfectChannel, workers);
        let engine_json = serde_json::to_string(&engine).expect("serialise engine report");
        assert_eq!(
            serial_json, engine_json,
            "{workers} workers: per-session metrics diverged from the serial driver"
        );
    }
    // Loss-free conservation at scale.
    assert_eq!(serial.datagrams_sent, serial.datagrams_delivered);
    assert_eq!(serial.replies_received, serial.datagrams_delivered);
    assert_eq!(serial.session_drops + serial.strays, 0);
}

/// The three §4 findings, pinned across three independent seeds.
#[test]
fn storm_reproduces_the_section4_findings() {
    for seed in [101, 202, 303] {
        let d = deployment(seed);
        let cfg = StormConfig::sized(300, 6, seed ^ 0x4A11);
        let report = run_serial(&d, &cfg, &PerfectChannel);
        let stats = report.rotation_stats();

        // §4.2: the egress operator is sticky — every consecutive pair of
        // one chain's sessions stays with the same operator inside the
        // stickiness window.
        assert_eq!(
            stats.operator_changes, 0,
            "seed {seed}: operator changed mid-window"
        );

        // §4.3: consecutive requests rotate the egress address at roughly
        // 1 − 1/3 (three-address cell pools, independent uniform draws).
        assert!(
            stats.consecutive_pairs >= 2_000,
            "seed {seed}: too few pairs ({}) for a stable rate",
            stats.consecutive_pairs
        );
        let consecutive = stats.consecutive_rate();
        assert!(
            (0.60..=0.74).contains(&consecutive),
            "seed {seed}: consecutive rotation rate {consecutive:.3} outside 66% ± tolerance"
        );
        // The per-session rotation counters derive the same statistic
        // independently of the report-level pairing.
        assert_eq!(stats.consecutive_rotated, report.counter_rotations());

        // §4.3: parallel requests draw distinct addresses at the same
        // rate.
        assert!(
            stats.parallel_pairs >= 1_000,
            "seed {seed}: too few parallel pairs ({})",
            stats.parallel_pairs
        );
        let parallel = stats.parallel_rate();
        assert!(
            (0.60..=0.74).contains(&parallel),
            "seed {seed}: parallel distinct rate {parallel:.3} outside 66% ± tolerance"
        );
    }
}
