//! End-to-end integration: deployment → authoritative DNS (wire level) →
//! ECS scanner → Table 1/2 analyses, cross-checked against the
//! deployment's ground truth.

use std::collections::BTreeSet;
use std::net::{IpAddr, Ipv4Addr};

use tectonic::core::attribution::Table2;
use tectonic::core::ecs_scan::{EcsScanner, ServingCategory};
use tectonic::net::{Asn, Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, Domain, ServiceSplit};

fn deployment() -> Deployment {
    Deployment::build(1234, DeploymentConfig::scaled(256))
}

#[test]
fn ecs_scan_recovers_the_exact_fleet() {
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);

    // Ground truth: the active April QUIC fleets.
    let truth: BTreeSet<Ipv4Addr> = Asn::INGRESS_OPERATORS
        .iter()
        .flat_map(|asn| {
            d.fleets
                .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, *asn)
                .to_vec()
        })
        .collect();
    assert!(
        report.discovered.is_subset(&truth),
        "scan must never invent addresses"
    );
    // At this reduced client-world scale (1/256 ≈ 46 k candidate subnets)
    // a handful of rarely-selected fleet slots can stay unsampled; the
    // 1/16-scale benchmark recovers the fleet exactly (1586/1586). Require
    // ≥99 % coverage here and the per-AS split within the same tolerance.
    let coverage = report.total() as f64 / truth.len() as f64;
    assert!(coverage > 0.99, "coverage {coverage:.4}");
    assert!(report.count_for(Asn::APPLE) >= 345);
    assert!(report.count_for(Asn::AKAMAI_PR) >= 1224);
}

#[test]
fn scan_never_reports_non_ingress_addresses() {
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    for epoch in Epoch::SCANS {
        for domain in [Domain::MaskQuic, Domain::MaskH2] {
            let mut clock = SimClock::new(epoch.start());
            let report = scanner.scan(domain.name(), &auth, &d.rib, &mut clock);
            for addr in &report.discovered {
                assert!(
                    d.fleets.is_ingress(IpAddr::V4(*addr)),
                    "{addr} reported by {domain:?}@{epoch} is not an ingress"
                );
            }
        }
    }
}

#[test]
fn table2_categories_match_world_ground_truth() {
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);

    // Every single-operator AS observed by the scan must match its
    // configured category; "both" ASes may appear single if only a few of
    // their subnets were sampled, but never the wrong single operator.
    for (asn, serving) in &report.per_client_as {
        let world_as = d.world.by_asn(*asn).expect("scanned AS exists");
        match world_as.category {
            ServiceSplit::AkamaiOnly => {
                assert_eq!(serving.category(), Some(ServingCategory::AkamaiOnly))
            }
            ServiceSplit::AppleOnly => {
                assert_eq!(serving.category(), Some(ServingCategory::AppleOnly))
            }
            ServiceSplit::Both => assert!(serving.category().is_some()),
        }
    }
}

#[test]
fn table2_subnet_totals_match_world() {
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
    let table = Table2::build(&report, &d.aspop);
    let scanned_total: u64 = table.rows.iter().map(|r| r.slash24).sum();
    // Scope crediting must recover the full /24 granularity: the scan's
    // subnet total equals the world's routed client subnets.
    assert_eq!(scanned_total, d.world.total_slash24());
    // And the overall Apple share lands near the paper's 69 %.
    let share = table.apple_subnet_share_overall();
    assert!((0.6..0.8).contains(&share), "share {share:.3}");
}

#[test]
fn fallback_catches_up_with_quic_by_april() {
    // §4.1: "only after the deployment of relays at AkamaiPR the fallback
    // relays could catch up with the QUIC relays".
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let totals: Vec<(usize, usize)> = Epoch::SCANS
        .iter()
        .map(|epoch| {
            let mut c1 = SimClock::new(epoch.start());
            let quic = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut c1);
            let mut c2 = SimClock::new(epoch.start());
            let fb = scanner.scan(Domain::MaskH2.name(), &auth, &d.rib, &mut c2);
            (quic.total(), fb.total())
        })
        .collect();
    let (quic_feb, fb_feb) = totals[1];
    let (quic_apr, fb_apr) = totals[3];
    assert!(fb_feb * 3 < quic_feb, "fallback should start far behind");
    assert!(
        fb_apr as f64 > quic_apr as f64 * 0.8,
        "fallback should catch up by April ({fb_apr} vs {quic_apr})"
    );
}

#[test]
fn rate_limited_scan_is_slow_but_complete() {
    let d = deployment();
    let scanner = EcsScanner::default();
    let fast_auth = d.auth_server_unlimited();
    let slow_auth = d.auth_server();
    let mut fast_clock = SimClock::new(Epoch::Apr2022.start());
    let fast = scanner.scan(Domain::MaskQuic.name(), &fast_auth, &d.rib, &mut fast_clock);
    let mut slow_clock = SimClock::new(Epoch::Apr2022.start());
    let slow = scanner.scan(Domain::MaskQuic.name(), &slow_auth, &d.rib, &mut slow_clock);
    assert_eq!(fast.discovered, slow.discovered);
    assert!(slow.rate_limited > 0);
    assert!(slow.duration > fast.duration);
}
