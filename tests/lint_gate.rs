//! Tier-1 lint gate from the root package, so a plain `cargo test -q` (which
//! only runs the current package's targets) still enforces the whole
//! static-analysis policy: per-file rules, call-graph reachability, and the
//! `lint-baseline.json` ratchet (no unbaselined findings, no stale entries).
//! The richer assertions live in `crates/lintkit/tests/workspace_gate.rs`.

#[test]
fn workspace_passes_lint_gate() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Err(report) = lintkit::check_workspace_gate(&root) {
        panic!("workspace lint gate failed:\n{report}");
    }
}
