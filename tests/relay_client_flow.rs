//! Integration: the client-through-relay flow — what every vantage point
//! observes, across DNS modes, plus the Appendix-B behaviours and the
//! QUIC wire interaction.

use std::collections::HashSet;
use std::net::IpAddr;

use tectonic::core::ecs_scan::EcsScanner;
use tectonic::geo::country::CountryCode;
use tectonic::net::{Asn, Epoch, SimClock, SimDuration};
use tectonic::quic::{IngressQuicBehavior, ProbeOutcome, QuicProber};
use tectonic::relay::{Deployment, DeploymentConfig, DnsMode, Domain, RequestAgent};

fn deployment() -> Deployment {
    Deployment::build(404, DeploymentConfig::scaled(128))
}

#[test]
fn isp_sees_only_ingress_server_sees_only_egress() {
    // The privacy core of the system: the client's ISP observes the
    // ingress address, the destination server observes the egress address,
    // and they are never equal nor in the same /24.
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let device = d.device_in_country(CountryCode::US, DnsMode::Open);
    for i in 0..50 {
        let now = Epoch::May2022.start() + SimDuration::from_secs(30 * i);
        let req = device.request(RequestAgent::Curl, &auth, now).unwrap();
        assert!(d.fleets.is_ingress(req.ingress), "ISP-visible address");
        assert!(
            !d.fleets.is_ingress(req.egress.addr),
            "egress is not ingress"
        );
        assert_ne!(req.ingress, req.egress.addr);
    }
}

#[test]
fn every_scanned_ingress_accepts_forced_connections() {
    // §3's fixed-DNS experiment: any address from the ECS scan works as a
    // forced ingress.
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
    for addr in report.discovered.iter().step_by(97) {
        let device = d.device_in_country(CountryCode::DE, DnsMode::Fixed(*addr));
        let req = device
            .request(RequestAgent::Safari, &auth, Epoch::May2022.start())
            .unwrap_or_else(|e| panic!("forced ingress {addr} failed: {e}"));
        assert_eq!(req.ingress, IpAddr::V4(*addr));
    }
}

#[test]
fn correlation_attack_surface_exists_in_akamai_pr() {
    // §6: a client whose connection enters an AkamaiPR ingress and leaves
    // an AkamaiPR egress is observable at both ends by one entity.
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let ingress = d
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
    let device = d.vantage_device(
        CountryCode::US,
        DnsMode::Fixed(ingress),
        vec![Asn::AKAMAI_PR],
    );
    let req = device
        .request(RequestAgent::Curl, &auth, Epoch::May2022.start())
        .unwrap();
    assert_eq!(req.ingress_asn, Some(Asn::AKAMAI_PR));
    assert_eq!(req.egress.operator, Asn::AKAMAI_PR);
    // Both endpoints resolve to AS36183 in the public RIB.
    assert!(d.in_operator_space(Asn::AKAMAI_PR, req.ingress));
    assert!(d.in_operator_space(Asn::AKAMAI_PR, req.egress.addr));
}

#[test]
fn management_connection_targets_ingress_prefix() {
    // Appendix B: after connecting, the device opens an extra QUIC
    // connection into the configured ingress's prefix.
    let d = deployment();
    let device = d.device_in_country(CountryCode::DE, DnsMode::Open);
    let ingress = d
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[3];
    let target = device.management_connection_target(ingress);
    assert_ne!(target, ingress);
    // Same /24 ⇒ same AS in the RIB.
    let (_, asn) = d.rib.lookup(IpAddr::V4(target)).unwrap();
    assert_eq!(asn, Asn::AKAMAI_PR);
    // Appendix B also identifies Cloudflare's resolver as the ODoH target.
    assert_eq!(device.odoh_resolver().to_string(), "1.1.1.1");
}

#[test]
fn quic_wire_interaction_end_to_end() {
    // The §3 probing result holds for the deployment's behaviour object,
    // through real packet bytes.
    let d = deployment();
    let behavior: &IngressQuicBehavior = d.fleets.quic_behavior();
    let prober = QuicProber;
    let (standard, negotiated) = prober.probe_ingress(behavior);
    assert_eq!(standard, ProbeOutcome::Timeout);
    match negotiated {
        ProbeOutcome::VersionNegotiation(versions) => {
            assert_eq!(
                versions,
                vec![0x0000_0001, 0xff00_001d, 0xff00_001c, 0xff00_001b]
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn egress_rotation_is_confined_to_a_small_pool() {
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let device = d.device_in_country(CountryCode::US, DnsMode::Open);
    let mut addrs: HashSet<IpAddr> = HashSet::new();
    for i in 0..500 {
        let now = Epoch::May2022.start() + SimDuration::from_secs(30 * i);
        let req = device.request(RequestAgent::Curl, &auth, now).unwrap();
        addrs.insert(req.egress.addr);
    }
    assert!(addrs.len() >= 3, "rotation produced {} addrs", addrs.len());
    assert!(
        addrs.len() <= 20,
        "per-location pool unexpectedly large: {}",
        addrs.len()
    );
}

#[test]
fn deployments_are_bit_reproducible_across_builds() {
    let a = Deployment::build(404, DeploymentConfig::scaled(128));
    let b = Deployment::build(404, DeploymentConfig::scaled(128));
    let auth_a = a.auth_server_unlimited();
    let auth_b = b.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut ca = SimClock::new(Epoch::Apr2022.start());
    let mut cb = SimClock::new(Epoch::Apr2022.start());
    let ra = scanner.scan(Domain::MaskQuic.name(), &auth_a, &a.rib, &mut ca);
    let rb = scanner.scan(Domain::MaskQuic.name(), &auth_b, &b.rib, &mut cb);
    assert_eq!(ra.discovered, rb.discovered);
    assert_eq!(ra.queries_sent, rb.queries_sent);
    assert_eq!(ra.per_client_as, rb.per_client_as);
}

#[test]
fn masque_session_enforces_visibility_separation() {
    // §2's privacy core, verified on every request: the ingress view never
    // contains the target; the egress view never contains the client.
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let device = d.device_in_country(CountryCode::US, DnsMode::Open);
    for i in 0..20 {
        let now = Epoch::May2022.start() + SimDuration::from_secs(30 * i);
        let req = device.request(RequestAgent::Curl, &auth, now).unwrap();
        let session = &req.session;
        assert_eq!(session.transport, tectonic::relay::Transport::Quic);
        assert_eq!(session.ingress_view.client_addr, IpAddr::V4(device.addr()));
        assert_eq!(session.ingress_view.egress_addr, req.egress.addr);
        assert!(session.ingress_view.token_valid);
        // The egress knows the ingress and the target, never the client.
        assert_eq!(session.egress_view.ingress_addr, req.ingress);
        assert_eq!(session.egress_view.target_authority, "ipecho.net:80");
        assert_ne!(session.egress_view.ingress_addr, IpAddr::V4(device.addr()));
        // The geohash is coarse (4 chars ≈ city scale).
        assert_eq!(session.egress_view.client_geohash.len(), 4);
    }
}

#[test]
fn udp_blocked_network_uses_tcp_fallback() {
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let client_as = &d.world.ases()[0];
    let device = tectonic::relay::Device::new(
        client_as.host_addr(9),
        client_as.cc,
        DnsMode::Open,
        d.fleets.clone(),
        d.egress_selector(),
    )
    .with_udp_blocked(true);
    let req = device
        .request(RequestAgent::Safari, &auth, Epoch::May2022.start())
        .unwrap();
    assert_eq!(
        req.session.transport,
        tectonic::relay::Transport::TcpFallback
    );
}

#[test]
fn token_budget_limits_a_shared_account() {
    use std::sync::Arc;
    let d = deployment();
    let auth = d.auth_server_unlimited();
    let issuer = Arc::new(tectonic::relay::TokenIssuer::new(5));
    let client_as = &d.world.ases()[0];
    let device = tectonic::relay::Device::new(
        client_as.host_addr(9),
        client_as.cc,
        DnsMode::Open,
        d.fleets.clone(),
        d.egress_selector(),
    )
    .with_token_issuer(issuer);
    let now = Epoch::May2022.start();
    for _ in 0..5 {
        assert!(device.request(RequestAgent::Curl, &auth, now).is_ok());
    }
    let err = device.request(RequestAgent::Curl, &auth, now).unwrap_err();
    assert!(matches!(
        err,
        tectonic::relay::client::ConnectError::Masque(_)
    ));
}

#[test]
fn odoh_resolution_carries_egress_ecs() {
    // Appendix B: DoH through the relay attaches the *egress* address as
    // the ECS subnet, so the authoritative tailors answers to the egress
    // location, not the client's.
    use std::sync::Arc;
    use tectonic::dns::zone::{EcsAnswer, EcsAnswerer, QueryInfo};
    use tectonic::dns::{server::AuthoritativeServer, EcsOption, QType, Question, RData, Zone};

    struct EcsEcho;
    impl EcsAnswerer for EcsEcho {
        fn answer(
            &self,
            _q: &Question,
            ecs: Option<&EcsOption>,
            _info: &QueryInfo,
        ) -> Option<EcsAnswer> {
            let seen = ecs
                .map(|e| e.source_net().to_string())
                .unwrap_or_else(|| "none".into());
            Some(EcsAnswer {
                rdatas: vec![RData::Txt(format!("ecs={seen}"))],
                ttl: 0,
                scope_len: ecs.map(|e| e.source_len).unwrap_or(0),
            })
        }
    }

    let d = deployment();
    let relay_auth = d.auth_server_unlimited();
    let target_auth = AuthoritativeServer::new()
        .with_zone(Zone::new("cdn.example".parse().unwrap()).with_dynamic(Arc::new(EcsEcho)));
    let device = d.device_in_country(CountryCode::US, DnsMode::Open);
    let outcome = device
        .odoh_resolve(
            &"www.cdn.example".parse().unwrap(),
            QType::TXT,
            &target_auth,
            &relay_auth,
            Epoch::May2022.start(),
        )
        .unwrap();
    let msg = outcome.message().expect("DoH answered");
    let tectonic::dns::RData::Txt(echoed) = &msg.answers[0].rdata else {
        panic!("TXT expected");
    };
    // The echoed subnet is an egress /24, never the client's own.
    let client_24 = format!("ecs={}/24", {
        let o = device.addr().octets();
        format!("{}.{}.{}.0", o[0], o[1], o[2])
    });
    assert_ne!(echoed, &client_24, "ECS leaked the client subnet");
    let subnet: tectonic::net::Ipv4Net = echoed
        .strip_prefix("ecs=")
        .unwrap()
        .parse()
        .expect("echoed subnet parses");
    // The subnet belongs to an egress operator's announced space.
    let (_, asn) = d
        .rib
        .lookup(std::net::IpAddr::V4(subnet.network()))
        .expect("egress space is routed");
    assert!(
        Asn::EGRESS_OPERATORS.contains(&asn),
        "{asn} not an egress AS"
    );
}
