//! Integration: the §6 future-work extensions working together — scan,
//! monitor the evolution, locate bottlenecks, archive everything, reload
//! and diff.

use tectonic::core::dataset::{Archive, ArchiveMeta};
use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::load::LoadReport;
use tectonic::core::monitor::{evolution, ScanDiff};
use tectonic::core::qoe::qoe_experiment;
use tectonic::net::{Asn, Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, Domain, LatencyModel};

fn deployment() -> Deployment {
    Deployment::build(777, DeploymentConfig::scaled(512))
}

fn scans(d: &Deployment) -> Vec<(Epoch, tectonic::core::ecs_scan::EcsScanReport)> {
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    Epoch::SCANS
        .iter()
        .map(|epoch| {
            let mut clock = SimClock::new(epoch.start());
            (
                *epoch,
                scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock),
            )
        })
        .collect()
}

#[test]
fn monitoring_pipeline_tracks_table1_growth() {
    let d = deployment();
    let scans = scans(&d);
    let timeline = evolution(&scans);
    // The April point reflects Table 1's headline.
    let apr = timeline.last().unwrap();
    assert_eq!(apr.epoch, Epoch::Apr2022);
    let akamai = apr
        .by_as
        .iter()
        .find(|(a, _)| *a == Asn::AKAMAI_PR)
        .map(|(_, c)| *c)
        .unwrap();
    assert!(akamai > 1200, "AkamaiPR April count {akamai}");
    // Every diff in the timeline conserves addresses.
    for point in &timeline[1..] {
        let diff = point.diff.as_ref().unwrap();
        assert!(diff.churn_rate < 0.1);
    }
}

#[test]
fn load_follows_the_serving_split() {
    let d = deployment();
    let scans = scans(&d);
    let april = &scans[3].1;
    let load = LoadReport::build(april, &|a| d.fleets.asn_of(std::net::IpAddr::V4(a)), 10);
    let apple = load.operators.iter().find(|o| o.asn == Asn::APPLE).unwrap();
    let akamai = load
        .operators
        .iter()
        .find(|o| o.asn == Asn::AKAMAI_PR)
        .unwrap();
    // Apple's total served subnets ≈ 69 % of everything (Table 2), carried
    // by far fewer addresses.
    let total = apple.subnets + akamai.subnets;
    let apple_share = apple.subnets as f64 / total as f64;
    assert!((0.6..0.8).contains(&apple_share), "share {apple_share:.3}");
    assert!(apple.addresses < akamai.addresses);
    assert!(apple.mean > 3.0 * akamai.mean);
    // Hotspots are real scan addresses.
    for (addr, _) in &load.hotspots {
        assert!(april.discovered.contains(addr));
    }
}

#[test]
fn archive_reload_supports_future_monitoring() {
    let d = deployment();
    let scan_list = scans(&d);
    let mut archive = Archive::new(ArchiveMeta {
        seed: 777,
        scale: 512,
        version: "test".into(),
    });
    for (epoch, report) in &scan_list {
        archive.add_scan(*epoch, report.clone());
    }
    let dir = std::env::temp_dir().join(format!(
        "tectonic-extension-pipeline-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    archive.write_to_dir(&dir, Some(&d.egress_list)).unwrap();
    // A "future session" loads the archive and diffs a fresh scan against
    // the stored April snapshot.
    let loaded = Archive::load_from_dir(&dir).unwrap();
    let stored_apr = loaded.scans.get("Apr").unwrap();
    let fresh = &scan_list[3].1;
    let diff = ScanDiff::between(stored_apr, fresh);
    assert!(diff.added.is_empty());
    assert!(diff.removed.is_empty());
    // The archived egress list round-trips.
    let egress = Archive::load_egress(&dir).unwrap().unwrap();
    assert_eq!(egress.len(), d.egress_list.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn qoe_shapes_are_stable_across_seeds() {
    let d = deployment();
    let optimised = qoe_experiment(&d, &LatencyModel::default(), 2_000, 1);
    let optimised2 = qoe_experiment(&d, &LatencyModel::default(), 2_000, 2);
    // Different workload seeds, same conclusion: the optimised backbone
    // keeps most connections near the direct path.
    for r in [&optimised, &optimised2] {
        assert!(
            r.within_10pct > 0.5,
            "within-10% share {:.3}",
            r.within_10pct
        );
        assert!(
            r.p95_overhead_ms < 60.0,
            "p95 overhead {:.1}",
            r.p95_overhead_ms
        );
    }
}
