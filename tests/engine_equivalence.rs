//! The engine's hard invariant, end to end: the sharded discrete-event
//! scan engine must be unobservable in every pipeline output. A golden
//! (fault-free) chaos run through the engine reproduces the legacy serial
//! run's artifacts and metrics byte-for-byte, and any engine run — golden
//! or kitchen-sink faulted — produces the same `ChaosRun` for every
//! worker count.
//!
//! Unit-level equivalence (per-report field equality, per-stage shard
//! alignment) lives next to each stage; this file is the integration
//! surface the CI `scan-bench` job runs.

use tectonic::chaos::{run_pipeline, ChaosConfig, ChaosRun};
use tectonic::core::masque_load::{run_engine, run_serial, PerfectChannel, StormConfig};
use tectonic::engine::EngineConfig;
use tectonic::relay::{Deployment, DeploymentConfig};
use tectonic::simnet::scenarios;

/// Reduced sizing so the full pipeline stays affordable per run: the
/// matrix here executes it several times.
fn config(engine: Option<EngineConfig>) -> ChaosConfig {
    ChaosConfig {
        scale: 8192,
        probes: 200,
        quic_sample: 20,
        storm_clients: 48,
        engine,
    }
}

fn assert_runs_equal(a: &ChaosRun, b: &ChaosRun, label: &str) {
    assert_eq!(a.artifacts, b.artifacts, "{label}: artifacts diverged");
    assert_eq!(a.metrics, b.metrics, "{label}: metrics diverged");
    assert_eq!(a.stats, b.stats, "{label}: fault ledgers diverged");
    assert_eq!(
        a.atlas_a_stats, b.atlas_a_stats,
        "{label}: A-campaign ledgers diverged"
    );
}

/// Golden pipeline through the engine ≡ golden pipeline without it, for
/// one and for many workers. This is the acceptance invariant: turning
/// the engine on must change nothing but wall-clock time.
#[test]
fn golden_engine_run_matches_serial_pipeline() {
    let serial = run_pipeline(5, None, &config(None));
    for workers in [1, 4] {
        let engine = run_pipeline(5, None, &config(Some(EngineConfig::new(8, workers))));
        assert_runs_equal(&engine, &serial, &format!("golden, {workers} workers"));
    }
}

/// The kitchen-sink scenario — every fault family at once — through the
/// engine: same seed, same report, for every worker count.
#[test]
fn kitchen_sink_engine_run_is_worker_invariant() {
    let plan = scenarios::by_name("kitchen-sink").expect("scenario registered");
    let base = run_pipeline(7, Some(&plan), &config(Some(EngineConfig::new(8, 1))));
    for workers in [2, 4] {
        let run = run_pipeline(7, Some(&plan), &config(Some(EngineConfig::new(8, workers))));
        assert_runs_equal(&run, &base, &format!("kitchen-sink, {workers} workers"));
    }
    // The run injected faults (the matrix in chaos_matrix.rs checks the
    // full invariants; here we only need the engine path to have actually
    // exercised the fault machinery).
    let injected: u64 = base
        .stats
        .values()
        .map(|s| s.all_dropped() + s.undecodable() + s.rcode_rewritten)
        .sum();
    assert!(injected > 0, "kitchen-sink run injected nothing");
}

/// The session layer's own equivalence surface, below the chaos pipeline:
/// a CONNECT-UDP storm driven serially and through the engine at one and
/// many workers must serialise to identical bytes — per-session counters,
/// addresses, rotation flags and all.
#[test]
fn session_storm_reports_are_worker_invariant() {
    let deployment = Deployment::build(13, DeploymentConfig::scaled(2048));
    for seed in [2, 17] {
        let cfg = StormConfig::sized(64, 3, seed);
        let serial = run_serial(&deployment, &cfg, &PerfectChannel);
        let serial_json = serde_json::to_string(&serial).expect("serialise serial report");
        for workers in [1, 3] {
            let engine = run_engine(&deployment, &cfg, &PerfectChannel, workers);
            let engine_json = serde_json::to_string(&engine).expect("serialise engine report");
            assert_eq!(
                serial_json, engine_json,
                "seed {seed}, {workers} workers: session reports diverged"
            );
        }
        assert_eq!(serial.sessions.len() as u64, cfg.attempted_sessions());
    }
}

/// The quick cell the CI `scan-bench` job runs on its own: serial vs a
/// three-worker engine at small scale.
#[test]
fn quick_three_worker_equivalence() {
    let small = ChaosConfig {
        scale: 16384,
        probes: 100,
        quic_sample: 10,
        storm_clients: 24,
        engine: None,
    };
    let serial = run_pipeline(11, None, &small);
    let engine = run_pipeline(
        11,
        None,
        &ChaosConfig {
            engine: Some(EngineConfig::new(6, 3)),
            ..small
        },
    );
    assert_runs_equal(&engine, &serial, "quick three-worker cell");
}
