//! Ablation gate for the compiled-LPM RIB path: the [`FrozenLpm`] snapshot
//! must be invisible in the paper artefacts. Table 2 (client attribution),
//! Table 3 (egress subnets) and the §5 prefix-overlap audit have to render
//! **byte-identically** with the snapshot enabled and disabled — the same
//! contract the DNS wire fast path honours via `use_fast_path`.

use tectonic::core::attribution::Table2;
use tectonic::core::correlation::CorrelationReport;
use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::egress_analysis::EgressAnalysis;
use tectonic::core::report::{render_correlation, render_table2, render_table3};
use tectonic::net::{Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, Domain};

/// Renders the three artefacts with the RIB's frozen snapshot on or off.
fn artefacts(frozen: bool) -> (String, String, String) {
    let mut d = Deployment::build(21, DeploymentConfig::scaled(1024));
    d.rib.set_frozen_enabled(frozen);
    assert_eq!(d.rib.is_frozen(), frozen);
    let auth = d.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
    let table2 = render_table2(&Table2::build(&report, &d.aspop));
    let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
    let table3 = render_table3(&analysis.table3());
    let correlation = render_correlation(&CorrelationReport::audit(&d, Epoch::Apr2022));
    (table2, table3, correlation)
}

#[test]
fn frozen_rib_is_invisible_in_paper_artefacts() {
    let (t2_on, t3_on, r5_on) = artefacts(true);
    let (t2_off, t3_off, r5_off) = artefacts(false);
    assert!(!t2_on.is_empty() && !t3_on.is_empty() && !r5_on.is_empty());
    assert_eq!(t2_on, t2_off, "Table 2 must render byte-identically");
    assert_eq!(t3_on, t3_off, "Table 3 must render byte-identically");
    assert_eq!(
        r5_on, r5_off,
        "prefix-overlap audit must render byte-identically"
    );
}
