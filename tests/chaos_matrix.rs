//! The chaos scenario matrix: the full paper pipeline under every named
//! fault scenario, three seeds each, reconciled against same-seed golden
//! (fault-free, unwrapped) runs via `tectonic::chaos::check_invariants`.
//!
//! Golden runs are computed once per seed and shared across scenario
//! tests through a process-wide cache, so the matrix stays affordable
//! under plain `cargo test -q`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use tectonic::chaos::{check_invariants, run_pipeline, ChaosConfig, ChaosRun};
use tectonic::simnet::scenarios;

const SEEDS: [u64; 3] = [1, 2, 3];

/// Golden (plan-free) run for `seed`, computed once per process.
fn golden(seed: u64) -> Arc<ChaosRun> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<ChaosRun>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap();
    guard
        .entry(seed)
        .or_insert_with(|| Arc::new(run_pipeline(seed, None, &ChaosConfig::default())))
        .clone()
}

fn run_scenario(name: &str) {
    let plan = scenarios::by_name(name).expect("scenario registered");
    for seed in SEEDS {
        let golden_run = golden(seed);
        let run = run_pipeline(seed, Some(&plan), &ChaosConfig::default());
        let violations = check_invariants(name, &run, &golden_run);
        assert!(
            violations.is_empty(),
            "scenario {name} seed {seed} violated invariants:\n{violations:#?}"
        );
    }
}

#[test]
fn scenario_baseline() {
    run_scenario("baseline");
}

#[test]
fn scenario_lossy_resolver() {
    run_scenario("lossy-resolver");
}

#[test]
fn scenario_flaky_network() {
    run_scenario("flaky-network");
}

#[test]
fn scenario_truncator() {
    run_scenario("truncator");
}

#[test]
fn scenario_garbage_replies() {
    run_scenario("garbage-replies");
}

#[test]
fn scenario_rate_limit_storm() {
    run_scenario("rate-limit-storm");
}

#[test]
fn scenario_blocking_resolvers() {
    run_scenario("blocking-resolvers");
}

#[test]
fn scenario_control_outage() {
    run_scenario("control-outage");
}

#[test]
fn scenario_ingress_blackhole() {
    run_scenario("ingress-blackhole");
}

#[test]
fn scenario_bgp_flap() {
    run_scenario("bgp-flap");
}

#[test]
fn scenario_relay_session_storm() {
    run_scenario("relay-session-storm");
}

#[test]
fn scenario_kitchen_sink() {
    run_scenario("kitchen-sink");
}

/// Same seed + same plan ⇒ byte-identical artifacts and equal metrics.
#[test]
fn same_seed_same_plan_is_deterministic() {
    let plan = scenarios::by_name("lossy-resolver").expect("scenario registered");
    let first = run_pipeline(1, Some(&plan), &ChaosConfig::default());
    let second = run_pipeline(1, Some(&plan), &ChaosConfig::default());
    assert_eq!(first.artifacts, second.artifacts);
    assert_eq!(first.metrics, second.metrics);
    assert_eq!(first.stats, second.stats);
}

/// An all-inert plan threaded through every wrapper reproduces the
/// wrapper-free golden artifacts byte-for-byte: the fault layer is
/// invisible when no faults are configured.
#[test]
fn zero_fault_plan_matches_unwrapped_golden() {
    let plan = scenarios::by_name("baseline").expect("scenario registered");
    let golden_run = golden(2);
    let run = run_pipeline(2, Some(&plan), &ChaosConfig::default());
    assert_eq!(run.artifacts, golden_run.artifacts);
    assert_eq!(run.metrics, golden_run.metrics);
}

/// The deliberately broken fixture plan must violate its invariant —
/// this is the fixture `xtask chaos` smoke tests rely on for a nonzero
/// exit.
#[test]
fn broken_fixture_violates_invariants() {
    let plan = scenarios::by_name("broken-fixture").expect("fixture registered");
    let golden_run = golden(1);
    let run = run_pipeline(1, Some(&plan), &ChaosConfig::default());
    let violations = check_invariants("broken-fixture", &run, &golden_run);
    assert!(
        !violations.is_empty(),
        "broken fixture unexpectedly passed all invariants"
    );
}

/// The registry holds at least the eight scenarios the matrix promises,
/// every name resolves, and names are unique.
#[test]
fn registry_is_complete() {
    assert!(scenarios::ALL.len() >= 8, "registry too small");
    for name in scenarios::ALL {
        assert!(scenarios::by_name(name).is_some(), "unresolvable {name}");
    }
    let mut names: Vec<&str> = scenarios::ALL.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), scenarios::ALL.len(), "duplicate names");
    assert!(scenarios::by_name("does-not-exist").is_none());
}
