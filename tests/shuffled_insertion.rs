//! Insertion-order invariance of the golden pipeline.
//!
//! `std::collections::HashMap` iterates in a per-instance random order, so
//! the `map-iter-order` lint insists every artifact-facing path passes a
//! sorting boundary. These property tests prove the complement dynamically:
//! reloading the deployment's load-bearing tables — the RIB, the egress
//! list, and static DNS zones — from a *shuffled* input order leaves every
//! rendered golden artifact (Tables 1–4, the §6 correlation audit, zone
//! answers) byte-identical. Shuffles are driven by `SimRng` from a
//! proptest-chosen seed, so failures minimise and replay deterministically.

use std::net::{IpAddr, Ipv4Addr};

use proptest::prelude::*;

use tectonic::bgp::Rib;
use tectonic::core::attribution::Table2;
use tectonic::core::correlation::CorrelationReport;
use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::egress_analysis::EgressAnalysis;
use tectonic::core::report::{
    render_correlation, render_table1, render_table2, render_table3, render_table4,
};
use tectonic::dns::{DomainName, QType, Zone};
use tectonic::geo::egress::EgressList;
use tectonic::net::{Epoch, SimClock, SimRng};
use tectonic::relay::{Deployment, DeploymentConfig, Domain};

/// Rebuilds `rib` by re-announcing its routes in a shuffled order.
fn shuffled_rib(rib: &Rib, seed: u64) -> Rib {
    let mut routes: Vec<_> = rib.iter().collect();
    let mut rng = SimRng::new(seed);
    rng.shuffle(&mut routes);
    let mut out = Rib::new();
    for (prefix, asn) in routes {
        out.announce(prefix, asn);
    }
    out.freeze();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tables 3/4 and the correlation audit survive shuffled RIB
    /// announcements and a shuffled egress-list row order.
    #[test]
    fn egress_tables_and_audit_survive_shuffled_loading(seed in any::<u64>()) {
        let d = Deployment::build(7, DeploymentConfig::scaled(512));
        let baseline = EgressAnalysis::new(&d.egress_list, &d.rib);
        let t3 = render_table3(&baseline.table3());
        let t4 = render_table4(&baseline.table4());
        let audit = render_correlation(&CorrelationReport::audit(&d, Epoch::Apr2022));

        let mut rng = SimRng::new(seed);
        let rib = shuffled_rib(&d.rib, rng.next_u64_raw());
        let mut entries = d.egress_list.entries().to_vec();
        rng.shuffle(&mut entries);
        let list = EgressList::from_entries(entries);

        let analysis = EgressAnalysis::new(&list, &rib);
        prop_assert_eq!(render_table3(&analysis.table3()), t3);
        prop_assert_eq!(render_table4(&analysis.table4()), t4);

        let mut d = d;
        d.rib = rib;
        d.egress_list = list;
        let shuffled_audit =
            render_correlation(&CorrelationReport::audit(&d, Epoch::Apr2022));
        prop_assert_eq!(shuffled_audit, audit);
    }

    /// Static zone answers are independent of record-insertion order.
    #[test]
    fn static_zone_answers_survive_shuffled_record_insertion(seed in any::<u64>()) {
        let apex = DomainName::literal("example.com");
        let hosts: Vec<(DomainName, IpAddr)> = (0u32..24)
            .map(|i| {
                (
                    DomainName::literal(&format!("h{i}.example.com")),
                    IpAddr::V4(Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8)),
                )
            })
            .collect();

        let mut natural = Zone::new(apex.clone());
        for (name, addr) in &hosts {
            natural.add_address(name.clone(), 300, *addr);
        }

        let mut order: Vec<usize> = (0..hosts.len()).collect();
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut order);
        let mut shuffled = Zone::new(apex);
        for &i in &order {
            let (name, addr) = &hosts[i];
            shuffled.add_address(name.clone(), 300, *addr);
        }

        for (name, _) in &hosts {
            prop_assert_eq!(
                natural.lookup_static(name, QType::A),
                shuffled.lookup_static(name, QType::A)
            );
        }
    }
}

proptest! {
    // Each case runs four reduced-scale ECS scans; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Tables 1/2 — the full deployment → authoritative DNS → ECS scanner
    /// pipeline — survive a shuffled RIB reload: candidate enumeration,
    /// attribution, and the per-AS aggregates must not depend on the
    /// announcement order.
    #[test]
    fn scan_tables_survive_shuffled_rib(seed in any::<u64>()) {
        let mut d = Deployment::build(5, DeploymentConfig::scaled(128));
        let scanner = EcsScanner::default();
        let run = |d: &Deployment| {
            let auth = d.auth_server_unlimited();
            let epoch = Epoch::Apr2022;
            let mut clock = SimClock::new(epoch.start());
            let default = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
            let mut clock = SimClock::new(epoch.start());
            let fallback = scanner.scan(Domain::MaskH2.name(), &auth, &d.rib, &mut clock);
            let t2 = render_table2(&Table2::build(&default, &d.aspop));
            let t1 = render_table1(&[(epoch, default, Some(fallback))]);
            (t1, t2)
        };
        let (t1, t2) = run(&d);
        d.rib = shuffled_rib(&d.rib, seed);
        let (shuffled_t1, shuffled_t2) = run(&d);
        prop_assert_eq!(shuffled_t1, t1);
        prop_assert_eq!(shuffled_t2, t2);
    }
}
