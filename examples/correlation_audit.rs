//! The §6 correlation audit: can one entity see both who a user is and
//! what they access?
//!
//! Runs the full prefix census of AS36183 (Akamai PR), the traceroute
//! last-hop validation, the BGP first-seen check, and the QUIC probe —
//! everything the paper uses to argue that the operator split does not
//! currently prevent traffic correlation.
//!
//! ```text
//! cargo run --release --example correlation_audit
//! ```

use tectonic::core::correlation::CorrelationReport;
use tectonic::core::quic_probe::QuicProbeReport;
use tectonic::core::report::{render_correlation, render_quic};
use tectonic::net::{Asn, Epoch};
use tectonic::relay::{Deployment, DeploymentConfig, Domain};

fn main() {
    // Paper-scale fleets and egress list; the client world is irrelevant
    // to this audit, so it is kept small.
    let mut config = DeploymentConfig::paper();
    config.client_world = config.client_world.scaled_down(128);
    let deployment = Deployment::build(31, config);

    let report = CorrelationReport::audit(&deployment, Epoch::Apr2022);
    print!("{}", render_correlation(&report));
    println!(
        "\npaper reference: 478 IPv4 + 1335 IPv6 prefixes announced; ingress \
         in 201 and egress in 1472 prefixes; 92.2% of announcements used; \
         traceroute found identical last hops; first seen 2021-06"
    );

    // A concrete traceroute pair demonstrating the shared last hop.
    let client_asn = deployment.world.ases()[0].asn;
    let ingress = deployment
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[10];
    let shared_egress = deployment
        .egress_list
        .entries()
        .iter()
        .filter(|e| e.subnet.is_v4())
        .find(|e| {
            deployment
                .rib
                .lookup_net(&e.subnet)
                .is_some_and(|(_, asn)| asn == Asn::AKAMAI_PR)
                && deployment.routers.shares_last_hop(
                    Asn::AKAMAI_PR,
                    std::net::IpAddr::V4(ingress),
                    e.subnet.network(),
                )
        });
    if let Some(egress) = shared_egress {
        println!("\nshared last hop demonstration:");
        for (label, target) in [
            ("ingress", std::net::IpAddr::V4(ingress)),
            ("egress ", egress.subnet.network()),
        ] {
            let hops = deployment
                .routers
                .traceroute(client_asn, Asn::AKAMAI_PR, target);
            let path: Vec<String> = hops
                .iter()
                .map(|h| format!("{} [{}]", h.addr, h.asn.label()))
                .collect();
            println!("  {label} {target}: {}", path.join(" → "));
        }
    }

    // The QUIC wire observation (§3).
    println!();
    let quic = QuicProbeReport::probe(&deployment, 100);
    print!("{}", render_quic(&quic));

    // The attack the architecture enables (§6, §5's Tor literature): a
    // dual-role AS correlates encrypted connection timings across its
    // ingress and egress vantage points.
    println!();
    let attack = tectonic::core::correlation_attack::run_attack(
        &tectonic::core::correlation_attack::AttackConfig::default(),
        31,
    );
    print!(
        "{}",
        tectonic::core::correlation_attack::render_attack(&attack)
    );
    println!(
        "(Apple could prevent this by keeping ingress and egress in disjoint          ASes — §6's concluding recommendation)"
    );
}
