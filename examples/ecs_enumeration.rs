//! The paper's ingress-enumeration campaign end to end (§4.1):
//! four monthly ECS scans of both mask domains (Table 1), client-AS
//! attribution joined with AS populations (Table 2), and the rate-limit
//! economics of the scan.
//!
//! ```text
//! cargo run --release --example ecs_enumeration [scale]
//! ```
//!
//! `scale` divides the client world (default 32; 1 = paper scale, slow).

use tectonic::core::attribution::Table2;
use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::report::{render_table1, render_table2};
use tectonic::net::{Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, Domain};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    println!("building deployment at client-world scale 1/{scale}…");
    let deployment = Deployment::build(2022, DeploymentConfig::scaled(scale));
    let auth = deployment.auth_server_unlimited();
    let scanner = EcsScanner::default();

    // Table 1 — run the scan at each epoch, both domains (the paper's
    // January scan lacked the fallback domain, so we skip it there too).
    let mut rows = Vec::new();
    for epoch in Epoch::SCANS {
        let mut clock = SimClock::new(epoch.start());
        let default = scanner.scan(Domain::MaskQuic.name(), &auth, &deployment.rib, &mut clock);
        let fallback = (epoch != Epoch::Jan2022).then(|| {
            let mut clock = SimClock::new(epoch.start());
            scanner.scan(Domain::MaskH2.name(), &auth, &deployment.rib, &mut clock)
        });
        println!(
            "{epoch}: default {} addrs / {} queries; fallback {}",
            default.total(),
            default.queries_sent,
            fallback.as_ref().map(|f| f.total()).unwrap_or(0),
        );
        rows.push((epoch, default, fallback));
    }
    println!();
    print!("{}", render_table1(&rows));

    // The rate-limited variant: same discovery, tens of simulated hours.
    println!("\nrate-limited scan economics (April, default domain):");
    let limited_auth = deployment.auth_server();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let limited = scanner.scan(
        Domain::MaskQuic.name(),
        &limited_auth,
        &deployment.rib,
        &mut clock,
    );
    println!(
        "  {} queries + {} rate-limit retries → {} addresses in {} simulated hours",
        limited.queries_sent,
        limited.rate_limited,
        limited.total(),
        limited.duration.as_secs() / 3600,
    );
    println!("  (the paper's full-scale scan takes ~40 hours for the same reason)");

    // Table 2 — who serves the users?
    let april = &rows[3].1;
    let table2 = Table2::build(april, &deployment.aspop);
    println!();
    print!("{}", render_table2(&table2));
}
