//! Through-relay scanning (§4.3): Figure 3's operator series and the
//! egress-address rotation statistics, from a DE vantage point where only
//! Cloudflare and Akamai PR have presence (as at the authors' location).
//!
//! ```text
//! cargo run --release --example egress_rotation
//! ```

use tectonic::core::relay_scan::{RelayScanConfig, RelayScanSeries};
use tectonic::core::report::{render_fig3, render_rotation};
use tectonic::core::rotation::RotationReport;
use tectonic::geo::country::CountryCode;
use tectonic::net::{Asn, Epoch};
use tectonic::relay::{Deployment, DeploymentConfig, DnsMode, Domain};

fn main() {
    let deployment = Deployment::build(66, DeploymentConfig::scaled(64));
    let auth = deployment.auth_server_unlimited();
    let vantage_operators = vec![Asn::CLOUDFLARE, Asn::AKAMAI_PR];

    // Figure 3: 5-minute rounds over a day, open vs fixed DNS.
    let open_device =
        deployment.vantage_device(CountryCode::DE, DnsMode::Open, vantage_operators.clone());
    let forced = deployment
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
    let fixed_device =
        deployment.vantage_device(CountryCode::DE, DnsMode::Fixed(forced), vantage_operators);
    let config = RelayScanConfig::operator_series();
    let start = Epoch::May2022.start();
    let open = RelayScanSeries::run(&open_device, &auth, &config, start);
    let fixed = RelayScanSeries::run(&fixed_device, &auth, &config, start);
    print!("{}", render_fig3(&open, &fixed));

    // The fine-grained rotation run: 30-second rounds over 48 hours.
    let rotation_series = RelayScanSeries::run(
        &open_device,
        &auth,
        &RelayScanConfig::rotation_series(),
        start,
    );
    let rotation = RotationReport::from_series(&rotation_series);
    println!();
    print!("{}", render_rotation(&rotation));
    println!(
        "\npaper reference: six egress addresses from four subnets over 48 h; \
         >66% of consecutive requests changed address; parallel Safari/curl \
         requests frequently observed different egress addresses"
    );

    // §4.3's closing check: forcing a specific ingress does not change the
    // egress behaviour.
    let fixed_rotation = RotationReport::from_series(&RelayScanSeries::run(
        &fixed_device,
        &auth,
        &RelayScanConfig::rotation_series(),
        start,
    ));
    println!(
        "\nforced-ingress scan: {} addresses, change rate {:.1}% \
         (open scan: {} addresses, {:.1}%) — behaviour unchanged",
        fixed_rotation.distinct_addresses,
        fixed_rotation.change_rate * 100.0,
        rotation.distinct_addresses,
        rotation.change_rate * 100.0,
    );
}
