//! Regenerates every table, figure and inline result of the paper in one
//! run and writes the research-archive JSON files, mirroring the authors'
//! published data artefact.
//!
//! ```text
//! cargo run --release --example full_paper_run [scale] [out_dir]
//! ```
//!
//! `scale` divides the client world and egress list (default 16;
//! 1 = full paper scale — expect a long run and several GB of memory).

use std::fs;
use std::path::PathBuf;

use tectonic::atlas::population::PopulationConfig;
use tectonic::core::atlas_campaign::{AtlasCampaignReport, AtlasSetup};
use tectonic::core::attribution::Table2;
use tectonic::core::blocking::survey;
use tectonic::core::correlation::CorrelationReport;
use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::egress_analysis::EgressAnalysis;
use tectonic::core::quic_probe::QuicProbeReport;
use tectonic::core::relay_scan::{RelayScanConfig, RelayScanSeries};
use tectonic::core::report;
use tectonic::core::rotation::RotationReport;
use tectonic::dns::server::AuthoritativeServer;
use tectonic::dns::{QType, RData, Record, Zone};
use tectonic::geo::country::CountryCode;
use tectonic::net::{Asn, Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, DnsMode, Domain};

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let out_dir = PathBuf::from(
        std::env::args()
            .nth(2)
            .unwrap_or_else(|| "target/paper-archive".into()),
    );
    fs::create_dir_all(&out_dir).expect("create archive dir");
    let save = |name: &str, json: String| {
        let path = out_dir.join(name);
        fs::write(&path, json).expect("write archive file");
        println!("  archived {}", path.display());
    };

    println!("=== building deployment (scale 1/{scale}, seed 2022) ===");
    let deployment = Deployment::build(2022, DeploymentConfig::scaled(scale));
    let auth = deployment.auth_server_unlimited();
    let scanner = EcsScanner::default();

    // ---------------------------------------------------------- Table 1
    println!("\n=== Table 1: ingress evolution ===");
    let mut rows = Vec::new();
    for epoch in Epoch::SCANS {
        let mut clock = SimClock::new(epoch.start());
        let default = scanner.scan(Domain::MaskQuic.name(), &auth, &deployment.rib, &mut clock);
        let fallback = (epoch != Epoch::Jan2022).then(|| {
            let mut clock = SimClock::new(epoch.start());
            scanner.scan(Domain::MaskH2.name(), &auth, &deployment.rib, &mut clock)
        });
        rows.push((epoch, default, fallback));
    }
    print!("{}", report::render_table1(&rows));
    save("table1_scans.json", report::to_archive_json(&rows));

    // ---------------------------------------------------------- Table 2
    println!("\n=== Table 2: client attribution ===");
    let april = &rows[3].1;
    let table2 = Table2::build(april, &deployment.aspop);
    print!("{}", report::render_table2(&table2));
    save("table2_attribution.json", report::to_archive_json(&table2));
    save(
        "ingress_addresses_v4.json",
        report::to_archive_json(&april.discovered),
    );

    // ------------------------------------------------------- Tables 3–4
    println!("\n=== Tables 3–4 + Figures 2/4/5: egress analysis ===");
    let analysis = EgressAnalysis::new(&deployment.egress_list, &deployment.rib);
    let table3 = analysis.table3();
    let table4 = analysis.table4();
    print!("{}", report::render_table3(&table3));
    print!("{}", report::render_table4(&table4));
    let shares = analysis.country_shares();
    println!(
        "top countries: {} {:.1}%, {} {:.1}%; {} countries under 50 subnets",
        shares[0].0,
        shares[0].1 * 100.0,
        shares[1].0,
        shares[1].1 * 100.0,
        analysis.countries_below(50),
    );
    save("table3_egress.json", report::to_archive_json(&table3));
    save("table4_cities.json", report::to_archive_json(&table4));
    let points = analysis.geo_points(&deployment.universe);
    save(
        "fig2_fig5_geo_points.json",
        report::to_archive_json(&points),
    );
    let cdfs = [
        analysis.cdf(true, true),
        analysis.cdf(true, false),
        analysis.cdf(false, true),
        analysis.cdf(false, false),
    ];
    print!("{}", report::render_fig4(&cdfs[1], "IPv6 cities"));
    save("fig4_cdfs.json", report::to_archive_json(&cdfs));

    // ------------------------------------------------------------ Atlas
    println!("\n=== R1/R2: Atlas validation and IPv6 enumeration ===");
    let atlas = AtlasSetup::build(&deployment, &PopulationConfig::paper(), 99);
    let a_results =
        atlas.run_mask_campaign(&deployment, Domain::MaskQuic, QType::A, Epoch::Apr2022, 1);
    let a_report = AtlasCampaignReport::aggregate(&deployment, &a_results);
    let atlas_in_ecs = a_report
        .v4_addresses
        .iter()
        .filter(|a| april.discovered.contains(a))
        .count();
    println!(
        "Atlas A: {} addresses, {} also in the ECS scan; ECS total {}",
        a_report.v4_addresses.len(),
        atlas_in_ecs,
        april.total(),
    );
    let aaaa_results = atlas.run_mask_campaign(
        &deployment,
        Domain::MaskQuic,
        QType::AAAA,
        Epoch::Apr2022,
        2,
    );
    let aaaa_report = AtlasCampaignReport::aggregate(&deployment, &aaaa_results);
    println!(
        "Atlas AAAA: {} addresses (Apple {}, AkamaiPR {})",
        aaaa_report.v6_addresses.len(),
        aaaa_report.v6_count_for(Asn::APPLE),
        aaaa_report.v6_count_for(Asn::AKAMAI_PR),
    );
    save(
        "r2_ipv6_ingress.json",
        report::to_archive_json(&aaaa_report.v6_addresses),
    );

    // --------------------------------------------------------- Blocking
    println!("\n=== R3: blocking survey ===");
    let mut control_zone = Zone::new("atlas-measurements.net".parse().unwrap());
    control_zone.add_record(Record::new(
        "control.atlas-measurements.net".parse().unwrap(),
        300,
        RData::A("93.184.216.34".parse().unwrap()),
    ));
    let control_auth = AuthoritativeServer::new().with_zone(control_zone);
    let control_results = atlas.run_control_campaign(&control_auth, Epoch::Apr2022, 3);
    let is_ingress = |addr: std::net::IpAddr| deployment.fleets.is_ingress(addr);
    let blocking = survey(&a_results, &control_results, &is_ingress);
    print!("{}", report::render_blocking(&blocking));
    save("r3_blocking.json", report::to_archive_json(&blocking));

    // --------------------------------------------------- Figure 3 + R4
    println!("\n=== Figure 3 + R4: through-relay scans ===");
    let vantage_ops = vec![Asn::CLOUDFLARE, Asn::AKAMAI_PR];
    let open_device =
        deployment.vantage_device(CountryCode::DE, DnsMode::Open, vantage_ops.clone());
    let forced = deployment
        .fleets
        .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
    let fixed_device =
        deployment.vantage_device(CountryCode::DE, DnsMode::Fixed(forced), vantage_ops);
    let start = Epoch::May2022.start();
    let open = RelayScanSeries::run(
        &open_device,
        &auth,
        &RelayScanConfig::operator_series(),
        start,
    );
    let fixed = RelayScanSeries::run(
        &fixed_device,
        &auth,
        &RelayScanConfig::operator_series(),
        start,
    );
    print!("{}", report::render_fig3(&open, &fixed));
    save("fig3_operator_series.json", report::to_archive_json(&open));
    let rotation_series = RelayScanSeries::run(
        &open_device,
        &auth,
        &RelayScanConfig::rotation_series(),
        start,
    );
    let rotation = RotationReport::from_series(&rotation_series);
    print!("{}", report::render_rotation(&rotation));
    save("r4_rotation.json", report::to_archive_json(&rotation));

    // ------------------------------------------------------ Correlation
    println!("\n=== R5/R6: correlation audit ===");
    let correlation = CorrelationReport::audit(&deployment, Epoch::Apr2022);
    print!("{}", report::render_correlation(&correlation));
    save(
        "r5_r6_correlation.json",
        report::to_archive_json(&correlation),
    );

    // ------------------------------------------------------------- QUIC
    println!("\n=== R7: QUIC probing ===");
    let quic = QuicProbeReport::probe(&deployment, 100);
    print!("{}", report::render_quic(&quic));
    save("r7_quic.json", report::to_archive_json(&quic));

    // -------------------------------------------------------- Egress CSV
    let csv = deployment.egress_list.to_csv();
    fs::write(out_dir.join("egress-ip-ranges.csv"), &csv).expect("write csv");
    println!(
        "\narchived egress-ip-ranges.csv ({} rows) — the Apple-format list",
        deployment.egress_list.len()
    );
    println!("\nresearch archive written to {}", out_dir.display());
}
