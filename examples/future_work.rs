//! The paper's §6 future-work questions, answered against the simulated
//! deployment:
//!
//! 1. *"Where and how is traffic routed to and from the relay nodes? Does
//!    the system have bottlenecks?"* — per-relay load concentration.
//! 2. *"How does the system evolve, and where is it available?"* —
//!    longitudinal scan diffing across the four epochs.
//! 3. *"How does the service impact the user's QoE?"* — direct vs two-hop
//!    latency, with and without the CDN backbone optimisation.
//!
//! ```text
//! cargo run --release --example future_work
//! ```

use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::load::{render_load, LoadReport};
use tectonic::core::monitor::{evolution, render_evolution};
use tectonic::core::qoe::{qoe_experiment, render_qoe};
use tectonic::net::{Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, Domain, LatencyModel};

fn main() {
    let deployment = Deployment::build(2022, DeploymentConfig::scaled(64));
    let auth = deployment.auth_server_unlimited();
    let scanner = EcsScanner::default();

    // (2) evolution: scan all four epochs and diff them.
    let scans: Vec<_> = Epoch::SCANS
        .iter()
        .map(|epoch| {
            let mut clock = SimClock::new(epoch.start());
            (
                *epoch,
                scanner.scan(Domain::MaskQuic.name(), &auth, &deployment.rib, &mut clock),
            )
        })
        .collect();
    let timeline = evolution(&scans);
    print!("{}", render_evolution(&timeline));
    println!(
        "(fleets grow as stable windows: high growth, near-zero churn — \
         continuous monitoring stays cheap)\n"
    );

    // (1) bottlenecks: who carries the load in April?
    let april = &scans[3].1;
    let load = LoadReport::build(
        april,
        &|addr| deployment.fleets.asn_of(std::net::IpAddr::V4(addr)),
        5,
    );
    print!("{}", render_load(&load));
    println!(
        "(Apple serves ~69% of subnets with ~22% of addresses — its relays \
         carry several times AkamaiPR's per-address load)\n"
    );

    // (3) QoE: optimised CDN backbone vs plain routing.
    let optimised = qoe_experiment(&deployment, &LatencyModel::default(), 5_000, 11);
    let plain = qoe_experiment(
        &deployment,
        &LatencyModel {
            backbone_factor: 1.25,
            ..LatencyModel::default()
        },
        5_000,
        11,
    );
    print!("{}", render_qoe(&optimised, &plain));
    println!(
        "(with Argo-like backbone routing the relay stays within 10% of the \
         direct path for most connections — Apple's \"low impact\" claim)"
    );
}
