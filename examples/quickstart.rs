//! Quickstart: build a simulated iCloud Private Relay deployment, enumerate
//! its ingress relays with an ECS scan, and send one request through the
//! relay.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tectonic::core::ecs_scan::EcsScanner;
use tectonic::geo::country::CountryCode;
use tectonic::net::{Asn, Epoch, SimClock};
use tectonic::relay::{Deployment, DeploymentConfig, DnsMode, Domain, RequestAgent};

fn main() {
    // A deterministic deployment: ingress fleets at paper scale, client
    // world and egress list at 1/64 scale so this example runs in seconds.
    let deployment = Deployment::build(42, DeploymentConfig::scaled(64));
    println!("deployment: {deployment:?}");

    // 1. Enumerate ingress relays the way the paper does (§3): iterate the
    //    routed IPv4 space as /24 ECS client subnets.
    let auth = deployment.auth_server_unlimited();
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &deployment.rib, &mut clock);
    println!(
        "\nECS scan (April, default domain): {} ingress addresses \
         ({} Apple, {} AkamaiPR) from {} queries",
        report.total(),
        report.count_for(Asn::APPLE),
        report.count_for(Asn::AKAMAI_PR),
        report.queries_sent,
    );

    // 2. Connect through the relay from a German client and watch the
    //    egress address rotate per connection (§4.3).
    let device = deployment.device_in_country(CountryCode::DE, DnsMode::Open);
    println!("\nthree requests through the relay:");
    for i in 0..3 {
        let now = Epoch::May2022.start() + tectonic::net::SimDuration::from_secs(30 * i);
        let request = device
            .request(RequestAgent::Curl, &auth, now)
            .expect("relay request");
        println!(
            "  ingress {} [{}]  →  egress {} [{}]",
            request.ingress,
            request.ingress_asn.expect("ingress is attributed").label(),
            request.egress.addr,
            request.egress.operator.label(),
        );
    }

    // 3. The passive-observer use case the paper motivates: an ISP can
    //    detect relay traffic by matching destinations against the ingress
    //    dataset collected in step 1.
    let request = device
        .request(RequestAgent::Safari, &auth, Epoch::May2022.start())
        .expect("relay request");
    let is_relay_traffic = match request.ingress {
        std::net::IpAddr::V4(a) => report.discovered.contains(&a),
        std::net::IpAddr::V6(_) => false,
    };
    println!(
        "\npassive detection: destination {} is in the published ingress set: {}",
        request.ingress, is_relay_traffic
    );
}
