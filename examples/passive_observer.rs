//! The network-operator perspective (§6's discussion): what passive
//! monitoring and IDSs see once clients move onto iCloud Private Relay.
//!
//! * An ISP monitor classifies a mixed flow log against the published
//!   ingress dataset — relay traffic is detectable but unattributable.
//! * A server-side IDS stitches sessions per source IP and watches one
//!   user fragment into dozens of apparent sessions (the Imperva issue).
//!
//! ```text
//! cargo run --release --example passive_observer
//! ```

use std::net::IpAddr;

use tectonic::core::ecs_scan::EcsScanner;
use tectonic::core::passive::{
    ids_fragmentation, ingress_traffic_shares, FlowRecord, PassiveMonitor,
};
use tectonic::geo::country::CountryCode;
use tectonic::net::{Epoch, SimClock, SimDuration};
use tectonic::relay::{Deployment, DeploymentConfig, DnsMode, Domain, RequestAgent};

fn main() {
    let deployment = Deployment::build(2022, DeploymentConfig::scaled(64));
    let auth = deployment.auth_server_unlimited();

    // Step 1: the operator obtains the ingress dataset (the artefact the
    // paper publishes for exactly this purpose).
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let scan = scanner.scan(Domain::MaskQuic.name(), &auth, &deployment.rib, &mut clock);
    println!(
        "ingress dataset: {} addresses from the April ECS scan",
        scan.total()
    );
    let monitor = PassiveMonitor::new(scan.discovered.iter().map(|a| IpAddr::V4(*a)));

    // Step 2: watch a subscriber's mixed traffic.
    let device = deployment.device_in_country(CountryCode::DE, DnsMode::Open);
    let mut flows = Vec::new();
    for i in 0..200 {
        let now = Epoch::May2022.start() + SimDuration::from_secs(30 * i);
        let request = device
            .request(RequestAgent::Safari, &auth, now)
            .expect("relay up");
        flows.push(FlowRecord {
            src: IpAddr::V4(device.addr()),
            dst: request.ingress,
            bytes: 1400,
        });
        // Plus some non-relay background traffic.
        if i % 3 == 0 {
            flows.push(FlowRecord {
                src: IpAddr::V4(device.addr()),
                dst: "93.184.216.34".parse().unwrap(),
                bytes: 900,
            });
        }
    }
    let report = monitor.classify(&flows);
    println!(
        "\nISP view: {} of {} flows go to the relay ({:.1}% of bytes now destination-hidden), \
         {} distinct ingress addresses",
        report.relay_flows,
        report.flows,
        report.hidden_share() * 100.0,
        report.distinct_ingresses,
    );
    let shares = ingress_traffic_shares(&flows, &monitor);
    if let Some((addr, share)) = shares.first() {
        println!(
            "heaviest ingress path: {addr} carries {:.1}% of this subscriber's relay bytes \
             (capacity planning input, §6)",
            share * 100.0
        );
    }

    // Step 3: the destination server's IDS view of the same user.
    let ids = ids_fragmentation(
        &device,
        &auth,
        Epoch::May2022.start(),
        200,
        SimDuration::from_secs(30),
    );
    println!(
        "\nIDS view: {} requests from one user appeared to come from {} addresses — \
         naive per-IP stitching produced {} sessions (longest stable run: {})",
        ids.requests, ids.observed_sources, ids.sessions_by_ip, ids.longest_stable_run,
    );
    println!(
        "mitigation (paper's suggestion): consult the published egress list to \
         recognise relay addresses instead of treating the pattern as anomalous"
    );
}
