//! The RIPE-Atlas-style service-blocking survey (§4.1, R3).
//!
//! Generates an Atlas-like probe population inside the simulated client
//! world, resolves the mask domain and a control domain from every probe,
//! and classifies the failures: transient timeouts vs intentional DNS
//! blocking (NXDOMAIN / empty NOERROR / verified REFUSED / hijack).
//!
//! ```text
//! cargo run --release --example blocking_survey [probes]
//! ```

use tectonic::atlas::population::PopulationConfig;
use tectonic::core::atlas_campaign::AtlasSetup;
use tectonic::core::blocking::survey;
use tectonic::core::report::render_blocking;
use tectonic::dns::server::AuthoritativeServer;
use tectonic::dns::{QType, RData, Record, Zone};
use tectonic::net::Epoch;
use tectonic::relay::{Deployment, DeploymentConfig, Domain};

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11_700);
    let deployment = Deployment::build(7, DeploymentConfig::scaled(64));
    let atlas = AtlasSetup::build(
        &deployment,
        &PopulationConfig::paper().with_probes(probes),
        99,
    );
    println!(
        "probe population: {} probes, public-resolver share {:.1}%, \
         ISP/local resolvers in {} ASes",
        atlas.probes.len(),
        atlas.public_resolver_share() * 100.0,
        atlas.resolver_as_count(),
    );
    println!("resolver mix: {:?}", atlas.resolver_mix());

    // The relay-domain measurement and the control-domain comparison run.
    let mask_results =
        atlas.run_mask_campaign(&deployment, Domain::MaskQuic, QType::A, Epoch::Apr2022, 1);
    let mut control_zone = Zone::new("atlas-measurements.net".parse().unwrap());
    control_zone.add_record(Record::new(
        "control.atlas-measurements.net".parse().unwrap(),
        300,
        RData::A("93.184.216.34".parse().unwrap()),
    ));
    let control_auth = AuthoritativeServer::new().with_zone(control_zone);
    let control_results = atlas.run_control_campaign(&control_auth, Epoch::Apr2022, 2);

    let is_ingress = |addr: std::net::IpAddr| deployment.fleets.is_ingress(addr);
    let report = survey(&mask_results, &control_results, &is_ingress);
    println!();
    print!("{}", render_blocking(&report));
    println!(
        "\npaper reference: 10% timeouts; 7% failing responses \
         (72% NXDOMAIN, 13% NOERROR, 5% REFUSED); 645 probes (5.5%) blocked; one hijack"
    );
}
