//! Deterministic sharded discrete-event engine.
//!
//! The measurement pipelines of the reproduction (ECS scans, Atlas
//! campaigns, relay rotation series) were written as straight-line loops
//! over one simulated Internet. This crate re-expresses them as
//! discrete-event simulations sharded across worker threads while keeping
//! the reproduction's core guarantee: **the result is a pure function of
//! the seed**, independent of worker count, thread scheduling, or core
//! count.
//!
//! See `DESIGN.md` §11 for the event model and the proof obligations each
//! pipeline discharges when it claims byte-equality with its serial form.
//!
//! The scheduler lives in [`sched`]; the key pieces are:
//!
//! * [`sched::Engine`] — per-shard priority queues keyed by
//!   `(SimTime, shard, seq)`, drained in conservative lookahead windows.
//! * [`sched::ShardModel`] — the per-shard state machine a pipeline
//!   implements: `handle` one event, `finish` into a local result arena.
//! * [`sched::ShardCtx`] — how a handler schedules follow-up events on its
//!   own shard and sends cross-shard events (always delivered at least one
//!   lookahead in the future, so no window ever observes a racing send).

#![forbid(unsafe_code)]

pub mod sched;

pub use sched::{Engine, EngineConfig, ShardCtx, ShardModel};
