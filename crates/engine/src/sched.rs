//! The sharded scheduler.
//!
//! # Determinism model
//!
//! The world is split into `S` shards. Every event lives on exactly one
//! shard and is keyed by `(SimTime, shard, seq)`: time first, then the
//! owning shard, then a per-shard sequence number that captures insertion
//! order. Within one shard, events execute strictly in `(time, seq)`
//! order; across shards the execution interleaving is unobservable because
//! shards share no mutable state — the only cross-shard channel is
//! [`ShardCtx::send`], and a sent event is always delivered at least one
//! *lookahead* after the sender's current time.
//!
//! The run loop is a conservative (YAWNS-style) window scheme:
//!
//! 1. compute `floor` = the earliest pending event time across all shards;
//! 2. let every shard independently drain its queue up to
//!    `bound = floor + lookahead` (this is the parallel part — shards are
//!    chunked contiguously over scoped worker threads);
//! 3. at the barrier, deliver each shard's outbox in **shard-index order**,
//!    assigning receiver-side sequence numbers in that order.
//!
//! Because a send is clamped to `send_time ≥ now + lookahead ≥ bound`, no
//! event delivered in step 3 could have executed inside the window it was
//! sent from; every shard therefore saw a complete, identical event set
//! for the window regardless of how many threads ran step 2 or how they
//! were scheduled. Worker count changes wall-clock time only.
//!
//! Per-shard randomness comes from [`SimRng::fork_indexed`] on the engine's
//! base generator, so a shard's stream depends only on `(seed, shard)` —
//! never on sibling shards or execution order.
//!
//! This module is audited index-free (lintkit strict no-index): slices are
//! traversed with iterators, `get`, and `chunks_mut`, never `a[i]`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tectonic_net::{SimDuration, SimRng, SimTime};

/// Shard/worker geometry and the conservative lookahead window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of world shards. Results depend on this (it fixes the event
    /// partition), so equivalence tests hold it constant while varying
    /// `workers`.
    pub shards: usize,
    /// Number of OS threads draining shards. **Never affects results** —
    /// only wall-clock time. `1` runs inline on the calling thread.
    pub workers: usize,
    /// Conservative window width: a cross-shard send is delivered no
    /// earlier than `sender_now + lookahead`. Larger lookahead = fewer
    /// barriers; must be an upper bound on how far ahead a shard may
    /// safely run without seeing its neighbours' sends.
    pub lookahead: SimDuration,
}

impl EngineConfig {
    /// A config with the default 60 s lookahead (suits query-paced scans).
    pub fn new(shards: usize, workers: usize) -> EngineConfig {
        EngineConfig {
            shards: shards.max(1),
            workers: workers.max(1),
            lookahead: SimDuration::from_secs(60),
        }
    }

    /// Overrides the lookahead window.
    pub fn with_lookahead(mut self, lookahead: SimDuration) -> EngineConfig {
        self.lookahead = lookahead;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new(8, 4)
    }
}

/// One shard's state machine.
///
/// Implementations own all state they touch (their "stat sled"); the
/// engine guarantees `handle` is never called concurrently for the same
/// shard and that the event order seen is a pure function of the seeded
/// inputs.
pub trait ShardModel: Send {
    /// The event payload routed through the queues.
    type Event: Send;
    /// The shard-local result arena returned by [`ShardModel::finish`].
    type Out: Send;

    /// Processes one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut ShardCtx<Self::Event>);

    /// Consumes the shard into its local result once all queues are empty.
    fn finish(self) -> Self::Out;
}

/// Handler-side view of the scheduler: schedule locally, send cross-shard,
/// draw shard-scoped randomness.
pub struct ShardCtx<E> {
    shard: usize,
    shards: usize,
    now: SimTime,
    lookahead: SimDuration,
    rng: SimRng,
    local: Vec<(SimTime, E)>,
    outbox: Vec<(usize, SimTime, E)>,
}

impl<E> ShardCtx<E> {
    /// This shard's index in `[0, shard_count)`.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards in the engine.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The time of the event currently being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The shard's private generator, forked from the engine seed by shard
    /// index.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules a follow-up event on this shard. Times in the past are
    /// clamped to `now` (the queue never travels backwards).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.local.push((at.max(self.now), event));
    }

    /// Sends an event to shard `dest` (out-of-range destinations are
    /// clamped to the last shard). Delivery is clamped to
    /// `now + lookahead` or later, which is what makes the window scheme
    /// conservative: the receiver can never have already run past the
    /// delivery time.
    pub fn send(&mut self, dest: usize, at: SimTime, event: E) {
        let dest = dest.min(self.shards.saturating_sub(1));
        self.outbox
            .push((dest, at.max(self.now + self.lookahead), event));
    }

    /// Sends a clone of `event` to every *other* shard.
    pub fn broadcast(&mut self, at: SimTime, event: E)
    where
        E: Clone,
    {
        for dest in 0..self.shards {
            if dest != self.shard {
                self.send(dest, at, event.clone());
            }
        }
    }
}

/// A queued event; ordering compares `(time, seq)` only, reversed so the
/// std max-heap pops the earliest event first.
struct Queued<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Queued<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Queued<E> {}

impl<E> PartialOrd for Queued<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Queued<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// One shard: its model, queue, context, and sequence counter.
struct Slot<M: ShardModel> {
    model: M,
    queue: BinaryHeap<Queued<M::Event>>,
    ctx: ShardCtx<M::Event>,
    next_seq: u64,
}

impl<M: ShardModel> Slot<M> {
    fn push(&mut self, at: SimTime, event: M::Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Queued {
            time: at,
            seq,
            event,
        });
    }

    fn head_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|q| q.time)
    }

    /// Drains this shard's queue strictly below `bound`, in `(time, seq)`
    /// order. Locally scheduled follow-ups may land inside the window and
    /// are then processed in the same pass; cross-shard sends accumulate
    /// in the outbox for the barrier.
    fn run_window(&mut self, bound: SimTime) {
        while self.queue.peek().is_some_and(|q| q.time < bound) {
            let Some(q) = self.queue.pop() else { break };
            self.ctx.now = q.time;
            self.model.handle(q.time, q.event, &mut self.ctx);
            // Re-queue follow-ups outside the handler borrow, reusing the
            // buffer's capacity.
            let mut pending = std::mem::take(&mut self.ctx.local);
            for (at, event) in pending.drain(..) {
                self.push(at, event);
            }
            self.ctx.local = pending;
        }
    }
}

/// The sharded discrete-event engine.
pub struct Engine<M: ShardModel> {
    slots: Vec<Slot<M>>,
    workers: usize,
    lookahead: SimDuration,
}

impl<M: ShardModel> Engine<M> {
    /// Builds an engine over `models` (one per shard; the shard count is
    /// `models.len()`, which callers derive from `config.shards`). Each
    /// shard's RNG is forked from `base_rng` by shard index.
    pub fn new(config: &EngineConfig, models: Vec<M>, base_rng: &SimRng) -> Engine<M> {
        let shards = models.len();
        let slots = models
            .into_iter()
            .enumerate()
            .map(|(i, model)| Slot {
                model,
                queue: BinaryHeap::new(),
                ctx: ShardCtx {
                    shard: i,
                    shards,
                    now: SimTime::EPOCH,
                    // A zero lookahead would stall the window loop (bound
                    // == floor drains nothing); clamp to one tick.
                    lookahead: config.lookahead.max(SimDuration::from_millis(1)),
                    // Lossless on every supported platform (usize ≤ 64
                    // bits); the fallback can only fire on a >64-bit
                    // target and still yields a distinct stream per shard.
                    rng: base_rng
                        .fork_indexed("engine-shard", u64::try_from(i).unwrap_or(u64::MAX)),
                    local: Vec::new(),
                    outbox: Vec::new(),
                },
                next_seq: 0,
            })
            .collect();
        Engine {
            slots,
            workers: config.workers.max(1),
            lookahead: config.lookahead.max(SimDuration::from_millis(1)),
        }
    }

    /// Enqueues an initial event on `shard` (clamped to the last shard if
    /// out of range) before the run starts.
    pub fn seed(&mut self, shard: usize, at: SimTime, event: M::Event) {
        let last = self.slots.len().saturating_sub(1);
        if let Some(slot) = self.slots.get_mut(shard.min(last)) {
            slot.push(at, event);
        }
    }

    /// Runs every shard to queue exhaustion and returns the per-shard
    /// results **in shard-index order**. Callers merge them with their own
    /// deterministic fold.
    pub fn run(mut self) -> Vec<M::Out> {
        let workers = self.workers.min(self.slots.len()).max(1);
        loop {
            let floor = self.slots.iter().filter_map(Slot::head_time).min();
            let Some(floor) = floor else { break };
            let bound = floor + self.lookahead;

            if workers == 1 {
                for slot in &mut self.slots {
                    slot.run_window(bound);
                }
            } else {
                // Contiguous chunks over scoped threads; the spawning
                // thread works the first chunk itself. Windows are few
                // (each advances the floor by >= lookahead), so per-window
                // spawning is cheap relative to the work inside.
                let chunk = self.slots.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    let mut chunks = self.slots.chunks_mut(chunk);
                    let first = chunks.next();
                    for rest in chunks {
                        scope.spawn(move || {
                            for slot in rest {
                                slot.run_window(bound);
                            }
                        });
                    }
                    if let Some(first) = first {
                        for slot in first {
                            slot.run_window(bound);
                        }
                    }
                });
            }

            // Barrier: deliver outboxes in shard-index order so receiver
            // sequence numbers are a pure function of the event history.
            for src in 0..self.slots.len() {
                let outbox = match self.slots.get_mut(src) {
                    Some(slot) => std::mem::take(&mut slot.ctx.outbox),
                    None => continue,
                };
                for (dest, at, event) in outbox {
                    let last = self.slots.len().saturating_sub(1);
                    if let Some(slot) = self.slots.get_mut(dest.min(last)) {
                        slot.push(at, event);
                    }
                }
            }
        }
        self.slots.into_iter().map(|s| s.model.finish()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every event it sees, forwards "ping" events to the next
    /// shard, and draws from the shard RNG so tests can pin RNG stability.
    struct Recorder {
        log: Vec<(u64, u32)>,
        draws: Vec<u64>,
        forward: bool,
    }

    /// What one [`Recorder`] shard hands back: its event log and RNG draws.
    type RecorderOut = (Vec<(u64, u32)>, Vec<u64>);

    impl ShardModel for Recorder {
        type Event = u32;
        type Out = RecorderOut;

        fn handle(&mut self, now: SimTime, event: u32, ctx: &mut ShardCtx<u32>) {
            self.log.push((now.as_millis(), event));
            self.draws.push(ctx.rng().next_u64_raw());
            if self.forward && event > 0 {
                let dest = (ctx.shard() + 1) % ctx.shard_count();
                ctx.send(dest, now, event - 1);
            }
        }

        fn finish(self) -> Self::Out {
            (self.log, self.draws)
        }
    }

    fn run_ring(shards: usize, workers: usize) -> Vec<RecorderOut> {
        let config = EngineConfig::new(shards, workers).with_lookahead(SimDuration::from_secs(1));
        let models = (0..config.shards)
            .map(|_| Recorder {
                log: Vec::new(),
                draws: Vec::new(),
                forward: true,
            })
            .collect();
        let mut engine = Engine::new(&config, models, &SimRng::new(99));
        engine.seed(0, SimTime(1000), 5);
        engine.seed(shards / 2, SimTime(1500), 3);
        engine.run()
    }

    #[test]
    fn worker_count_is_unobservable() {
        let one = run_ring(4, 1);
        for workers in [2, 3, 4, 8] {
            assert_eq!(one, run_ring(4, workers), "workers={workers}");
        }
    }

    #[test]
    fn cross_shard_sends_respect_lookahead() {
        let out = run_ring(4, 2);
        // The ping chain starts at t=1000 on shard 0 with ttl 5; each hop
        // is clamped one lookahead (1s) later on the next shard.
        let times: Vec<u64> = out
            .iter()
            .flat_map(|(log, _)| log.iter())
            .map(|(t, _)| *t)
            .collect();
        assert!(times.contains(&1000) && times.contains(&2000) && times.contains(&6000));
        // Five hops from the first seed + three from the second.
        assert_eq!(times.len(), 2 + 5 + 3);
    }

    #[test]
    fn shard_order_within_time_is_seq_order() {
        struct Local(Vec<u32>);
        impl ShardModel for Local {
            type Event = u32;
            type Out = Vec<u32>;
            fn handle(&mut self, _now: SimTime, event: u32, ctx: &mut ShardCtx<u32>) {
                self.0.push(event);
                if event == 1 {
                    // Same-time follow-ups keep insertion order.
                    ctx.schedule(ctx.now(), 10);
                    ctx.schedule(ctx.now(), 11);
                }
            }
            fn finish(self) -> Vec<u32> {
                self.0
            }
        }
        let config = EngineConfig::new(1, 1);
        let mut engine = Engine::new(&config, vec![Local(Vec::new())], &SimRng::new(1));
        engine.seed(0, SimTime(5), 1);
        engine.seed(0, SimTime(5), 2);
        let out = engine.run();
        assert_eq!(out, vec![vec![1, 2, 10, 11]]);
    }

    #[test]
    fn shard_rngs_depend_only_on_seed_and_index() {
        let a = run_ring(4, 1);
        let b = run_ring(4, 4);
        let draws_a: Vec<_> = a.iter().map(|(_, d)| d.clone()).collect();
        let draws_b: Vec<_> = b.iter().map(|(_, d)| d.clone()).collect();
        assert_eq!(draws_a, draws_b);
        // Distinct shards draw distinct streams.
        let flat: Vec<u64> = draws_a.into_iter().flatten().collect();
        let mut dedup = flat.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(flat.len(), dedup.len());
    }

    #[test]
    fn empty_engine_and_empty_shards_terminate() {
        let config = EngineConfig::new(3, 2);
        let models = (0..3)
            .map(|_| Recorder {
                log: Vec::new(),
                draws: Vec::new(),
                forward: false,
            })
            .collect();
        let engine = Engine::new(&config, models, &SimRng::new(0));
        // No seeded events at all: run returns immediately.
        let out = engine.run();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(log, _)| log.is_empty()));
    }

    #[test]
    fn zero_lookahead_is_clamped_and_terminates() {
        let config = EngineConfig::new(2, 2).with_lookahead(SimDuration::ZERO);
        let models = (0..2)
            .map(|_| Recorder {
                log: Vec::new(),
                draws: Vec::new(),
                forward: true,
            })
            .collect();
        let mut engine = Engine::new(&config, models, &SimRng::new(7));
        engine.seed(0, SimTime(10), 2);
        let out = engine.run();
        let events: usize = out.iter().map(|(log, _)| log.len()).sum();
        assert_eq!(events, 3);
    }
}
