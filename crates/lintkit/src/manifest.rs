//! Vendored-shim public-API manifest.
//!
//! The workspace vendors its third-party dependencies as minimal
//! API-compatible shims under `vendor/` (the build environment has no
//! crates.io access). Their public surface is the contract the rest of the
//! workspace compiles against, so it is pinned in `vendor/API_MANIFEST.txt`
//! and checked on every lint run: silently widening or shrinking a shim —
//! the classic way a shim drifts away from the real crate — becomes a
//! visible diff that must be committed alongside the change.
//!
//! The manifest is a sorted list of `file: kind name` lines extracted from
//! every `pub` item (restricted `pub(crate)`/`pub(super)` items are not
//! public API and are excluded). Regenerate with
//! `cargo run -p xtask -- lint --update-manifest`.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::lexer::{lex, TokenKind};
use crate::rules::{Finding, Rule};

/// File name of the checked-in manifest, relative to `vendor/`.
pub const MANIFEST_FILE: &str = "API_MANIFEST.txt";

const HEADER: &str = "\
# Public API of the vendored dependency shims (see vendor/README.md).
# Regenerate with: cargo run -p xtask -- lint --update-manifest
# Checked by `xtask lint` (rule: vendor-manifest) to catch silent drift.
";

/// Generates the manifest text for `vendor_dir`.
pub fn generate(vendor_dir: &Path) -> io::Result<String> {
    let mut lines = BTreeSet::new();
    let mut crates: Vec<_> = fs::read_dir(vendor_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    for krate in crates {
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(vendor_dir)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            for item in public_items(&text) {
                lines.insert(format!("{rel}: {item}"));
            }
        }
    }
    let mut out = String::from(HEADER);
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    Ok(out)
}

/// Compares the generated manifest against the checked-in one.
pub fn check(vendor_dir: &Path) -> io::Result<Vec<Finding>> {
    let manifest_path = vendor_dir.join(MANIFEST_FILE);
    let rel_manifest = format!("vendor/{MANIFEST_FILE}");
    let want = generate(vendor_dir)?;
    let have = match fs::read_to_string(&manifest_path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(vec![Finding {
                rule: Rule::VendorManifest,
                file: rel_manifest,
                line: 0,
                message: "manifest missing — run `cargo run -p xtask -- lint --update-manifest`"
                    .to_string(),
            }]);
        }
        Err(e) => return Err(e),
    };
    let want_set: BTreeSet<&str> = want
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    let have_set: BTreeSet<&str> = have
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    let mut findings = Vec::new();
    for added in want_set.difference(&have_set) {
        findings.push(Finding {
            rule: Rule::VendorManifest,
            file: rel_manifest.clone(),
            line: 0,
            message: format!("shim API gained `{added}` — update the manifest if intended"),
        });
    }
    for removed in have_set.difference(&want_set) {
        findings.push(Finding {
            rule: Rule::VendorManifest,
            file: rel_manifest.clone(),
            line: 0,
            message: format!("shim API lost `{removed}` — update the manifest if intended"),
        });
    }
    Ok(findings)
}

/// Recursively collects `.rs` files under `dir`.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts `kind name` descriptors for every unrestricted `pub` item in
/// `src`, at any nesting depth (methods in `impl` blocks are the bulk of a
/// shim's API surface). `pub use` re-exports record the full path.
pub fn public_items(src: &str) -> Vec<String> {
    let tokens = lex(src);
    let code: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Restricted visibility (`pub(crate)`, `pub(in …)`) is not public
        // API: skip the parenthesised scope and do not record the item.
        let restricted = code.get(j).is_some_and(|t| t.is_punct(b'('));
        if restricted {
            let mut depth = 0i32;
            while j < code.len() {
                if code[j].is_punct(b'(') {
                    depth += 1;
                } else if code[j].is_punct(b')') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // Skip qualifiers before the item keyword.
        while code.get(j).is_some_and(|t| {
            t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern")
        }) {
            // `pub const NAME` — `const` doubles as an item keyword when the
            // next token is the name followed by `:`.
            if code[j].is_ident("const")
                && code
                    .get(j + 2)
                    .is_some_and(|t| t.is_punct(b':') || t.is_punct(b'<'))
            {
                break;
            }
            j += 1;
        }
        let Some(kw) = code.get(j) else { break };
        let kind = kw.text.as_str();
        match kind {
            "fn" | "struct" | "enum" | "union" | "trait" | "mod" | "type" | "static" | "const"
            | "macro" => {
                if let Some(name) = code.get(j + 1) {
                    if name.kind == TokenKind::Ident {
                        items.push(format!("{} {}", kind, name.text));
                    }
                }
            }
            "use" => {
                let mut path = String::from("use ");
                let mut k = j + 1;
                while let Some(t) = code.get(k) {
                    if t.is_punct(b';') {
                        break;
                    }
                    match t.kind {
                        TokenKind::Ident => path.push_str(&t.text),
                        TokenKind::Punct(c) => path.push(c as char),
                        _ => {}
                    }
                    k += 1;
                }
                items.push(path);
            }
            _ => {}
        }
        i = j + 1;
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_items_at_all_depths() {
        let src = "\
pub struct Foo;
pub(crate) struct Hidden;
impl Foo {
    pub fn new() -> Foo { Foo }
    fn private() {}
}
pub mod m { pub const X: u32 = 1; }
pub use inner::{A, B};
";
        let items = public_items(src);
        assert!(items.contains(&"struct Foo".to_string()));
        assert!(items.contains(&"fn new".to_string()));
        assert!(items.contains(&"const X".to_string()));
        assert!(items.contains(&"use inner::{A,B}".to_string()));
        assert!(!items.iter().any(|i| i.contains("Hidden")));
        assert!(!items.iter().any(|i| i.contains("private")));
    }

    #[test]
    fn qualified_fns_and_consts() {
        let src = "pub const fn f() {}\npub unsafe fn g() {}\npub const MAX: u8 = 3;";
        let items = public_items(src);
        assert!(items.contains(&"fn f".to_string()));
        assert!(items.contains(&"fn g".to_string()));
        assert!(items.contains(&"const MAX".to_string()));
    }
}
