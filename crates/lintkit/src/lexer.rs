//! A minimal Rust lexer.
//!
//! The analyzer needs just enough lexical structure to find macro
//! invocations, method calls and attributes without being fooled by
//! comments, string literals or lifetimes. No external crates (`syn` is
//! unavailable in the build environment), so this hand-rolled lexer covers
//! the token shapes that actually occur in the workspace: identifiers,
//! punctuation, lifetimes, numeric/char/byte/string literals (including
//! raw strings with `#` guards) and both comment styles (block comments
//! nest, as in real Rust).
//!
//! The lexer is loss-tolerant: an unterminated literal or a stray byte
//! yields a [`TokenKind::Error`] token and lexing continues, so a syntax
//! error in one corner of a file cannot hide findings elsewhere.

/// The kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// A single punctuation byte (`.`, `!`, `[`, …).
    Punct(u8),
    /// A numeric, string, char or byte literal.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A `//…` or `/*…*/` comment, doc comments included.
    Comment,
    /// An unrecognised or unterminated construct.
    Error,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// The token text (empty for punctuation; see [`TokenKind::Punct`]).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: u8) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `src` into a token stream, comments included.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, keeping the line counter current.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' | b'c' if self.raw_or_byte_literal(line) => {}
                b'"' => self.string_literal(line),
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line),
                _ if b < 0x80 => {
                    self.bump();
                    self.push(TokenKind::Punct(b), String::new(), line);
                }
                _ => {
                    // Non-ASCII outside literals/comments: skip the byte.
                    self.bump();
                    self.push(TokenKind::Error, String::new(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump(); // consume "/*"
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Comment, text, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'` and raw
    /// identifiers (`r#type`). Returns `false` when the `r`/`b`/`c` at the
    /// cursor is just the start of a plain identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let b0 = match self.peek(0) {
            Some(b) => b,
            None => return false,
        };
        // Byte char literal: b'x'
        if b0 == b'b' && self.peek(1) == Some(b'\'') {
            self.bump();
            self.char_body(line);
            return true;
        }
        // Count an optional second prefix byte (br / rb do not both exist,
        // but br"…" does).
        let mut idx = 1;
        if b0 == b'b' && self.peek(1) == Some(b'r') {
            idx = 2;
        }
        // Raw guard hashes.
        let mut hashes = 0usize;
        while self.peek(idx + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(idx + hashes) != Some(b'"') {
            // `r#ident` raw identifier: let the ident path handle it so the
            // identifier text round-trips (minus nothing — keep `r#`).
            if b0 == b'r' && hashes == 1 {
                if let Some(c) = self.peek(2) {
                    if c == b'_' || c.is_ascii_alphabetic() {
                        self.ident_raw(line);
                        return true;
                    }
                }
            }
            return false; // plain identifier starting with r/b/c
        }
        // Only `r`-flavoured prefixes introduce *raw* strings; `b"` / `c"`
        // are escaped strings with a one-byte prefix.
        let raw = b0 == b'r' || (b0 == b'b' && idx == 2);
        for _ in 0..idx + hashes {
            self.bump();
        }
        if raw {
            self.raw_string_body(line, hashes);
        } else {
            self.string_literal(line);
        }
        true
    }

    fn ident_raw(&mut self, line: u32) {
        let start = self.pos;
        self.bump(); // r
        self.bump(); // #
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line);
    }

    fn raw_string_body(&mut self, line: u32, hashes: usize) {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
                None => {
                    self.push(TokenKind::Error, String::new(), line);
                    return;
                }
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
                None => {
                    self.push(TokenKind::Error, String::new(), line);
                    return;
                }
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// After a `'`: lifetime (`'a`), loop label (`'outer:`) or char literal
    /// (`'x'`, `'\n'`). A lifetime is an identifier not followed by a
    /// closing quote.
    fn char_or_lifetime(&mut self, line: u32) {
        let next = self.peek(1);
        let is_ident_start = matches!(next, Some(b) if b == b'_' || b.is_ascii_alphabetic());
        if is_ident_start && self.peek(2) != Some(b'\'') {
            self.bump(); // '
            let start = self.pos;
            while let Some(b) = self.peek(0) {
                if b == b'_' || b.is_ascii_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.char_body(line);
        }
    }

    fn char_body(&mut self, line: u32) {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some(b'\'') => break,
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
                None => {
                    self.push(TokenKind::Error, String::new(), line);
                    return;
                }
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    fn number(&mut self, line: u32) {
        // Digits, underscores, type suffixes and hex letters. `.` is left
        // to punctuation so `0..n` and `x.1` lex predictably; `1.5` becomes
        // three tokens, which is fine for every rule here.
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_hide_their_contents() {
        let toks = lex("a // x.unwrap()\nb /* panic! /* nested */ still */ c");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "x.unwrap() // not a comment"; t"#);
        assert!(toks.iter().all(|t| !t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = lex(r###"let s = r#"quote " inside"#; after"###);
        assert!(toks.iter().any(|t| t.is_ident("after")));
        let toks = lex("let b = br\"bytes\"; after");
        assert!(toks.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn raw_identifier() {
        let toks = lex("let r#type = 1;");
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_literal_is_tolerated() {
        let toks = lex("let s = \"oops");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Error));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let k = kinds("0..10");
        assert_eq!(
            k,
            vec![
                TokenKind::Literal,
                TokenKind::Punct(b'.'),
                TokenKind::Punct(b'.'),
                TokenKind::Literal
            ]
        );
    }
}
