//! The findings baseline ratchet and the machine-readable JSON report.
//!
//! `lint-baseline.json` (workspace root) pins the accepted findings by
//! `(rule, file, line)`. The gate then enforces a ratchet:
//!
//! * a finding **not** in the baseline fails the build (new violation),
//! * a baseline entry that no longer fires **also** fails the build (the
//!   debt was paid — the entry must be deleted so it cannot hide a future
//!   regression at the same location).
//!
//! `cargo run -p xtask -- lint --update-baseline` regenerates the file,
//! mirroring the vendor-manifest flow. `--json <path>` writes the full
//! findings report in the same schema (plus messages) for CI artifacts.
//!
//! lintkit is dependency-free, so the JSON writer and the (schema-specific
//! but escape-correct) parser are hand-rolled here.

use std::fmt::Write as _;

use crate::rules::{Finding, Rule};

/// The baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// One accepted finding: the ratchet key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule name (stable, as in allow comments).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
}

/// The ratchet verdict from [`apply`].
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — new violations.
    pub unbaselined: Vec<Finding>,
    /// Baseline entries that no longer fire — stale debt to delete.
    pub stale: Vec<BaselineEntry>,
}

impl BaselineOutcome {
    /// Whether the ratchet passes.
    pub fn is_clean(&self) -> bool {
        self.unbaselined.is_empty() && self.stale.is_empty()
    }
}

/// Splits `findings` against a parsed baseline.
pub fn apply(findings: &[Finding], baseline: &[BaselineEntry]) -> BaselineOutcome {
    let mut outcome = BaselineOutcome::default();
    for f in findings {
        let covered = baseline
            .iter()
            .any(|b| b.rule == f.rule.name() && b.file == f.file && b.line == f.line);
        if !covered {
            outcome.unbaselined.push(f.clone());
        }
    }
    for b in baseline {
        let fires = findings
            .iter()
            .any(|f| b.rule == f.rule.name() && b.file == f.file && b.line == f.line);
        if !fires {
            outcome.stale.push(b.clone());
        }
    }
    outcome
}

/// Renders the baseline for `findings` (sorted, deduplicated).
pub fn generate(findings: &[Finding]) -> String {
    let mut entries: Vec<BaselineEntry> = findings
        .iter()
        .map(|f| BaselineEntry {
            rule: f.rule.name().to_string(),
            file: f.file.clone(),
            line: f.line,
        })
        .collect();
    entries.sort();
    entries.dedup();
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{ \"rule\": {}, \"file\": {}, \"line\": {} }}",
            json_string(&e.rule),
            json_string(&e.file),
            e.line
        );
    }
    if entries.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Renders the full findings report (baseline schema plus messages) for
/// the CI artifact.
pub fn report_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {} }}",
            json_string(f.rule.name()),
            json_string(&f.file),
            f.line,
            json_string(&f.message)
        );
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Parses a baseline file. Unknown keys are ignored; entries naming a rule
/// lintkit no longer defines are rejected so the baseline cannot rot.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let value = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    }
    .parse()?;
    let Json::Object(top) = value else {
        return Err("baseline: top level must be an object".to_string());
    };
    let Some(Json::Array(items)) = top.iter().find(|(k, _)| k == "findings").map(|(_, v)| v) else {
        return Err("baseline: missing `findings` array".to_string());
    };
    let mut entries = Vec::new();
    for item in items {
        let Json::Object(fields) = item else {
            return Err("baseline: each finding must be an object".to_string());
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(Json::String(rule)) = get("rule") else {
            return Err("baseline: finding missing string `rule`".to_string());
        };
        let Some(Json::String(file)) = get("file") else {
            return Err("baseline: finding missing string `file`".to_string());
        };
        let Some(Json::Number(line)) = get("line") else {
            return Err("baseline: finding missing numeric `line`".to_string());
        };
        if Rule::from_name(rule).is_none() {
            return Err(format!("baseline: unknown rule `{rule}`"));
        }
        entries.push(BaselineEntry {
            rule: rule.clone(),
            file: file.clone(),
            line: *line as u32,
        });
    }
    Ok(entries)
}

/// JSON string literal with full escaping — shared with the SARIF writer.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses JSON text in the supported subset — shared with the incremental
/// cache's loader ([`crate::cache`]).
pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    }
    .parse()
}

/// The JSON subset the baseline schema needs.
#[derive(Debug)]
pub(crate) enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    /// `true`/`false`/`null` — valid JSON the schema ignores, so the
    /// parser does not keep the value.
    Scalar,
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("baseline: trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    // Named `eat`, not `expect`, so the no-panic token rule (which flags
    // any `.expect(` call) stays simple.
    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "baseline: expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(format!("baseline: bad object at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("baseline: bad array at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(Json::Scalar)
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(Json::Scalar)
            }
            Some(b'n') if self.bytes[self.pos..].starts_with(b"null") => {
                self.pos += 4;
                Ok(Json::Scalar)
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.bytes.get(self.pos),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "baseline: bad number".to_string())?;
                text.parse::<f64>()
                    .map(Json::Number)
                    .map_err(|_| format!("baseline: bad number `{text}`"))
            }
            _ => Err(format!("baseline: unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("baseline: bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("baseline: bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "baseline: invalid utf-8".to_string())?;
                    let c = rest.chars().next().ok_or("baseline: bad string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("baseline: unterminated string".to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "msg with \"quotes\" and \\slash".to_string(),
        }
    }

    #[test]
    fn generate_parse_round_trip() {
        let findings = vec![
            finding(Rule::PanicReachability, "crates/a/src/lib.rs", 12),
            finding(Rule::LockOrder, "crates/b/src/lib.rs", 3),
        ];
        let text = generate(&findings);
        let parsed = parse(&text).expect("round trip");
        assert_eq!(parsed.len(), 2);
        // generate() sorts by (rule, file, line) — BaselineEntry ordering.
        assert_eq!(parsed[0].rule, "lock-order");
        assert_eq!(parsed[1].rule, "panic-reachability");
        assert_eq!(parsed[1].line, 12);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let text = generate(&[]);
        assert!(parse(&text).expect("empty").is_empty());
    }

    #[test]
    fn ratchet_splits_new_and_stale() {
        let baseline = vec![
            BaselineEntry {
                rule: "panic-reachability".to_string(),
                file: "a.rs".to_string(),
                line: 1,
            },
            BaselineEntry {
                rule: "panic-reachability".to_string(),
                file: "paid.rs".to_string(),
                line: 9,
            },
        ];
        let findings = vec![
            finding(Rule::PanicReachability, "a.rs", 1),
            finding(Rule::PanicReachability, "new.rs", 5),
        ];
        let outcome = apply(&findings, &baseline);
        assert!(!outcome.is_clean());
        assert_eq!(outcome.unbaselined.len(), 1);
        assert_eq!(outcome.unbaselined[0].file, "new.rs");
        assert_eq!(outcome.stale.len(), 1);
        assert_eq!(outcome.stale[0].file, "paid.rs");
    }

    #[test]
    fn clean_when_baseline_matches_exactly() {
        let findings = vec![finding(Rule::DeterminismTaint, "a.rs", 2)];
        let baseline = parse(&generate(&findings)).expect("parse");
        assert!(apply(&findings, &baseline).is_clean());
    }

    #[test]
    fn unknown_rule_in_baseline_rejected() {
        let text =
            "{\"version\":1,\"findings\":[{\"rule\":\"no-such\",\"file\":\"a\",\"line\":1}]}";
        assert!(parse(text).is_err());
    }

    #[test]
    fn report_json_escapes_messages() {
        let text = report_json(&[finding(Rule::NoPanic, "a.rs", 1)]);
        assert!(text.contains("\\\"quotes\\\""));
        assert!(text.contains("\\\\slash"));
        // And stays parseable by our own parser (message key ignored).
        let entries = parse(&text).expect("report parses as baseline schema");
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"findings\": 3}",
            "{\"findings\":[{\"rule\":3}]}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
