//! Resource-soundness rules: allocation reachability and integer
//! arithmetic strictness.
//!
//! Three rules live here:
//!
//! * **alloc-in-hot-path** — allocation sites (collected per function by
//!   [`crate::symbols`]) must not be reachable from a declared steady-state
//!   hot entry point ([`crate::Config::hot_paths`]). "Allocates" propagates
//!   through the call graph; traversal is pruned at the
//!   [`crate::Config::warm_paths`] boundary, the construction/setup
//!   functions whose allocations are one-time cost rather than steady
//!   state. ⊥ (dynamic dispatch) does *not* propagate allocation: the rule
//!   checks known sites, mirroring determinism-taint, so the baseline stays
//!   reserved for panic-reachability ⊥ findings.
//! * **narrowing-cast** — in strict-arithmetic files
//!   ([`crate::Config::strict_arith`]), a lossy `as` cast is a finding:
//!   width-losing (`usize`/`u64`/`u128` down to `u32`/`u16`/`u8`) or
//!   signedness-flipping. Widening casts and casts whose operand is
//!   mask-bounded (`(x & 0xff) as u8`) stay silent, as do casts whose
//!   source width the lexical environment cannot establish — the rule
//!   trades recall for zero false positives on the hot kernels.
//! * **unchecked-arith** — in the same strict files, a bare `+`/`-`/`*`/
//!   `<<` whose operands are known size/index-typed is a finding unless the
//!   statement is bounds-dominated: it heads an `if`/`while`/`for`/assert
//!   guard, or carries a `checked_*`/`saturating_*`/`wrapping_*`/
//!   `min`/`max`/`clamp` boundary.
//!
//! The width environment is lexical, not type-checked: it records
//! `name: u32`-shaped ascriptions (fn params, struct fields, `let`
//! bindings) plus `let n = … as u32;` / `let n = ….len();` tails, and
//! drops a name to "unknown" on conflicting sightings. Unknown-width
//! operands never produce findings. `usize`/`isize` are treated as 64-bit,
//! the only targets the arena layouts support.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::graph::{CallGraph, Callee};
use crate::lexer::{Token, TokenKind};
use crate::rules::{is_index_base, Finding, Rule};

/// Heap-constructing type heads for path calls (`Vec::with_capacity`,
/// `Box::new`, …). Shared with the symbol collector's site classifier.
pub(crate) const HEAP_TYPES: [&str; 12] = [
    "Vec",
    "VecDeque",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "Box",
    "Arc",
    "Rc",
    "BinaryHeap",
    "PathBuf",
];

/// Methods that allocate regardless of receiver type.
pub(crate) const ALLOC_METHODS: [&str; 4] = ["to_string", "to_vec", "to_owned", "collect"];

/// Methods returning a `usize` length/count — the width the cast and
/// arithmetic rules assume for `recv.len() as u32`-shaped expressions.
const LEN_METHODS: [&str; 3] = ["len", "count", "capacity"];

// ---------------------------------------------------------------------------
// alloc-in-hot-path (interprocedural)
// ---------------------------------------------------------------------------

/// **alloc-in-hot-path** — flags every allocation site reachable from a
/// `hot_paths` entry, pruning traversal at the `warm_paths` boundary.
/// Patterns that match no workspace function are findings themselves, so a
/// rename cannot silently disable the analysis.
pub(crate) fn alloc_in_hot_path(
    graph: &CallGraph,
    hot_paths: &[String],
    warm_paths: &[String],
    findings: &mut Vec<Finding>,
) {
    let mut warm: BTreeSet<usize> = BTreeSet::new();
    for pattern in warm_paths {
        let resolved = graph.resolve_entry(pattern);
        if resolved.is_empty() {
            findings.push(Finding {
                rule: Rule::AllocInHotPath,
                file: "lintkit.config".to_string(),
                line: 0,
                message: format!(
                    "warm path `{pattern}` matches no workspace function — \
                     update Config::warm_paths so the boundary stays live"
                ),
            });
        }
        warm.extend(resolved);
    }
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for pattern in hot_paths {
        let entries = graph.resolve_entry(pattern);
        if entries.is_empty() {
            findings.push(Finding {
                rule: Rule::AllocInHotPath,
                file: "lintkit.config".to_string(),
                line: 0,
                message: format!(
                    "hot path `{pattern}` matches no workspace function — \
                     update Config::hot_paths so the analysis stays live"
                ),
            });
            continue;
        }
        for entry in entries {
            let parent = bfs_pruned(graph, entry, &warm);
            let mut reached: Vec<usize> = parent.keys().copied().collect();
            reached.sort_unstable();
            for i in reached {
                let f = &graph.funcs[i];
                for site in &f.alloc_sites {
                    if seen.insert((f.file.clone(), site.line)) {
                        findings.push(Finding {
                            rule: Rule::AllocInHotPath,
                            file: f.file.clone(),
                            line: site.line,
                            message: format!(
                                "{} reachable from hot entry `{}` via {} — hoist into \
                                 setup, reuse a scratch buffer, or add a reasoned allow",
                                site.what,
                                graph.funcs[entry].path(),
                                crate::reach::path_to(graph, &parent, i),
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// [`crate::reach`]-style BFS that never enqueues a warm-boundary
/// function: a construction helper's allocations are one-time setup cost,
/// and nothing it calls counts as steady state either.
fn bfs_pruned(graph: &CallGraph, start: usize, warm: &BTreeSet<usize>) -> HashMap<usize, usize> {
    let mut parent = HashMap::new();
    parent.insert(start, start);
    let mut queue = VecDeque::from([start]);
    while let Some(i) = queue.pop_front() {
        for e in &graph.edges[i] {
            if let Callee::Func(j) = e.callee {
                if warm.contains(&j) {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(j) {
                    slot.insert(i);
                    queue.push_back(j);
                }
            }
        }
    }
    parent
}

// ---------------------------------------------------------------------------
// narrowing-cast + unchecked-arith (per-file, strict-arith files)
// ---------------------------------------------------------------------------

/// An integer type's width and signedness. `usize`/`isize` count as
/// 64-bit — the workspace's arena layouts already assume 64-bit targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IntTy {
    bits: u16,
    signed: bool,
}

fn int_ty(name: &str) -> Option<IntTy> {
    let t = |bits, signed| Some(IntTy { bits, signed });
    match name {
        "u8" => t(8, false),
        "u16" => t(16, false),
        "u32" => t(32, false),
        "u64" => t(64, false),
        "u128" => t(128, false),
        "usize" => t(64, false),
        "i8" => t(8, true),
        "i16" => t(16, true),
        "i32" => t(32, true),
        "i64" => t(64, true),
        "i128" => t(128, true),
        "isize" => t(64, true),
        _ => None,
    }
}

/// Runs the two per-file strict-arithmetic rules over one file's
/// comment-free token stream. Called from [`crate::rules::check_file`]
/// when the file is listed in `Config::strict_arith`.
pub(crate) fn check_arith(
    rel_path: &str,
    code: &[&Token],
    skip: &[(usize, usize)],
    suppressed: &dyn Fn(Rule, u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    let env = width_env(code);
    let in_skip = |i: usize| skip.iter().any(|(lo, hi)| (*lo..=*hi).contains(&i));
    check_narrowing(rel_path, code, &in_skip, suppressed, &env, findings);
    check_ops(rel_path, code, &in_skip, suppressed, &env, findings);
}

/// The lexical width environment: every `name` whose integer type the file
/// states outright. Conflicting sightings drop the name to `None`
/// (unknown), so reuse of a name across functions can only *lose*
/// precision, never fabricate a finding.
fn width_env(code: &[&Token]) -> HashMap<String, Option<IntTy>> {
    let mut env: HashMap<String, Option<IntTy>> = HashMap::new();
    fn record(env: &mut HashMap<String, Option<IntTy>>, name: &str, ty: IntTy) {
        match env.entry(name.to_string()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if *e.get() != Some(ty) {
                    e.insert(None);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Some(ty));
            }
        }
    }
    for i in 0..code.len() {
        // `name: u32` — fn params, struct fields, let ascriptions, consts.
        // A single `:` (not `::`), optional `&`/`mut`, then a bare integer
        // type that ends its segment.
        if code[i].kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && !code.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && (i == 0 || !code[i - 1].is_punct(b':'))
        {
            let mut j = i + 2;
            while code
                .get(j)
                .is_some_and(|t| t.is_punct(b'&') || t.is_ident("mut"))
            {
                j += 1;
            }
            if let Some(ty_tok) = code.get(j) {
                if let Some(ty) = int_ty(&ty_tok.text) {
                    let ends_segment = code.get(j + 1).is_none_or(|n| {
                        matches!(
                            n.kind,
                            TokenKind::Punct(b',' | b')' | b';' | b'=' | b'}' | b'>' | b'{' | b']')
                        )
                    });
                    if ends_segment {
                        record(&mut env, &code[i].text, ty);
                    }
                }
            }
        }
        // `let name = … as u32;` / `let name = ….len();` — infer from the
        // statement tail when there is no ascription.
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = code.get(j) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident
                || !code.get(j + 1).is_some_and(|t| t.is_punct(b'='))
            {
                continue;
            }
            let Some(semi) = stmt_semi(code, j + 2) else {
                continue;
            };
            if semi >= 2 && code[semi - 2].is_ident("as") {
                if let Some(ty) = int_ty(&code[semi - 1].text) {
                    record(&mut env, &name_tok.text, ty);
                }
            } else if semi >= 4
                && code[semi - 1].is_punct(b')')
                && code[semi - 2].is_punct(b'(')
                && LEN_METHODS.contains(&code[semi - 3].text.as_str())
                && code[semi - 4].is_punct(b'.')
            {
                record(
                    &mut env,
                    &name_tok.text,
                    IntTy {
                        bits: 64,
                        signed: false,
                    },
                );
            }
        }
    }
    env
}

/// Index of the `;` terminating the statement starting at `from`, at
/// bracket depth 0. Gives up (returns `None`) on a top-level `{`, so
/// `let … else {` and block tails do not confuse the tail inference.
fn stmt_semi(code: &[&Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(from) {
        match t.kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
            TokenKind::Punct(b'{') if depth == 0 => return None,
            TokenKind::Punct(b';') if depth == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

fn check_narrowing(
    rel_path: &str,
    code: &[&Token],
    in_skip: &dyn Fn(usize) -> bool,
    suppressed: &dyn Fn(Rule, u32) -> bool,
    env: &HashMap<String, Option<IntTy>>,
    findings: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        if !code[i].is_ident("as") || in_skip(i) {
            continue;
        }
        let Some(tgt_tok) = code.get(i + 1) else {
            continue;
        };
        let Some(tgt) = int_ty(&tgt_tok.text) else {
            continue;
        };
        let Some(src) = cast_source(code, i, env) else {
            continue;
        };
        let Some(why) = lossy(src, tgt) else { continue };
        if suppressed(Rule::NarrowingCast, code[i].line) {
            continue;
        }
        let target_name = tgt_tok.text.clone();
        findings.push(Finding {
            rule: Rule::NarrowingCast,
            file: rel_path.to_string(),
            line: code[i].line,
            message: format!(
                "`as {target_name}` {why} — use {}::try_from / a checked \
                 narrowing, or add a reasoned allow",
                target_name
            ),
        });
    }
}

/// Why a `src → tgt` cast is lossy, or `None` when it is value-preserving.
fn lossy(src: IntTy, tgt: IntTy) -> Option<String> {
    if src.bits > tgt.bits {
        Some(format!("may truncate a {}-bit value", src.bits))
    } else if src.signed && !tgt.signed {
        Some("discards the sign of a signed value".to_string())
    } else if !src.signed && tgt.signed && tgt.bits <= src.bits {
        Some(format!(
            "can overflow the sign bit of a {}-bit unsigned value",
            src.bits
        ))
    } else {
        None
    }
}

/// The width of the operand left of the `as` at `as_idx`, when the lexical
/// environment can establish it. `None` means unknown — and silent.
fn cast_source(
    code: &[&Token],
    as_idx: usize,
    env: &HashMap<String, Option<IntTy>>,
) -> Option<IntTy> {
    let prev_idx = as_idx.checked_sub(1)?;
    match code[prev_idx].kind {
        TokenKind::Punct(b')') => {
            let open = matching_open_paren(code, prev_idx)?;
            // `recv.len() as …` — a usize out of a length method.
            if open >= 2 && code[open - 1].kind == TokenKind::Ident && code[open - 2].is_punct(b'.')
            {
                if LEN_METHODS.contains(&code[open - 1].text.as_str()) {
                    return Some(IntTy {
                        bits: 64,
                        signed: false,
                    });
                }
                return None; // some other method: result width unknown
            }
            if open >= 1 && code[open - 1].kind == TokenKind::Ident {
                return None; // plain call `f(x) as …`
            }
            group_width(code, open + 1, prev_idx, env)
        }
        TokenKind::Ident => ident_width(code, prev_idx, env),
        _ => None,
    }
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open_paren(code: &[&Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for k in (0..=close).rev() {
        if code[k].is_punct(b')') {
            depth += 1;
        } else if code[k].is_punct(b'(') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The width of a parenthesized operand `( … ) as T`: the nested cast's
/// target if it ends in `as U`, unknown if it is mask-bounded by a
/// top-level `&`, else the widest integer the environment knows inside.
fn group_width(
    code: &[&Token],
    lo: usize,
    hi: usize,
    env: &HashMap<String, Option<IntTy>>,
) -> Option<IntTy> {
    // `(x as u64) as u32` — the group's value *is* the inner cast target.
    if hi >= lo + 2 && code[hi - 2].is_ident("as") {
        if let Some(ty) = int_ty(&code[hi - 1].text) {
            return Some(ty);
        }
    }
    let mut depth = 0i32;
    let mut widest: Option<IntTy> = None;
    let mut k = lo;
    while k < hi {
        let t = code[k];
        match t.kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
            // Mask-bounded: `(x & 0xff) as u8` fits by construction. `&&`
            // never applies to integers, so a single `&` is the bitwise op.
            TokenKind::Punct(b'&') if depth == 0 => {
                let double = (k + 1 < hi && code[k + 1].is_punct(b'&'))
                    || (k > lo && code[k - 1].is_punct(b'&'));
                if !double {
                    return None;
                }
            }
            TokenKind::Ident => {
                let ty = if code.get(k + 1).is_some_and(|n| n.is_punct(b'(')) {
                    // A call name; only length methods have known width.
                    if k > lo
                        && code[k - 1].is_punct(b'.')
                        && LEN_METHODS.contains(&t.text.as_str())
                    {
                        Some(IntTy {
                            bits: 64,
                            signed: false,
                        })
                    } else {
                        None
                    }
                } else {
                    ident_width(code, k, env)
                };
                if let Some(ty) = ty {
                    if widest.is_none_or(|w| ty.bits > w.bits) {
                        widest = Some(ty);
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    widest
}

/// The width of the identifier (or `recv.field`) at `idx`, via the
/// environment.
fn ident_width(code: &[&Token], idx: usize, env: &HashMap<String, Option<IntTy>>) -> Option<IntTy> {
    let name = code[idx].text.as_str();
    if int_ty(name).is_some() || name == "self" {
        return None; // a type name or bare receiver, not a value
    }
    env.get(name).copied().flatten()
}

/// Statement-head keywords that make the whole statement a guard — the
/// bounds-dominated pattern the rule recognizes as a boundary.
const GUARD_HEADS: [&str; 8] = [
    "if",
    "while",
    "for",
    "match",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
];

/// Idents anywhere in the statement that mark it explicitly checked.
fn is_checked_marker(text: &str) -> bool {
    text.starts_with("checked_")
        || text.starts_with("saturating_")
        || text.starts_with("wrapping_")
        || text.starts_with("overflowing_")
        || matches!(text, "min" | "max" | "clamp" | "try_from" | "try_into")
}

fn check_ops(
    rel_path: &str,
    code: &[&Token],
    in_skip: &dyn Fn(usize) -> bool,
    suppressed: &dyn Fn(Rule, u32) -> bool,
    env: &HashMap<String, Option<IntTy>>,
    findings: &mut Vec<Finding>,
) {
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    for i in 0..code.len() {
        if in_skip(i) {
            continue;
        }
        let Some((sym, right)) = binary_op_at(code, i) else {
            continue;
        };
        // Statement window: back to the nearest `;`/`{`/`}`, forward
        // likewise. Coarse, but enough to see the guard head and any
        // checked-arithmetic markers.
        let start = (0..i)
            .rev()
            .find(|&k| matches!(code[k].kind, TokenKind::Punct(b';' | b'{' | b'}')))
            .map(|k| k + 1)
            .unwrap_or(0);
        let end = (i..code.len())
            .find(|&k| matches!(code[k].kind, TokenKind::Punct(b';' | b'{' | b'}')))
            .unwrap_or(code.len());
        if code
            .get(start)
            .is_some_and(|t| GUARD_HEADS.contains(&t.text.as_str()))
        {
            continue;
        }
        if code[start..end]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && is_checked_marker(&t.text))
        {
            continue;
        }
        // Typed evidence: at least one immediate operand must be a known
        // size/index-typed expression. Unknown-width arithmetic is silent.
        let left_ty = operand_width_left(code, i, env);
        let right_ty = operand_width_right(code, right, env);
        if left_ty.is_none() && right_ty.is_none() {
            continue;
        }
        let line = code[i].line;
        if suppressed(Rule::UncheckedArith, line) || !flagged_lines.insert(line) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::UncheckedArith,
            file: rel_path.to_string(),
            line,
            message: format!(
                "unchecked `{sym}` on size/index-typed operands — use a \
                 checked_/saturating_/wrapping_ operation, guard the bounds, \
                 or add a reasoned allow"
            ),
        });
    }
}

/// Whether a binary `+`/`-`/`*`/`<<` starts at `i`; returns the rendered
/// operator and the index of the right operand's first token. Compound
/// assignments (`+=`, `<<=`), arrows, unary minus/deref and generics do
/// not match.
fn binary_op_at(code: &[&Token], i: usize) -> Option<(&'static str, usize)> {
    let prev_is_operand = i > 0
        && (code[i - 1].kind == TokenKind::Literal
            || code[i - 1].is_punct(b')')
            || code[i - 1].is_punct(b']')
            || is_index_base(code[i - 1]));
    if !prev_is_operand {
        return None;
    }
    let t = code[i];
    if t.is_punct(b'<') {
        if !code.get(i + 1).is_some_and(|n| n.is_punct(b'<')) {
            return None; // comparison or generic, not a shift
        }
        if code.get(i + 2).is_some_and(|n| n.is_punct(b'=')) {
            return None; // `<<=`
        }
        if code[i - 1].is_punct(b'<') {
            return None; // the second `<` of a shift already handled
        }
        return Some(("<<", i + 2));
    }
    let sym = match t.kind {
        TokenKind::Punct(b'+') => "+",
        TokenKind::Punct(b'-') => "-",
        TokenKind::Punct(b'*') => "*",
        _ => return None,
    };
    let next = code.get(i + 1)?;
    if next.is_punct(b'=') {
        return None; // compound assignment
    }
    if sym == "-" && next.is_punct(b'>') {
        return None; // `->`
    }
    Some((sym, i + 1))
}

/// Width evidence for the operand ending just before the operator at `op`.
fn operand_width_left(
    code: &[&Token],
    op: usize,
    env: &HashMap<String, Option<IntTy>>,
) -> Option<IntTy> {
    let idx = op.checked_sub(1)?;
    match code[idx].kind {
        TokenKind::Punct(b')') => {
            let open = matching_open_paren(code, idx)?;
            if open >= 2
                && code[open - 2].is_punct(b'.')
                && LEN_METHODS.contains(&code[open - 1].text.as_str())
            {
                return Some(IntTy {
                    bits: 64,
                    signed: false,
                });
            }
            None
        }
        TokenKind::Ident => ident_width(code, idx, env),
        _ => None,
    }
}

/// Width evidence for the operand starting at `idx` (right of the
/// operator): a known ident, or the receiver of a `.len()`-family call.
fn operand_width_right(
    code: &[&Token],
    idx: usize,
    env: &HashMap<String, Option<IntTy>>,
) -> Option<IntTy> {
    let t = code.get(idx)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    if let Some(ty) = ident_width(code, idx, env) {
        return Some(ty);
    }
    // `recv.len() …` / `self.recv.len() …` — walk the field chain.
    let mut k = idx;
    while code.get(k + 1).is_some_and(|n| n.is_punct(b'.'))
        && code.get(k + 2).is_some_and(|n| n.kind == TokenKind::Ident)
    {
        k += 2;
        if LEN_METHODS.contains(&code[k].text.as_str())
            && code.get(k + 1).is_some_and(|n| n.is_punct(b'('))
        {
            return Some(IntTy {
                bits: 64,
                signed: false,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::graph::CallGraph;
    use crate::rules::{check_file, FileContext, Finding, Rule};
    use crate::symbols::collect;

    fn strict(src: &str) -> Vec<Finding> {
        let ctx = FileContext {
            strict_arith: true,
            ..FileContext::default()
        };
        check_file("strict.rs", src, ctx)
    }

    #[test]
    fn len_cast_to_u32_is_flagged() {
        let f = strict("fn f(values: &[u8]) -> u32 { values.len() as u32 }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NarrowingCast);
    }

    #[test]
    fn widening_cast_is_silent() {
        assert!(strict("fn f(x: u32) -> u64 { x as u64 }").is_empty());
    }

    #[test]
    fn known_ident_narrowing_is_flagged() {
        let f = strict("fn f(x: u64) -> u16 { x as u16 }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NarrowingCast);
    }

    #[test]
    fn sign_flip_is_flagged() {
        let f = strict("fn f(d: i32) -> u32 { d as u32 }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("sign"));
    }

    #[test]
    fn mask_bounded_cast_is_silent() {
        assert!(strict("fn f(x: u64) -> u8 { (x & 0xff) as u8 }").is_empty());
    }

    #[test]
    fn unknown_width_cast_is_silent() {
        assert!(strict("fn f() -> u8 { mystery() as u8 }").is_empty());
    }

    #[test]
    fn inner_cast_sets_group_width() {
        let f = strict("fn f(x: u8) -> u16 { ((x as u64) as u16) as u16 }");
        // Both the `(x as u64) as u16` narrowing and the outer re-cast of a
        // u16-valued group to u16 (silent) resolve; exactly one finding.
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn let_tail_inference_feeds_the_env() {
        let f = strict("fn f(buf: &[u8]) -> u16 {\n    let n = buf.len();\n    n as u16\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn narrowing_allow_with_reason_suppresses() {
        let src = "fn f(x: u64) -> u8 { x as u8 } \
                   // lintkit: allow(narrowing-cast) -- x is a masked nibble";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn non_strict_files_skip_arith_rules() {
        let src = "fn f(x: u64, n: usize) -> u8 { let y = x + n as u64; x as u8 }";
        assert!(check_file("free.rs", src, FileContext::default()).is_empty());
    }

    #[test]
    fn unchecked_add_on_sized_operands_is_flagged() {
        let f = strict("fn f(pos: usize, n: usize) -> usize { pos + n }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UncheckedArith);
    }

    #[test]
    fn shift_on_sized_operand_is_flagged() {
        let f = strict("fn f(x: u64, shift: u32) -> u64 { x << shift }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("<<"));
    }

    #[test]
    fn guard_statements_are_boundaries() {
        let src = "fn f(pos: usize, n: usize, cap: usize) -> bool {\n\
                   if pos + n > cap { return true; }\n\
                   false\n}";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn checked_markers_are_boundaries() {
        assert!(
            strict("fn f(pos: usize, n: usize) -> Option<usize> { pos.checked_add(n) }").is_empty()
        );
        assert!(strict("fn f(pos: usize, n: usize) -> usize { pos.saturating_add(n) }").is_empty());
        let src = "fn f(pos: usize, cap: usize) -> usize { let e = pos.min(cap) + 1; e }";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn unknown_operands_are_silent() {
        assert!(strict("fn f() -> u64 { a + b }").is_empty());
    }

    #[test]
    fn compound_assign_and_arrow_do_not_match() {
        assert!(strict("fn f(mut pos: usize, n: usize) -> usize { pos += n; pos }").is_empty());
    }

    #[test]
    fn arith_allow_with_reason_suppresses() {
        let src = "fn f(pos: usize, n: usize) -> usize { pos + n } \
                   // lintkit: allow(unchecked-arith) -- caller bounds n";
        assert!(strict(src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt_from_arith_rules() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: u64) -> u8 { x as u8 }\n}";
        assert!(strict(src).is_empty());
    }

    // -- alloc-in-hot-path ---------------------------------------------------

    fn run_alloc(files: &[(&str, &str, &str, &str)], hot: &[&str], warm: &[&str]) -> Vec<Finding> {
        let graph = CallGraph::build(
            files
                .iter()
                .map(|(krate, module, path, src)| collect(krate, module, path, src))
                .collect(),
        );
        let mut findings = Vec::new();
        super::alloc_in_hot_path(
            &graph,
            &hot.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &warm.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &mut findings,
        );
        findings
    }

    #[test]
    fn alloc_behind_indirection_is_reached() {
        let f = run_alloc(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn hot() { helper(); }\n\
                 fn helper() { let v = vec![1u8]; }",
            )],
            &["alpha::lib::hot"],
            &[],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AllocInHotPath);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("hot → helper"));
    }

    #[test]
    fn warm_boundary_prunes_traversal() {
        let f = run_alloc(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn hot() { setup(); }\n\
                 fn setup() { let v = Vec::new(); }",
            )],
            &["alpha::lib::hot"],
            &["alpha::lib::setup"],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unreached_alloc_is_silent() {
        let f = run_alloc(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn hot() {}\n\
                 fn cold() { let s = String::new(); }",
            )],
            &["alpha::lib::hot"],
            &[],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unmatched_hot_and_warm_patterns_are_config_findings() {
        let f = run_alloc(
            &[("alpha", "lib", "crates/alpha/src/lib.rs", "pub fn hot() {}")],
            &["alpha::lib::renamed"],
            &["alpha::lib::gone"],
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.file == "lintkit.config"));
        assert!(f.iter().any(|f| f.message.contains("hot path")));
        assert!(f.iter().any(|f| f.message.contains("warm path")));
    }

    #[test]
    fn alloc_allow_with_reason_suppresses_the_site() {
        let f = run_alloc(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn hot() {\n\
                 // lintkit: allow(alloc-in-hot-path) -- one-time warmup fill\n\
                 let v = vec![1u8];\n\
                 }",
            )],
            &["alpha::lib::hot"],
            &[],
        );
        assert!(f.is_empty());
    }
}
