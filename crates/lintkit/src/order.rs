//! The `map-iter-order` dataflow: unordered iteration must not reach a
//! function's output.
//!
//! `std::collections::HashMap`/`HashSet` iterate in a per-instance random
//! order (SipHash keys are seeded per map), so any artifact byte that
//! depends on that order breaks the repo's headline guarantee — serial ≡
//! engine(workers=N), byte for byte, run after run. The rule is a
//! *dataflow-lite* taint analysis over the statement IR that
//! [`crate::symbols`] retains per function ([`OrderStmt`]):
//!
//! * **Sources** — iterating a place typed `HashMap`/`HashSet` (a local
//!   bound from `HashMap::new()`/a `collect` into a hash container, a
//!   parameter, a `self.<field>` declared in the same file, or a callee
//!   returning one), via `for … in m`, `.iter()`, `.iter_mut()`,
//!   `.into_iter()`, `.keys()`, `.values()`, `.values_mut()`,
//!   `.into_keys()`, `.into_values()` or `.drain()`; plus calls to any
//!   function whose own analysis says it returns unordered iteration
//!   results (the interprocedural half).
//! * **Boundaries** — collecting into a `BTreeMap`/`BTreeSet` (sorted by
//!   key) or back into a `HashMap`/`HashSet` (the new container absorbs
//!   the order and becomes a source itself), `.sort*()` on a collected
//!   `Vec`, commutative reductions (`count`, `sum`, `product`, `min`,
//!   `max`, `min_by*`, `max_by*`, `any`, `all`, `contains*`), and
//!   compound assignments (`+=` accumulation). Caveats are documented in
//!   DESIGN.md §12: float `sum` and `min_by_key` ties are treated as
//!   order-free, which is only true up to rounding/tie-breaks.
//! * **Escapes** — a tainted value reaching `return`, the tail
//!   expression, a write through a `&mut` parameter, or a `self.<field>`
//!   assignment/push. An escaping function is marked *returns-unordered*
//!   and taints every caller that lets the result reach its own output,
//!   to a fixpoint over the call graph.
//!
//! Findings anchor at the **seed** (the iteration or the tainted call),
//! the line a fix or a reasoned `// lintkit: allow(map-iter-order)`
//! belongs on. Like determinism-taint, ⊥ (dynamic dispatch) does not
//! propagate order-taint: the rule checks known sources.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{CallGraph, Callee};
use crate::rules::{Finding, Rule};
use crate::symbols::{FuncDef, Site};

/// Iterator-producing methods on hash containers.
const ITER_OPS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Order-free reductions: the result does not depend on visit order.
const COMMUTATIVE_OPS: [&str; 12] = [
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "any",
    "all",
    "contains",
];

/// Methods that append into their receiver, preserving argument order.
const PUSH_OPS: [&str; 6] = [
    "push",
    "push_back",
    "push_front",
    "extend",
    "append",
    "insert",
];

/// What one intra-function analysis pass concluded.
#[derive(Debug, Default)]
struct FnOrder {
    /// The function's return value carries unordered iteration order.
    ret_tainted: bool,
    /// Escape witnesses: the seed site plus the escaping line.
    escapes: Vec<(Site, u32)>,
}

/// Runs the rule over the linked graph: intra-function passes iterated to
/// an interprocedural fixpoint on the returns-unordered summary bit.
pub fn map_iter_order(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let n = graph.funcs.len();
    let mut ret_tainted = vec![false; n];
    loop {
        let mut changed = false;
        for i in 0..n {
            if ret_tainted[i] {
                continue;
            }
            if analyze(graph, i, &ret_tainted).ret_tainted {
                ret_tainted[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for i in 0..n {
        let f = &graph.funcs[i];
        for (seed, escape_line) in analyze(graph, i, &ret_tainted).escapes {
            if seen.insert((f.file.clone(), seed.line)) {
                findings.push(Finding {
                    rule: Rule::MapIterOrder,
                    file: f.file.clone(),
                    line: seed.line,
                    message: format!(
                        "{} escapes `{}` at line {} without a sorting boundary — \
                         collect into a BTree container or sort before emitting",
                        seed.what,
                        f.path(),
                        escape_line,
                    ),
                });
            }
        }
    }
}

/// Replays the statement IR of `graph.funcs[i]` under the current callee
/// summaries.
fn analyze(graph: &CallGraph, i: usize, ret_tainted: &[bool]) -> FnOrder {
    let f = &graph.funcs[i];
    let mut out = FnOrder::default();
    // Places currently typed as unordered hash containers.
    let mut containers: BTreeSet<String> = f.unordered_params.iter().cloned().collect();
    for field in &f.map_fields {
        containers.insert(format!("self.{field}"));
    }
    // Tainted places, with the seed that tainted them.
    let mut tainted: BTreeMap<String, Site> = BTreeMap::new();
    for stmt in &f.order_stmts {
        if stmt.compound_assign {
            // `acc += …` — commutative accumulation is a boundary.
            continue;
        }
        let allowed = |line: u32| f.order_allows.contains(&line);
        // Callee summaries for this statement's resolved calls.
        let mut call_container = false;
        let mut call_taint: Option<Site> = None;
        for (name, line) in &stmt.calls {
            for e in &graph.edges[i] {
                if e.line != *line || &e.name != name {
                    continue;
                }
                if let Callee::Func(j) = e.callee {
                    if graph.funcs[j].ret_unordered_container {
                        call_container = true;
                    }
                    if ret_tainted[j] && !allowed(*line) && call_taint.is_none() {
                        call_taint = Some(Site {
                            line: *line,
                            what: format!(
                                "unordered iteration order returned by `{}`",
                                graph.funcs[j].path()
                            ),
                        });
                    }
                }
            }
        }
        let mut stmt_taint: Option<Site> = call_taint;
        // Tainted reads propagate into the statement's value.
        for r in &stmt.reads {
            if let Some(site) = tainted.get(r) {
                stmt_taint.get_or_insert_with(|| site.clone());
            }
        }
        // A `for` header *iterates* what it reads.
        if !stmt.for_vars.is_empty() && !allowed(stmt.line) {
            for r in &stmt.reads {
                if containers.contains(r) {
                    stmt_taint.get_or_insert_with(|| Site {
                        line: stmt.line,
                        what: format!("iteration over unordered `{r}`"),
                    });
                }
            }
        }
        // Walk the method chains.
        let mut chain_taint: Option<Site> = None;
        let mut chain_container = false;
        let mut chain_active = false;
        let mut collect_unordered = false;
        let mut push_targets: Vec<(String, u32)> = Vec::new();
        for m in &stmt.methods {
            if let Some(recv) = &m.recv {
                // A named root starts a fresh chain; a previous chain that
                // ended tainted taints the whole statement.
                if let Some(site) = chain_taint.take() {
                    stmt_taint.get_or_insert(site);
                }
                chain_container = containers.contains(recv);
                chain_taint = tainted.get(recv).cloned();
                chain_active = true;
            } else if !chain_active {
                // Chain from a call/index result.
                chain_container = call_container;
                chain_taint = None;
                chain_active = true;
            }
            let name = m.name.as_str();
            if ITER_OPS.contains(&name) {
                if chain_container && chain_taint.is_none() && !allowed(m.line) {
                    let over = m.recv.as_deref().unwrap_or("hash container");
                    chain_taint = Some(Site {
                        line: m.line,
                        what: format!("iteration over unordered `{over}`"),
                    });
                }
                chain_container = false;
            } else if name.starts_with("sort") {
                chain_taint = None;
                if let Some(recv) = &m.recv {
                    tainted.remove(recv);
                }
            } else if COMMUTATIVE_OPS.contains(&name) || name == "contains_key" || name == "len" {
                chain_taint = None;
                chain_container = false;
            } else if name == "collect" {
                let ordered = m
                    .turbofish
                    .iter()
                    .any(|t| t == "BTreeMap" || t == "BTreeSet");
                let unordered = m.turbofish.iter().any(|t| t == "HashMap" || t == "HashSet");
                if ordered || unordered {
                    chain_taint = None;
                }
                if unordered {
                    chain_container = true;
                    collect_unordered = true;
                }
            } else if PUSH_OPS.contains(&name) {
                if let Some(recv) = &m.recv {
                    push_targets.push((recv.clone(), m.line));
                }
                chain_taint = None;
            } else if matches!(name, "clone" | "to_owned" | "cloned" | "copied") {
                // Type-preserving: keep both container and taint state.
            } else {
                // A workspace callee's summary can re-seed the chain.
                let mut callee_container = false;
                for e in &graph.edges[i] {
                    if e.line != m.line || e.name != m.name {
                        continue;
                    }
                    if let Callee::Func(j) = e.callee {
                        if graph.funcs[j].ret_unordered_container {
                            callee_container = true;
                        }
                        if ret_tainted[j] && chain_taint.is_none() && !allowed(m.line) {
                            chain_taint = Some(Site {
                                line: m.line,
                                what: format!(
                                    "unordered iteration order returned by `{}`",
                                    graph.funcs[j].path()
                                ),
                            });
                        }
                    }
                }
                chain_container = callee_container;
            }
        }
        if let Some(site) = chain_taint {
            stmt_taint.get_or_insert(site);
        }
        // Pure alias/move (`let n = m;`) keeps the container typing.
        let alias_container = stmt.methods.is_empty()
            && stmt.calls.is_empty()
            && stmt.reads.iter().any(|r| containers.contains(r));
        // Apply pushes: appending tainted data into an output place escapes;
        // into a local makes the local tainted; into a hash container the
        // order is absorbed.
        for (target, line) in push_targets {
            if containers.contains(&target) {
                continue;
            }
            let Some(site) = stmt_taint.clone() else {
                continue;
            };
            if allowed(line) {
                continue;
            }
            if is_output_place(f, &target) {
                out.escapes.push((site, line));
            } else {
                let root = target.split('.').next().unwrap_or(&target).to_string();
                tainted.entry(root).or_insert(site);
            }
        }
        // Returns and the tail expression.
        if (stmt.is_return || stmt.is_tail) && !allowed(stmt.line) {
            if let Some(site) = &stmt_taint {
                out.escapes.push((site.clone(), stmt.line));
                out.ret_tainted = true;
            }
        }
        // Loop variables inherit the header's taint.
        for v in &stmt.for_vars {
            if let Some(site) = &stmt_taint {
                tainted.insert(v.clone(), site.clone());
            } else {
                tainted.remove(v);
            }
        }
        // Assignment destinations.
        let dest_unordered = collect_unordered
            || call_container
            || alias_container
            || chain_container
            || stmt
                .dest_type
                .iter()
                .chain(stmt.quals.iter())
                .any(|t| t == "HashMap" || t == "HashSet");
        let dest_ordered = stmt
            .dest_type
            .iter()
            .chain(stmt.quals.iter())
            .any(|t| t == "BTreeMap" || t == "BTreeSet");
        for d in &stmt.dests {
            if d.contains('.') || is_output_place(f, d) {
                // Write into a field or through a `&mut` parameter.
                if dest_unordered || dest_ordered {
                    continue;
                }
                if let Some(site) = stmt_taint.clone() {
                    if is_output_place(f, d) && !allowed(stmt.line) {
                        out.escapes.push((site, stmt.line));
                    } else {
                        let root = d.split('.').next().unwrap_or(d).to_string();
                        tainted.entry(root).or_insert(site);
                    }
                }
                continue;
            }
            if dest_unordered {
                containers.insert(d.clone());
                tainted.remove(d);
            } else if dest_ordered {
                tainted.remove(d);
                containers.remove(d);
            } else if let Some(site) = stmt_taint.clone() {
                tainted.insert(d.clone(), site);
                containers.remove(d);
            } else if stmt.is_let {
                tainted.remove(d);
                containers.remove(d);
            }
        }
    }
    out
}

/// Whether writing into `place` escapes the function: `self` fields and
/// `&mut` parameters belong to the caller.
fn is_output_place(f: &FuncDef, place: &str) -> bool {
    if place.starts_with("self.") {
        return true;
    }
    let root = place.split('.').next().unwrap_or(place);
    f.ref_mut_params.iter().any(|p| p == root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::collect;

    fn run(src: &str) -> Vec<Finding> {
        let graph = CallGraph::build(vec![collect(
            "alpha",
            "lib",
            "crates/alpha/src/lib.rs",
            src,
        )]);
        let mut findings = Vec::new();
        map_iter_order(&graph, &mut findings);
        findings
    }

    #[test]
    fn direct_keys_escape_is_flagged() {
        let f = run("use std::collections::HashMap;\n\
             pub fn names(m: &HashMap<u32, String>) -> Vec<u32> {\n\
             m.keys().copied().collect::<Vec<u32>>()\n\
             }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::MapIterOrder);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("iteration over unordered `m`"));
    }

    #[test]
    fn sorted_collection_is_clean() {
        let f = run("pub fn names(m: &HashMap<u32, String>) -> Vec<u32> {\n\
             let mut v: Vec<u32> = m.keys().copied().collect();\n\
             v.sort_unstable();\n\
             v\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn btree_collect_is_a_boundary() {
        let f = run("pub fn names(m: &HashMap<u32, String>) -> Vec<u32> {\n\
             m.keys().copied().collect::<BTreeSet<u32>>().into_iter().collect::<Vec<u32>>()\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn for_loop_push_escape_is_flagged() {
        let f = run("pub fn pairs(m: &HashMap<u32, u32>) -> Vec<(u32, u32)> {\n\
             let mut out = Vec::new();\n\
             for (k, v) in m {\n\
             out.push((k, v));\n\
             }\n\
             out\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn for_loop_then_sort_is_clean() {
        let f = run("pub fn pairs(m: &HashMap<u32, u32>) -> Vec<(u32, u32)> {\n\
             let mut out = Vec::new();\n\
             for (k, v) in m {\n\
             out.push((k, v));\n\
             }\n\
             out.sort_unstable();\n\
             out\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn commutative_reduction_is_clean() {
        let f = run("pub fn total(m: &HashMap<u32, u64>) -> u64 {\n\
             m.values().copied().sum::<u64>()\n\
             }\n\
             pub fn biggest(m: &HashMap<u32, u64>) -> Option<u64> {\n\
             m.values().copied().max()\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn taint_propagates_through_callee() {
        let f = run("fn inner(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             m.keys().copied().collect::<Vec<u32>>()\n\
             }\n\
             pub fn outer(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             inner(m)\n\
             }");
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 5);
        assert!(f[1].message.contains("alpha::lib::inner"));
    }

    #[test]
    fn caller_sorting_callee_result_is_clean() {
        let f = run("fn inner(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             m.keys().copied().collect::<Vec<u32>>() // lintkit: allow(map-iter-order) -- fixture\n\
             }\n\
             pub fn outer(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             let mut v = inner(m);\n\
             v.sort_unstable();\n\
             v\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_with_reason_suppresses_seed() {
        let f = run("pub fn names(m: &HashMap<u32, String>) -> Vec<u32> {\n\
             // lintkit: allow(map-iter-order) -- consumer sorts downstream\n\
             m.keys().copied().collect::<Vec<u32>>()\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn locally_built_map_is_tracked() {
        let f = run("pub fn build() -> Vec<u32> {\n\
             let mut m = HashMap::new();\n\
             m.insert(1u32, 2u32);\n\
             m.keys().copied().collect::<Vec<u32>>()\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn map_returned_by_callee_is_tracked() {
        let f = run("fn make() -> HashMap<u32, u32> { HashMap::new() }\n\
             pub fn use_it() -> Vec<u32> {\n\
             let m = make();\n\
             m.keys().copied().collect::<Vec<u32>>()\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn self_field_iteration_is_tracked() {
        let f = run("struct S { table: HashMap<u32, u32> }\n\
             impl S {\n\
             pub fn dump(&self) -> Vec<u32> {\n\
             self.table.keys().copied().collect::<Vec<u32>>()\n\
             }\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn write_through_mut_param_escapes() {
        let f = run("pub fn emit(m: &HashMap<u32, u32>, out: &mut Vec<u32>) {\n\
             for k in m.keys() {\n\
             out.push(*k);\n\
             }\n\
             }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn rekeying_into_hash_container_absorbs_order() {
        let f = run(
            "pub fn invert(m: &HashMap<u32, u32>) -> HashMap<u32, u32> {\n\
             m.iter().map(|(k, v)| (*v, *k)).collect::<HashMap<u32, u32>>()\n\
             }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn counting_loop_is_clean() {
        let f = run("pub fn total(m: &HashMap<u32, u64>) -> u64 {\n\
             let mut acc = 0u64;\n\
             for v in m.values() {\n\
             acc += v;\n\
             }\n\
             acc\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }
}
