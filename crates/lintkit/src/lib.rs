//! `lintkit` — the workspace's self-contained static-analysis pass.
//!
//! The reproduction's pipelines parse hostile or malformed external inputs
//! (DNS wire replies, the published egress CSV, Atlas measurement dumps).
//! One stray `unwrap` turns a bad record into an aborted multi-hour scan,
//! which the ROADMAP's production-scale goal cannot afford. This crate
//! enforces the project's robustness invariants *statically* so they cannot
//! regress:
//!
//! * **no-panic** — no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` in library (non-test) code,
//! * **no-index** — no `expr[i]` indexing on designated hostile-input parse
//!   paths (use `.get`),
//! * **no-print** — no `println!`-family output in library code,
//! * **forbid-unsafe** — every crate root carries `#![forbid(unsafe_code)]`,
//! * **vendor-manifest** — the vendored dependency shims match the
//!   checked-in public-API manifest (`vendor/API_MANIFEST.txt`),
//! * **allow-needs-reason** — suppressions must carry a justification.
//!
//! Any finding can be suppressed with
//! `// lintkit: allow(<rule>) -- <reason>`; the reason is mandatory.
//!
//! Built without external dependencies (no crates.io access in the build
//! environment, so no `syn`): the lexer in [`lexer`] provides just enough
//! structure. Run via `cargo run -p xtask -- lint`; the same pass also runs
//! as a tier-1 test (`tests/workspace_gate.rs`) and in CI.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod lexer;
pub mod manifest;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{check_file, FileContext, Finding, Rule};

/// What to lint and how strictly.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Workspace-relative paths of files where the `no-index` rule applies —
    /// the parse paths that face hostile input.
    pub strict_index: Vec<String>,
    /// Crate directory names under `crates/` to skip entirely (dev tools
    /// such as the lint driver binary itself).
    pub skip_crates: Vec<String>,
}

impl Config {
    /// The project policy: every library crate, strict indexing on the
    /// hostile-input decoders, and the `xtask` driver exempt (it is a
    /// pure binary dev-tool, not library code).
    pub fn for_workspace(root: &Path) -> Config {
        Config {
            root: root.to_path_buf(),
            strict_index: vec![
                "crates/dns/src/wire.rs".to_string(),
                "crates/geo/src/csv.rs".to_string(),
            ],
            skip_crates: vec!["xtask".to_string()],
        }
    }
}

/// Lints the whole workspace: every crate under `crates/*/src`, the root
/// package's `src/`, and the vendored-shim manifest. Findings come back
/// sorted by file and line.
pub fn lint_workspace(config: &Config) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = config.root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if config.skip_crates.contains(&name) {
            continue;
        }
        lint_src_dir(config, &dir.join("src"), &mut findings)?;
    }
    // The root `tectonic` package.
    lint_src_dir(config, &config.root.join("src"), &mut findings)?;
    // Vendored-shim API drift.
    findings.extend(manifest::check(&config.root.join("vendor"))?);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Lints every `.rs` file under one `src/` directory.
fn lint_src_dir(config: &Config, src_dir: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    manifest::collect_rs_files(src_dir, &mut files)?;
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(&config.root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileContext {
            is_crate_root: file.parent() == Some(src_dir)
                && file.file_name().is_some_and(|n| n == "lib.rs"),
            strict_index: config.strict_index.contains(&rel),
            // Binary targets own their stdout; libraries do not.
            allow_print: rel.contains("/bin/") || rel.ends_with("src/main.rs"),
        };
        let text = fs::read_to_string(&file)?;
        findings.extend(check_file(&rel, &text, ctx));
    }
    Ok(())
}
