//! `lintkit` — the workspace's self-contained static-analysis pass.
//!
//! The reproduction's pipelines parse hostile or malformed external inputs
//! (DNS wire replies, the published egress CSV, Atlas measurement dumps).
//! One stray `unwrap` turns a bad record into an aborted multi-hour scan,
//! which the ROADMAP's production-scale goal cannot afford. This crate
//! enforces the project's robustness invariants *statically* so they cannot
//! regress:
//!
//! * **no-panic** — no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` in library (non-test) code,
//! * **no-index** — no `expr[i]` indexing on designated hostile-input parse
//!   paths (use `.get`),
//! * **no-print** — no `println!`-family output in library code,
//! * **forbid-unsafe** — every crate root carries `#![forbid(unsafe_code)]`,
//! * **vendor-manifest** — the vendored dependency shims match the
//!   checked-in public-API manifest (`vendor/API_MANIFEST.txt`),
//! * **allow-needs-reason** — suppressions must carry a justification,
//! * **narrowing-cast** — no lossy `as` cast in the strict-arithmetic files
//!   ([`resource`]); widening casts stay silent,
//! * **unchecked-arith** — no unguarded `+`/`-`/`*`/`<<` on size/index-typed
//!   operands in the same files; `checked_*`/`saturating_*`/`wrapping_*` and
//!   bounds-dominated patterns are recognized boundaries.
//!
//! Any finding can be suppressed with
//! `// lintkit: allow(<rule>) -- <reason>`; the reason is mandatory.
//!
//! On top of the per-file rules, the pass builds a workspace-wide symbol
//! table ([`symbols`]) and conservative call graph ([`graph`]) and runs
//! seven interprocedural rules ([`reach`], [`order`], [`resource`]):
//!
//! * **panic-reachability** — no panic site may be transitively reachable
//!   from a declared hostile-input entry point (unresolvable dynamic
//!   dispatch is a ⊥ node that conservatively "may panic"),
//! * **lock-order** — the derived `Mutex`/`RwLock` acquisition-order graph
//!   must be acyclic,
//! * **determinism-taint** — `SystemTime::now`/`Instant::now`/`thread_rng`
//!   sources must be unreachable from `SimClock`/`SimRng`-driven code,
//! * **map-iter-order** — `HashMap`/`HashSet` iteration order must not
//!   reach a function's output without a sorting boundary; functions that
//!   leak it taint their callers to a fixpoint ([`order`]),
//! * **rng-fork-order** — code reachable from the sharded engine must use
//!   `SimRng::fork_indexed`, never the sibling-order-dependent `fork`,
//! * **shard-state-escape** — `ShardModel` impls must not touch shared
//!   mutable aliases (`Mutex`, `OnceLock`, atomics, `static mut`);
//!   cross-shard effects go through `ShardCtx` sends only,
//! * **alloc-in-hot-path** — no heap allocation may be reachable from a
//!   declared steady-state hot entry point, with construction/setup
//!   boundaries carved out via [`Config::warm_paths`] ([`resource`]).
//!
//! The per-file pass is parallel (`std::thread::scope` over disjoint output
//! slots, merged in deterministic order) and incremental: an on-disk cache
//! ([`cache`], `target/lintkit-cache.json`) keyed by file content hash and a
//! rule-set/config fingerprint lets warm runs skip re-analyzing unchanged
//! files while provably emitting byte-identical findings. Symbol collection
//! still runs on every file so the interprocedural pass never sees stale
//! graphs.
//!
//! Accepted findings live in the `lint-baseline.json` ratchet ([`baseline`]):
//! new findings fail, and so do stale baseline entries, so the debt only
//! burns down. `--json` and `--sarif` ([`sarif`]) export the findings for
//! CI artifacts and code-hosting annotation UIs.
//!
//! Built without external dependencies (no crates.io access in the build
//! environment, so no `syn`): the lexer in [`lexer`] provides just enough
//! structure. Run via `cargo run -p xtask -- lint`; the same pass also runs
//! as a tier-1 test (`tests/workspace_gate.rs`) and in CI.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod baseline;
pub mod cache;
pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod order;
pub mod reach;
pub mod resource;
pub mod rules;
pub mod sarif;
pub mod symbols;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use rules::{check_file, FileContext, Finding, Rule};

/// What to lint and how strictly.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Workspace-relative paths of files where the `no-index` rule applies —
    /// the parse paths that face hostile input.
    pub strict_index: Vec<String>,
    /// Workspace-relative paths of files where the `narrowing-cast` and
    /// `unchecked-arith` rules apply — the arithmetic-dense kernels where a
    /// silent truncation or overflow corrupts results instead of crashing.
    pub strict_arith: Vec<String>,
    /// Crate directory names under `crates/` to skip entirely (dev tools
    /// such as the lint driver binary itself).
    pub skip_crates: Vec<String>,
    /// Entry points for the panic-reachability rule, as
    /// `crate::module::name` patterns (`name` may be `*` for every
    /// function in the module). A pattern that matches nothing is itself a
    /// finding, so renames cannot silently disable the analysis.
    pub entry_points: Vec<String>,
    /// Steady-state entry points for the `alloc-in-hot-path` rule — the
    /// per-reply / per-packet kernels that must run allocation-free. Same
    /// pattern syntax and liveness check as `entry_points`.
    pub hot_paths: Vec<String>,
    /// Construction/setup boundaries for `alloc-in-hot-path`: reachability
    /// is pruned at these functions, so allocation behind them (building
    /// tables, growing buffers once) is exempt. A warm pattern matching
    /// nothing is a finding, so a rename cannot silently widen the rule.
    pub warm_paths: Vec<String>,
    /// Crates linted per-file but excluded from the call graph. Build-time
    /// tools (lintkit itself) are never callees of product code, and their
    /// generic function names (`parse`, `resolve`, `collect`) would only
    /// add false edges. Binary targets are excluded for the same reason —
    /// a `[[bin]]` cannot be linked into a library call path.
    pub graph_skip_crates: Vec<String>,
    /// Where the incremental per-file cache lives; `None` disables caching
    /// (fixture workspaces, hermetic tests).
    pub cache: Option<PathBuf>,
}

impl Config {
    /// The project policy: every library crate, strict indexing on the
    /// hostile-input decoders, the `xtask` driver exempt (it is a pure
    /// binary dev-tool, not library code), and reachability entry points on
    /// every surface that parses hostile bytes or serves the request path.
    pub fn for_workspace(root: &Path) -> Config {
        Config {
            root: root.to_path_buf(),
            strict_index: vec![
                "crates/dns/src/wire.rs".to_string(),
                // The discrete-event scheduler: event order is the whole
                // determinism contract, so no slice indexing anywhere.
                "crates/engine/src/sched.rs".to_string(),
                "crates/geo/src/csv.rs".to_string(),
                "crates/net/src/lpm.rs".to_string(),
                // The churn overlay shares the frozen table's arena-index
                // discipline: every probe goes through checked access.
                "crates/net/src/overlay.rs".to_string(),
                "crates/quic/src/packet.rs".to_string(),
                "crates/quic/src/varint.rs".to_string(),
                // Capsule/HTTP-Datagram codecs: decoding hostile tunnel
                // bytes must be total.
                "crates/quic/src/capsule.rs".to_string(),
                // Sealed-payload and datagram framing on the session path:
                // the egress opens bytes a faulted channel may have
                // mangled.
                "crates/relay/src/session.rs".to_string(),
                "crates/simnet/src/channel.rs".to_string(),
            ],
            strict_arith: vec![
                // Wire offsets and RDLENGTH arithmetic: a silent u16 wrap
                // emits a malformed packet instead of an error.
                "crates/dns/src/wire.rs".to_string(),
                // Virtual-time and shard-index arithmetic.
                "crates/engine/src/sched.rs".to_string(),
                // Arena indices are u32 by design; every narrowing from
                // usize must be provably in range.
                "crates/net/src/lpm.rs".to_string(),
                // Patch offsets and chunk arithmetic in the churn overlay.
                "crates/net/src/overlay.rs".to_string(),
                // RFC 9000 varints: 62-bit values through shifts and masks.
                "crates/quic/src/varint.rs".to_string(),
                // Capsule header offsets and declared-length arithmetic: a
                // silent wrap turns a truncation error into a mis-framed
                // read.
                "crates/quic/src/capsule.rs".to_string(),
            ],
            skip_crates: vec!["xtask".to_string()],
            entry_points: vec![
                // The multi-hour ECS scan drive loop.
                "core::ecs_scan::scan_subnets".to_string(),
                // Batched longest-prefix matching under the scan's
                // per-reply attribution.
                "net::lpm::lookup_batch".to_string(),
                // Overlay-combined lookups: the steady-state read path under
                // BGP churn routes every query through these.
                "net::overlay::longest_match".to_string(),
                "net::overlay::longest_match_net".to_string(),
                "net::overlay::exact".to_string(),
                "net::overlay::lookup_batch_in".to_string(),
                // DNS wire decoding of hostile reply bytes.
                "dns::wire::decode_message".to_string(),
                // The published egress CSV (lossy parse path).
                "geo::csv::parse_csv_lossy".to_string(),
                // QUIC Version Negotiation probing (paper §6).
                "quic::probe::*".to_string(),
                // The relay client request path.
                "relay::client::request".to_string(),
                "relay::client::request_pair".to_string(),
                "relay::client::odoh_resolve".to_string(),
                // The fault-injection delivery hot path (chaos harness).
                "simnet::channel::deliver".to_string(),
                // CONNECT-UDP codecs fed hostile tunnel bytes.
                "quic::capsule::decode_capsule".to_string(),
                "quic::capsule::decode_datagram".to_string(),
                // The session layer's receive path: unframing and opening
                // datagrams a faulted channel may have truncated or
                // corrupted.
                "relay::session::unframe_datagram".to_string(),
                "relay::session::open_payload".to_string(),
                // The sharded discrete-event engine: scheduler loop and
                // every shard-facing surface must be panic-free — a panic
                // in one worker poisons the whole scan.
                "engine::sched::*".to_string(),
            ],
            hot_paths: vec![
                // Query encoding runs once per probe across the whole scan.
                "dns::wire::encode_message_into".to_string(),
                // Per-reply attribution: one lookup per decoded answer.
                "net::lpm::longest_match_net".to_string(),
                "net::lpm::lookup_batch".to_string(),
                // Overlay-combined steady-state lookups must stay
                // allocation-free: churn is absorbed by patches, not by
                // per-query buffers.
                "net::overlay::longest_match".to_string(),
                "net::overlay::lookup_batch_in".to_string(),
                // The scheduler's window drain — the inner loop of every
                // simulated scan.
                "engine::sched::run_window".to_string(),
                // The ECS reply loop (decode → classify → record).
                "core::ecs_scan::attempt_query".to_string(),
            ],
            warm_paths: vec![
                // Reply decoding materializes owned names/records by
                // design; the hot loop hands bytes over and gets a parsed
                // message back. Allocation inside the decoder is the
                // decoder's contract, not a steady-state leak.
                "dns::wire::decode_message".to_string(),
                // The ShardModel event handlers are simulation payload —
                // the code playing remote resolvers, relays, and probe
                // campaigns. The scheduler's window drain is the hot
                // kernel; what the simulated world does per event is model
                // behavior, and the scan kernels inside it are designated
                // hot roots of their own (`attempt_query`, the lpm
                // lookups, the wire encoder).
                "core::atlas_campaign::handle".to_string(),
                "core::ecs_scan::handle".to_string(),
                "core::relay_scan::handle".to_string(),
                "core::masque_load::handle".to_string(),
                // Same boundary one layer down: the simulated *server* side
                // of an exchange (zone lookup, reply synthesis) allocates
                // by design — it plays the remote resolver. The scanner's
                // reply loop proper (decode → classify → record) stays
                // hot.
                "dns::server::handle_query_into".to_string(),
                "simnet::channel::handle_query_into".to_string(),
                // Query construction: one message built per probe, before
                // the encode/send/decode cycle the hot rule watches.
                "dns::message::query".to_string(),
            ],
            graph_skip_crates: vec!["lintkit".to_string()],
            cache: Some(root.join("target").join("lintkit-cache.json")),
        }
    }
}

/// Wall-time and cache-effectiveness counters for one workspace pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassStats {
    /// Files visited by the per-file pass.
    pub files: usize,
    /// Files whose findings were served from the incremental cache.
    pub cache_hits: usize,
    /// Files that ran the full per-file rule set.
    pub cache_misses: usize,
    /// Wall time of the parallel per-file pass (lex + rules + symbols).
    pub file_pass_ns: u128,
    /// Wall time of the interprocedural graph pass.
    pub graph_ns: u128,
    /// End-to-end wall time of `analyze_workspace`.
    pub total_ns: u128,
}

/// The full result of one workspace pass: the findings plus the call graph
/// they were computed on (for `--graph` dumps and diagnostics).
pub struct Analysis {
    /// All findings, sorted by file and line.
    pub findings: Vec<Finding>,
    /// The linked workspace call graph.
    pub graph: graph::CallGraph,
    /// Resolved entry-point function indices into `graph.funcs`.
    pub entries: Vec<usize>,
    /// Timing and cache counters for this pass.
    pub stats: PassStats,
}

/// One file the per-file pass must visit, in deterministic walk order.
struct FileTask {
    crate_name: String,
    module: String,
    rel: String,
    path: PathBuf,
    ctx: FileContext,
    /// Whether the file participates in the call graph.
    graph: bool,
}

/// What one worker produced for one file.
struct FileOutcome {
    findings: Vec<Finding>,
    symbols: Option<symbols::FileSymbols>,
    hash: u64,
    cache_hit: bool,
}

/// Lints the whole workspace: every crate under `crates/*/src`, the root
/// package's `src/`, the vendored-shim manifest, and the interprocedural
/// graph rules. Findings come back sorted by file and line.
pub fn lint_workspace(config: &Config) -> io::Result<Vec<Finding>> {
    Ok(analyze_workspace(config)?.findings)
}

/// [`lint_workspace`], but also returning the call graph and pass stats.
// Wall-clock is the measurement here, as in the criterion shim: the pass
// stats time the analyzer itself, which runs outside any simulation.
#[allow(clippy::disallowed_methods)]
pub fn analyze_workspace(config: &Config) -> io::Result<Analysis> {
    let t_start = Instant::now();
    let tasks = collect_tasks(config)?;

    // Only the facets `check_file` consults go into the fingerprint: a
    // changed entry-point list affects graph findings, which are recomputed
    // every run anyway, so it must not cold-start the per-file cache.
    let fingerprint = cache::fingerprint(&[&config.strict_index, &config.strict_arith]);
    let prior = match &config.cache {
        Some(path) => {
            let loaded = cache::load(path);
            if loaded.fingerprint == fingerprint {
                loaded
            } else {
                cache::CacheFile::default()
            }
        }
        None => cache::CacheFile::default(),
    };

    let t_files = Instant::now();
    let outcomes = run_file_pass(&tasks, &prior);
    let file_pass_ns = t_files.elapsed().as_nanos();

    let mut findings = Vec::new();
    let mut file_symbols = Vec::new();
    let mut next = cache::CacheFile {
        fingerprint,
        files: std::collections::BTreeMap::new(),
    };
    let mut stats = PassStats {
        files: tasks.len(),
        file_pass_ns,
        ..PassStats::default()
    };
    for (task, outcome) in tasks.iter().zip(outcomes) {
        let outcome = outcome?;
        if outcome.cache_hit {
            stats.cache_hits += 1;
        } else {
            stats.cache_misses += 1;
        }
        next.files.insert(
            task.rel.clone(),
            cache::CacheEntry {
                hash: outcome.hash,
                findings: outcome.findings.clone(),
            },
        );
        findings.extend(outcome.findings);
        file_symbols.extend(outcome.symbols);
    }

    // Vendored-shim API drift (fixture workspaces have no vendor tree).
    let vendor = config.root.join("vendor");
    if vendor.is_dir() {
        findings.extend(manifest::check(&vendor)?);
    }

    // The interprocedural pass.
    let t_graph = Instant::now();
    let graph = graph::CallGraph::build(file_symbols);
    findings.extend(reach::check_graph(
        &graph,
        &config.entry_points,
        &config.hot_paths,
        &config.warm_paths,
    ));
    stats.graph_ns = t_graph.elapsed().as_nanos();

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let entries = config
        .entry_points
        .iter()
        .flat_map(|p| graph.resolve_entry(p))
        .collect();
    if let Some(path) = &config.cache {
        cache::store(path, &next);
    }
    stats.total_ns = t_start.elapsed().as_nanos();
    Ok(Analysis {
        findings,
        graph,
        entries,
        stats,
    })
}

/// Runs the per-file pass over `tasks` in parallel, one output slot per
/// task. Workers own disjoint chunks of the slot array, so output order is
/// the task order regardless of scheduling — determinism costs nothing
/// here because no worker ever contends with another.
fn run_file_pass(tasks: &[FileTask], prior: &cache::CacheFile) -> Vec<io::Result<FileOutcome>> {
    let mut slots: Vec<Option<io::Result<FileOutcome>>> = Vec::new();
    slots.resize_with(tasks.len(), || None);
    if tasks.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .min(tasks.len());
    let chunk = tasks.len().div_ceil(workers);
    std::thread::scope(|s| {
        for (task_chunk, slot_chunk) in tasks.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(move || {
                for (task, slot) in task_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(run_one_file(task, prior));
                }
            });
        }
    });
    // Every slot is filled: the chunked zip covers all indices exactly once.
    slots.into_iter().flatten().collect()
}

/// Lints one file, serving per-file findings from the cache when the
/// content hash matches. Symbols are re-collected unconditionally — the
/// call graph must reflect the workspace as it is now, and collection is
/// cheap next to the rule pass.
fn run_one_file(task: &FileTask, prior: &cache::CacheFile) -> io::Result<FileOutcome> {
    let text = fs::read_to_string(&task.path)?;
    let hash = cache::content_hash(text.as_bytes());
    let cached = prior
        .files
        .get(&task.rel)
        .filter(|entry| entry.hash == hash);
    let (findings, cache_hit) = match cached {
        Some(entry) => (entry.findings.clone(), true),
        None => (check_file(&task.rel, &text, task.ctx), false),
    };
    let symbols = task
        .graph
        .then(|| symbols::collect(&task.crate_name, &task.module, &task.rel, &text));
    Ok(FileOutcome {
        findings,
        symbols,
        hash,
        cache_hit,
    })
}

/// The tier-1 gate check: the workspace policy plus baseline-ratchet
/// semantics, as one call usable from any crate's tests. Returns `Err`
/// with a rendered report when there are unbaselined findings or stale
/// baseline entries.
pub fn check_workspace_gate(root: &Path) -> Result<(), String> {
    let config = Config::for_workspace(root);
    let findings = lint_workspace(&config).map_err(|e| format!("lint pass failed: {e}"))?;
    let baseline_text = fs::read_to_string(root.join(baseline::BASELINE_FILE)).unwrap_or_default();
    let entries = baseline::parse(&baseline_text).map_err(|e| format!("bad baseline: {e}"))?;
    let outcome = baseline::apply(&findings, &entries);
    if outcome.is_clean() {
        return Ok(());
    }
    let mut msg = String::new();
    for f in &outcome.unbaselined {
        msg.push_str(&format!("  {f}\n"));
    }
    for e in &outcome.stale {
        msg.push_str(&format!(
            "  stale baseline entry {}:{}: {} (regenerate with `cargo run -p xtask -- lint --update-baseline`)\n",
            e.file, e.line, e.rule
        ));
    }
    Err(msg)
}

/// Walks the workspace and lists every `.rs` file the pass must visit, in
/// deterministic (sorted) order.
fn collect_tasks(config: &Config) -> io::Result<Vec<FileTask>> {
    let mut tasks = Vec::new();
    let crates_dir = config.root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if config.skip_crates.contains(&name) {
            continue;
        }
        collect_src_dir(config, &name, &dir.join("src"), &mut tasks)?;
    }
    // The root `tectonic` package.
    collect_src_dir(config, "tectonic", &config.root.join("src"), &mut tasks)?;
    Ok(tasks)
}

/// Lists every `.rs` file under one `src/` directory with its lint context.
fn collect_src_dir(
    config: &Config,
    crate_name: &str,
    src_dir: &Path,
    tasks: &mut Vec<FileTask>,
) -> io::Result<()> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    manifest::collect_rs_files(src_dir, &mut files)?;
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(&config.root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileContext {
            is_crate_root: file.parent() == Some(src_dir)
                && file.file_name().is_some_and(|n| n == "lib.rs"),
            strict_index: config.strict_index.contains(&rel),
            // Binary targets own their stdout; libraries do not.
            allow_print: rel.contains("/bin/") || rel.ends_with("src/main.rs"),
            strict_arith: config.strict_arith.contains(&rel),
        };
        // Graph exclusions: build-time-tool crates and binary targets are
        // never callees of library code (see `Config::graph_skip_crates`).
        let graph = !config.graph_skip_crates.iter().any(|c| c == crate_name) && !ctx.allow_print;
        let module = file
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        tasks.push(FileTask {
            crate_name: crate_name.to_string(),
            module,
            rel,
            path: file,
            ctx,
            graph,
        });
    }
    Ok(())
}
