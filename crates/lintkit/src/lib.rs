//! `lintkit` — the workspace's self-contained static-analysis pass.
//!
//! The reproduction's pipelines parse hostile or malformed external inputs
//! (DNS wire replies, the published egress CSV, Atlas measurement dumps).
//! One stray `unwrap` turns a bad record into an aborted multi-hour scan,
//! which the ROADMAP's production-scale goal cannot afford. This crate
//! enforces the project's robustness invariants *statically* so they cannot
//! regress:
//!
//! * **no-panic** — no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
//!   `unimplemented!` in library (non-test) code,
//! * **no-index** — no `expr[i]` indexing on designated hostile-input parse
//!   paths (use `.get`),
//! * **no-print** — no `println!`-family output in library code,
//! * **forbid-unsafe** — every crate root carries `#![forbid(unsafe_code)]`,
//! * **vendor-manifest** — the vendored dependency shims match the
//!   checked-in public-API manifest (`vendor/API_MANIFEST.txt`),
//! * **allow-needs-reason** — suppressions must carry a justification.
//!
//! Any finding can be suppressed with
//! `// lintkit: allow(<rule>) -- <reason>`; the reason is mandatory.
//!
//! On top of the per-file rules, the pass builds a workspace-wide symbol
//! table ([`symbols`]) and conservative call graph ([`graph`]) and runs
//! six interprocedural rules ([`reach`], [`order`]):
//!
//! * **panic-reachability** — no panic site may be transitively reachable
//!   from a declared hostile-input entry point (unresolvable dynamic
//!   dispatch is a ⊥ node that conservatively "may panic"),
//! * **lock-order** — the derived `Mutex`/`RwLock` acquisition-order graph
//!   must be acyclic,
//! * **determinism-taint** — `SystemTime::now`/`Instant::now`/`thread_rng`
//!   sources must be unreachable from `SimClock`/`SimRng`-driven code,
//! * **map-iter-order** — `HashMap`/`HashSet` iteration order must not
//!   reach a function's output without a sorting boundary; functions that
//!   leak it taint their callers to a fixpoint ([`order`]),
//! * **rng-fork-order** — code reachable from the sharded engine must use
//!   `SimRng::fork_indexed`, never the sibling-order-dependent `fork`,
//! * **shard-state-escape** — `ShardModel` impls must not touch shared
//!   mutable aliases (`Mutex`, `OnceLock`, atomics, `static mut`);
//!   cross-shard effects go through `ShardCtx` sends only.
//!
//! Accepted findings live in the `lint-baseline.json` ratchet ([`baseline`]):
//! new findings fail, and so do stale baseline entries, so the debt only
//! burns down. `--json` and `--sarif` ([`sarif`]) export the findings for
//! CI artifacts and code-hosting annotation UIs.
//!
//! Built without external dependencies (no crates.io access in the build
//! environment, so no `syn`): the lexer in [`lexer`] provides just enough
//! structure. Run via `cargo run -p xtask -- lint`; the same pass also runs
//! as a tier-1 test (`tests/workspace_gate.rs`) and in CI.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod order;
pub mod reach;
pub mod rules;
pub mod sarif;
pub mod symbols;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{check_file, FileContext, Finding, Rule};

/// What to lint and how strictly.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Workspace-relative paths of files where the `no-index` rule applies —
    /// the parse paths that face hostile input.
    pub strict_index: Vec<String>,
    /// Crate directory names under `crates/` to skip entirely (dev tools
    /// such as the lint driver binary itself).
    pub skip_crates: Vec<String>,
    /// Entry points for the panic-reachability rule, as
    /// `crate::module::name` patterns (`name` may be `*` for every
    /// function in the module). A pattern that matches nothing is itself a
    /// finding, so renames cannot silently disable the analysis.
    pub entry_points: Vec<String>,
    /// Crates linted per-file but excluded from the call graph. Build-time
    /// tools (lintkit itself) are never callees of product code, and their
    /// generic function names (`parse`, `resolve`, `collect`) would only
    /// add false edges. Binary targets are excluded for the same reason —
    /// a `[[bin]]` cannot be linked into a library call path.
    pub graph_skip_crates: Vec<String>,
}

impl Config {
    /// The project policy: every library crate, strict indexing on the
    /// hostile-input decoders, the `xtask` driver exempt (it is a pure
    /// binary dev-tool, not library code), and reachability entry points on
    /// every surface that parses hostile bytes or serves the request path.
    pub fn for_workspace(root: &Path) -> Config {
        Config {
            root: root.to_path_buf(),
            strict_index: vec![
                "crates/dns/src/wire.rs".to_string(),
                // The discrete-event scheduler: event order is the whole
                // determinism contract, so no slice indexing anywhere.
                "crates/engine/src/sched.rs".to_string(),
                "crates/geo/src/csv.rs".to_string(),
                "crates/net/src/lpm.rs".to_string(),
                "crates/quic/src/packet.rs".to_string(),
                "crates/quic/src/varint.rs".to_string(),
                "crates/simnet/src/channel.rs".to_string(),
            ],
            skip_crates: vec!["xtask".to_string()],
            entry_points: vec![
                // The multi-hour ECS scan drive loop.
                "core::ecs_scan::scan_subnets".to_string(),
                // Batched longest-prefix matching under the scan's
                // per-reply attribution.
                "net::lpm::lookup_batch".to_string(),
                // DNS wire decoding of hostile reply bytes.
                "dns::wire::decode_message".to_string(),
                // The published egress CSV (lossy parse path).
                "geo::csv::parse_csv_lossy".to_string(),
                // QUIC Version Negotiation probing (paper §6).
                "quic::probe::*".to_string(),
                // The relay client request path.
                "relay::client::request".to_string(),
                "relay::client::request_pair".to_string(),
                "relay::client::odoh_resolve".to_string(),
                // The fault-injection delivery hot path (chaos harness).
                "simnet::channel::deliver".to_string(),
                // The sharded discrete-event engine: scheduler loop and
                // every shard-facing surface must be panic-free — a panic
                // in one worker poisons the whole scan.
                "engine::sched::*".to_string(),
            ],
            graph_skip_crates: vec!["lintkit".to_string()],
        }
    }
}

/// The full result of one workspace pass: the findings plus the call graph
/// they were computed on (for `--graph` dumps and diagnostics).
pub struct Analysis {
    /// All findings, sorted by file and line.
    pub findings: Vec<Finding>,
    /// The linked workspace call graph.
    pub graph: graph::CallGraph,
    /// Resolved entry-point function indices into `graph.funcs`.
    pub entries: Vec<usize>,
}

/// Lints the whole workspace: every crate under `crates/*/src`, the root
/// package's `src/`, the vendored-shim manifest, and the interprocedural
/// graph rules. Findings come back sorted by file and line.
pub fn lint_workspace(config: &Config) -> io::Result<Vec<Finding>> {
    Ok(analyze_workspace(config)?.findings)
}

/// [`lint_workspace`], but also returning the call graph.
pub fn analyze_workspace(config: &Config) -> io::Result<Analysis> {
    let mut findings = Vec::new();
    let mut file_symbols = Vec::new();
    let crates_dir = config.root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if config.skip_crates.contains(&name) {
            continue;
        }
        lint_src_dir(
            config,
            &name,
            &dir.join("src"),
            &mut findings,
            &mut file_symbols,
        )?;
    }
    // The root `tectonic` package.
    lint_src_dir(
        config,
        "tectonic",
        &config.root.join("src"),
        &mut findings,
        &mut file_symbols,
    )?;
    // Vendored-shim API drift (fixture workspaces have no vendor tree).
    let vendor = config.root.join("vendor");
    if vendor.is_dir() {
        findings.extend(manifest::check(&vendor)?);
    }
    // The interprocedural pass.
    let graph = graph::CallGraph::build(file_symbols);
    findings.extend(reach::check_graph(&graph, &config.entry_points));
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let entries = config
        .entry_points
        .iter()
        .flat_map(|p| graph.resolve_entry(p))
        .collect();
    Ok(Analysis {
        findings,
        graph,
        entries,
    })
}

/// The tier-1 gate check: the workspace policy plus baseline-ratchet
/// semantics, as one call usable from any crate's tests. Returns `Err`
/// with a rendered report when there are unbaselined findings or stale
/// baseline entries.
pub fn check_workspace_gate(root: &Path) -> Result<(), String> {
    let config = Config::for_workspace(root);
    let findings = lint_workspace(&config).map_err(|e| format!("lint pass failed: {e}"))?;
    let baseline_text = fs::read_to_string(root.join(baseline::BASELINE_FILE)).unwrap_or_default();
    let entries = baseline::parse(&baseline_text).map_err(|e| format!("bad baseline: {e}"))?;
    let outcome = baseline::apply(&findings, &entries);
    if outcome.is_clean() {
        return Ok(());
    }
    let mut msg = String::new();
    for f in &outcome.unbaselined {
        msg.push_str(&format!("  {f}\n"));
    }
    for e in &outcome.stale {
        msg.push_str(&format!(
            "  stale baseline entry {}:{}: {} (regenerate with `cargo run -p xtask -- lint --update-baseline`)\n",
            e.file, e.line, e.rule
        ));
    }
    Err(msg)
}

/// Lints every `.rs` file under one `src/` directory and collects its
/// symbol table for the graph pass.
fn lint_src_dir(
    config: &Config,
    crate_name: &str,
    src_dir: &Path,
    findings: &mut Vec<Finding>,
    file_symbols: &mut Vec<symbols::FileSymbols>,
) -> io::Result<()> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    manifest::collect_rs_files(src_dir, &mut files)?;
    files.sort();
    for file in files {
        let rel = file
            .strip_prefix(&config.root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileContext {
            is_crate_root: file.parent() == Some(src_dir)
                && file.file_name().is_some_and(|n| n == "lib.rs"),
            strict_index: config.strict_index.contains(&rel),
            // Binary targets own their stdout; libraries do not.
            allow_print: rel.contains("/bin/") || rel.ends_with("src/main.rs"),
        };
        let text = fs::read_to_string(&file)?;
        findings.extend(check_file(&rel, &text, ctx));
        // Graph exclusions: build-time-tool crates and binary targets are
        // never callees of library code (see `Config::graph_skip_crates`).
        if !config.graph_skip_crates.iter().any(|c| c == crate_name) && !ctx.allow_print {
            let module = file
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            file_symbols.push(symbols::collect(crate_name, &module, &rel, &text));
        }
    }
    Ok(())
}
