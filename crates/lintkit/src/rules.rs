//! The lint rules and the per-file checker.
//!
//! Rules operate on the token stream from [`crate::lexer`]; everything in a
//! `#[cfg(test)]`-gated item is exempt (test code may panic freely), and
//! any finding can be suppressed with an allow comment that *must* carry a
//! justification:
//!
//! ```text
//! // lintkit: allow(no-panic) -- bounds checked two lines above
//! ```
//!
//! The comment suppresses matching findings on its own line (trailing
//! form) or, when it stands alone, on the next code line. An allow without
//! a reason, or for an unknown rule, is itself reported.

use std::fmt;

use crate::lexer::{lex, Token, TokenKind};

/// The rules the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in library code.
    NoPanic,
    /// No `expr[i]` indexing (use `.get`) — enforced on hostile-input parse
    /// paths only; slicing with an explicit range is out of scope.
    NoIndex,
    /// No `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code —
    /// output belongs to the report/monitor layer or a binary target.
    NoPrint,
    /// Crate roots must carry `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// An allow comment must name a known rule and give a reason.
    AllowNeedsReason,
    /// Vendored shims must match the checked-in public-API manifest.
    VendorManifest,
    /// No panic site (`unwrap`/`expect`/panic macros/scalar indexing) may be
    /// transitively reachable from a declared hostile-input entry point.
    PanicReachability,
    /// The interprocedural lock-acquisition-order graph must be acyclic.
    LockOrder,
    /// No wall-clock or OS-randomness source may be reachable from a
    /// function that takes a `SimClock`/`SimRng`.
    DeterminismTaint,
    /// Iteration order of a `HashMap`/`HashSet` must not reach a function's
    /// output (return value, tail expression, `&mut` out-param or `self`
    /// field) without passing a sorting boundary — collecting into a
    /// `BTreeMap`/`BTreeSet`, re-keying into a fresh hash container, a
    /// `.sort*()` on the collected `Vec`, or a commutative reduction.
    /// Order-taint propagates through the call graph: a function returning
    /// unordered iteration results taints its callers.
    MapIterOrder,
    /// Code reachable from the sharded engine (`engine::sched::*` or any
    /// `ShardModel` impl) must not call the order-dependent `SimRng::fork`;
    /// use `fork_indexed` keyed by a stable id instead.
    RngForkOrder,
    /// `ShardModel` impl blocks must not touch shared mutable state
    /// (`static mut`, `OnceLock`, `Arc<Mutex<_>>`/`Arc<RwLock<_>>`,
    /// atomics, `thread_local!`) — cross-shard effects go through
    /// `ShardCtx` sends only.
    ShardStateEscape,
    /// No heap allocation (`Vec::new`, `vec!`, `with_capacity`, `Box::new`,
    /// `String::from`, `format!`, `.to_string()`, `.to_vec()`, `.collect()`,
    /// `.clone()` on heap-typed values) may be reachable from a declared
    /// steady-state hot entry point; construction/setup boundaries are
    /// exempted via `Config::warm_paths` ([`crate::resource`]).
    AllocInHotPath,
    /// No lossy `as` cast (`usize`/`u64`/`u128` down to `u32`/`u16`/`u8`,
    /// or a signedness flip) in strict-arithmetic files — use `try_from` /
    /// `checked_*` or carry a reasoned allow. Widening casts stay silent.
    NarrowingCast,
    /// No unguarded `+`/`-`/`*`/`<<` on index/size-typed expressions in
    /// strict-arithmetic files; `checked_*`/`saturating_*`/`wrapping_*`
    /// and bounds-dominated (`if`/`while`-guarded, `min`/`max`/`clamp`)
    /// patterns are recognized as boundaries.
    UncheckedArith,
}

impl Rule {
    /// Every rule, in declaration order.  SARIF rule indices and the cache
    /// fingerprint both derive from this list, so order is load-bearing:
    /// append new rules at the end.
    pub const ALL: [Rule; 15] = [
        Rule::NoPanic,
        Rule::NoIndex,
        Rule::NoPrint,
        Rule::ForbidUnsafe,
        Rule::AllowNeedsReason,
        Rule::VendorManifest,
        Rule::PanicReachability,
        Rule::LockOrder,
        Rule::DeterminismTaint,
        Rule::MapIterOrder,
        Rule::RngForkOrder,
        Rule::ShardStateEscape,
        Rule::AllocInHotPath,
        Rule::NarrowingCast,
        Rule::UncheckedArith,
    ];

    /// The rule's stable name, as used in allow comments and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoIndex => "no-index",
            Rule::NoPrint => "no-print",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::AllowNeedsReason => "allow-needs-reason",
            Rule::VendorManifest => "vendor-manifest",
            Rule::PanicReachability => "panic-reachability",
            Rule::LockOrder => "lock-order",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::MapIterOrder => "map-iter-order",
            Rule::RngForkOrder => "rng-fork-order",
            Rule::ShardStateEscape => "shard-state-escape",
            Rule::AllocInHotPath => "alloc-in-hot-path",
            Rule::NarrowingCast => "narrowing-cast",
            Rule::UncheckedArith => "unchecked-arith",
        }
    }

    /// Parses a rule name as written in an allow comment.
    pub fn from_name(s: &str) -> Option<Rule> {
        match s {
            "no-panic" => Some(Rule::NoPanic),
            "no-index" => Some(Rule::NoIndex),
            "no-print" => Some(Rule::NoPrint),
            "forbid-unsafe" => Some(Rule::ForbidUnsafe),
            "allow-needs-reason" => Some(Rule::AllowNeedsReason),
            "vendor-manifest" => Some(Rule::VendorManifest),
            "panic-reachability" => Some(Rule::PanicReachability),
            "lock-order" => Some(Rule::LockOrder),
            "determinism-taint" => Some(Rule::DeterminismTaint),
            "map-iter-order" => Some(Rule::MapIterOrder),
            "rng-fork-order" => Some(Rule::RngForkOrder),
            "shard-state-escape" => Some(Rule::ShardStateEscape),
            "alloc-in-hot-path" => Some(Rule::AllocInHotPath),
            "narrowing-cast" => Some(Rule::NarrowingCast),
            "unchecked-arith" => Some(Rule::UncheckedArith),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line of the violation (0 for file-level findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Per-file lint context, decided by the workspace walker.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// This file is a crate root (`src/lib.rs`) and must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// The `no-index` rule applies (hostile-input parse paths).
    pub strict_index: bool,
    /// Printing is acceptable here (binary targets under `src/bin/`).
    pub allow_print: bool,
    /// The `narrowing-cast` / `unchecked-arith` rules apply (arithmetic
    /// kernels whose index math must be checked or reasoned about).
    pub strict_arith: bool,
}

/// A parsed `lintkit: allow(...)` comment.
struct Allow {
    rule: Option<Rule>,
    has_reason: bool,
    /// The code line the allow applies to.
    effective_line: u32,
    /// The line the comment itself sits on (for error reporting).
    comment_line: u32,
}

/// Checks one source file against every applicable rule.
pub fn check_file(rel_path: &str, src: &str, ctx: FileContext) -> Vec<Finding> {
    let tokens = lex(src);
    let allows = collect_allows(&tokens);
    let mut findings = Vec::new();

    // Malformed allow comments are findings themselves, never suppressible.
    for a in &allows {
        match a.rule {
            None => findings.push(Finding {
                rule: Rule::AllowNeedsReason,
                file: rel_path.to_string(),
                line: a.comment_line,
                message: "allow comment names an unknown rule".to_string(),
            }),
            Some(_) if !a.has_reason => findings.push(Finding {
                rule: Rule::AllowNeedsReason,
                file: rel_path.to_string(),
                line: a.comment_line,
                message: "allow comment needs a `-- <reason>` justification".to_string(),
            }),
            Some(_) => {}
        }
    }
    let suppressed = |rule: Rule, line: u32| {
        allows
            .iter()
            .any(|a| a.rule == Some(rule) && a.has_reason && a.effective_line == line)
    };

    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();

    if ctx.is_crate_root && !has_forbid_unsafe(&code) {
        findings.push(Finding {
            rule: Rule::ForbidUnsafe,
            file: rel_path.to_string(),
            line: 1,
            message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
        });
    }

    let skip = test_gated_ranges(&code);
    let in_skip = |i: usize| skip.iter().any(|(lo, hi)| (*lo..=*hi).contains(&i));

    let mut i = 0usize;
    while i < code.len() {
        if in_skip(i) {
            i += 1;
            continue;
        }
        let tok = code[i];
        // `.unwrap()` / `.expect(` method calls.
        if tok.is_punct(b'.') {
            if let (Some(name), Some(paren)) = (code.get(i + 1), code.get(i + 2)) {
                if paren.is_punct(b'(')
                    && (name.is_ident("unwrap") || name.is_ident("expect"))
                    && !suppressed(Rule::NoPanic, name.line)
                {
                    findings.push(Finding {
                        rule: Rule::NoPanic,
                        file: rel_path.to_string(),
                        line: name.line,
                        message: format!(".{}() can panic on malformed input", name.text),
                    });
                }
            }
        }
        // Panicking and printing macros.
        if tok.kind == TokenKind::Ident {
            if let Some(bang) = code.get(i + 1) {
                if bang.is_punct(b'!') {
                    let is_panic = matches!(
                        tok.text.as_str(),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    );
                    let is_print = matches!(
                        tok.text.as_str(),
                        "println" | "eprintln" | "print" | "eprint" | "dbg"
                    );
                    if is_panic && !suppressed(Rule::NoPanic, tok.line) {
                        findings.push(Finding {
                            rule: Rule::NoPanic,
                            file: rel_path.to_string(),
                            line: tok.line,
                            message: format!("{}! aborts the whole pipeline", tok.text),
                        });
                    }
                    if is_print && !ctx.allow_print && !suppressed(Rule::NoPrint, tok.line) {
                        findings.push(Finding {
                            rule: Rule::NoPrint,
                            file: rel_path.to_string(),
                            line: tok.line,
                            message: format!(
                                "{}! in library code — route output through the report layer",
                                tok.text
                            ),
                        });
                    }
                }
            }
        }
        // Indexing without `.get` on strict paths.
        if ctx.strict_index && tok.is_punct(b'[') && i > 0 && is_index_base(code[i - 1]) {
            if let Some(close) = matching_bracket(&code, i) {
                if !contains_top_level_range(&code, i, close)
                    && !suppressed(Rule::NoIndex, tok.line)
                {
                    findings.push(Finding {
                        rule: Rule::NoIndex,
                        file: rel_path.to_string(),
                        line: tok.line,
                        message: "indexing can panic — use .get()/.get_mut() on this parse path"
                            .to_string(),
                    });
                }
            }
        }
        i += 1;
    }
    if ctx.strict_arith {
        crate::resource::check_arith(rel_path, &code, &skip, &suppressed, &mut findings);
    }
    findings
}

/// Whether the token before `[` makes it an index expression: an
/// identifier that is not an expression-introducing keyword, or a closing
/// `)` / `]` (call result / nested index).
pub(crate) fn is_index_base(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Punct(b')') | TokenKind::Punct(b']') => true,
        TokenKind::Ident => !matches!(
            prev.text.as_str(),
            "let"
                | "mut"
                | "ref"
                | "in"
                | "if"
                | "else"
                | "while"
                | "loop"
                | "for"
                | "match"
                | "return"
                | "break"
                | "continue"
                | "move"
                | "as"
                | "dyn"
                | "impl"
                | "where"
                | "box"
                | "const"
                | "static"
                | "type"
                | "use"
                | "pub"
                | "unsafe"
                | "async"
                | "await"
                | "yield"
        ),
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`, if any.
pub(crate) fn matching_bracket(code: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct(b'[') {
            depth += 1;
        } else if t.is_punct(b']') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Whether `code[open+1..close]` contains a `..` at the outermost bracket
/// depth — i.e. the expression is a range slice, not a scalar index.
pub(crate) fn contains_top_level_range(code: &[&Token], open: usize, close: usize) -> bool {
    let mut depth = 0i32;
    let mut k = open + 1;
    while k < close {
        let t = code[k];
        if t.is_punct(b'[') || t.is_punct(b'(') {
            depth += 1;
        } else if t.is_punct(b']') || t.is_punct(b')') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(b'.') {
            if let Some(next) = code.get(k + 1) {
                if next.is_punct(b'.') {
                    return true;
                }
            }
        }
        k += 1;
    }
    false
}

/// Whether the stream carries the inner attribute `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(code: &[&Token]) -> bool {
    code.windows(8).any(|w| {
        w[0].is_punct(b'#')
            && w[1].is_punct(b'!')
            && w[2].is_punct(b'[')
            && w[3].is_ident("forbid")
            && w[4].is_punct(b'(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(b')')
            && w[7].is_punct(b']')
    })
}

/// Token-index ranges (inclusive) of items gated behind `#[cfg(test)]`
/// (or any `cfg` whose arguments mention `test` without `not`).
pub(crate) fn test_gated_ranges(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct(b'#')
            && code.get(i + 1).is_some_and(|t| t.is_punct(b'['))
            && code.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && code.get(i + 3).is_some_and(|t| t.is_punct(b'('))
        {
            // Scan the cfg argument list.
            let mut j = i + 4;
            let mut depth = 1i32;
            let mut mentions_test = false;
            let mut mentions_not = false;
            while j < code.len() && depth > 0 {
                let t = code[j];
                if t.is_punct(b'(') {
                    depth += 1;
                } else if t.is_punct(b')') {
                    depth -= 1;
                } else if t.is_ident("test") {
                    mentions_test = true;
                } else if t.is_ident("not") {
                    mentions_not = true;
                }
                j += 1;
            }
            // Skip the closing `]` of the attribute.
            if code.get(j).is_some_and(|t| t.is_punct(b']')) {
                j += 1;
            }
            if mentions_test && !mentions_not {
                if let Some(end) = item_end(code, j) {
                    ranges.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Index of the last token of the item starting at `start` (further
/// attributes included): either the `;` that terminates it or the `}`
/// matching its first body brace.
fn item_end(code: &[&Token], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip any further outer attributes.
    while code.get(i).is_some_and(|t| t.is_punct(b'#'))
        && code.get(i + 1).is_some_and(|t| t.is_punct(b'['))
    {
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < code.len() {
            if code[j].is_punct(b'[') {
                depth += 1;
            } else if code[j].is_punct(b']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    // Find the body `{` or the terminating `;` (at bracket depth 0, so a
    // `[u8; 4]` in the header does not end the item early).
    let mut sq = 0i32;
    while i < code.len() {
        let t = code[i];
        if t.is_punct(b'[') {
            sq += 1;
        } else if t.is_punct(b']') {
            sq -= 1;
        } else if t.is_punct(b';') && sq == 0 {
            return Some(i);
        } else if t.is_punct(b'{') {
            let mut depth = 0i32;
            let mut j = i;
            while j < code.len() {
                if code[j].is_punct(b'{') {
                    depth += 1;
                } else if code[j].is_punct(b'}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                j += 1;
            }
            return Some(code.len() - 1);
        }
        i += 1;
    }
    None
}

/// The code lines carrying a *reasoned* allow comment for any of `rules` —
/// the sanctioned sites the interprocedural pass must also trust.
pub(crate) fn collect_reasoned_allows(tokens: &[Token], rules: &[Rule]) -> Vec<u32> {
    collect_allows(tokens)
        .iter()
        .filter(|a| a.has_reason && a.rule.is_some_and(|r| rules.contains(&r)))
        .map(|a| a.effective_line)
        .collect()
}

/// Parses every `lintkit: allow(...)` comment in the stream.
fn collect_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        let body = tok
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("lintkit: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            allows.push(Allow {
                rule: None,
                has_reason: false,
                effective_line: tok.line,
                comment_line: tok.line,
            });
            continue;
        };
        let rule = Rule::from_name(rest[..close].trim());
        let tail = rest[close + 1..].trim();
        let has_reason = tail
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        // Trailing comment → applies to its own line. Standalone comment →
        // applies to the next code line.
        let standalone = !tokens[..idx]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| t.kind != TokenKind::Comment);
        let effective_line = if standalone {
            tokens[idx + 1..]
                .iter()
                .find(|t| t.kind != TokenKind::Comment)
                .map(|t| t.line)
                .unwrap_or(tok.line)
        } else {
            tok.line
        };
        allows.push(Allow {
            rule,
            has_reason,
            effective_line,
            comment_line: tok.line,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        check_file("test.rs", src, FileContext::default())
    }

    #[test]
    fn flags_unwrap_and_expect() {
        let f = check("fn f() { x.unwrap(); y.expect(\"m\"); }");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == Rule::NoPanic));
    }

    #[test]
    fn flags_panicking_macros() {
        let f = check("fn f() { panic!(\"x\"); unreachable!(); todo!(); }");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(check("fn f() { x.unwrap_or(0); x.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); panic!(); }\n}";
        assert!(check(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn g() { x.unwrap(); }";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn trailing_allow_with_reason_suppresses() {
        let src = "fn f() { x.unwrap(); } // lintkit: allow(no-panic) -- checked above";
        assert!(check(src).is_empty());
    }

    #[test]
    fn standalone_allow_applies_to_next_line() {
        let src = "// lintkit: allow(no-panic) -- fixture\nfn f() { x.unwrap(); }";
        assert!(check(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_its_own_finding() {
        let src = "fn f() { x.unwrap(); } // lintkit: allow(no-panic)";
        let f = check(src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|f| f.rule == Rule::AllowNeedsReason));
        assert!(f.iter().any(|f| f.rule == Rule::NoPanic));
    }

    #[test]
    fn allow_for_unknown_rule_is_reported() {
        let src = "fn f() {} // lintkit: allow(no-such-rule) -- because";
        let f = check(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AllowNeedsReason);
    }

    #[test]
    fn print_macros_flagged_only_in_library_context() {
        let src = "fn f() { println!(\"x\"); dbg!(y); }";
        assert_eq!(check(src).len(), 2);
        let ctx = FileContext {
            allow_print: true,
            ..FileContext::default()
        };
        assert!(check_file("bin.rs", src, ctx).is_empty());
    }

    #[test]
    fn crate_root_needs_forbid_unsafe() {
        let ctx = FileContext {
            is_crate_root: true,
            ..FileContext::default()
        };
        let f = check_file("lib.rs", "fn f() {}", ctx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ForbidUnsafe);
        assert!(check_file("lib.rs", "#![forbid(unsafe_code)]\nfn f() {}", ctx).is_empty());
    }

    #[test]
    fn indexing_flagged_only_on_strict_paths() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] }";
        assert!(check(src).is_empty());
        let ctx = FileContext {
            strict_index: true,
            ..FileContext::default()
        };
        let f = check_file("strict.rs", src, ctx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NoIndex);
    }

    #[test]
    fn range_slicing_and_declarations_not_flagged_by_no_index() {
        let ctx = FileContext {
            strict_index: true,
            ..FileContext::default()
        };
        let src = "fn f(b: &[u8]) -> &[u8] { let x: [u8; 4] = [0; 4]; &b[1..3] }";
        assert!(check_file("strict.rs", src, ctx).is_empty());
    }

    #[test]
    fn finding_lines_are_exact() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        let f = check(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }
}
