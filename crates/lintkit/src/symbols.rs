//! The workspace symbol table: one [`FuncDef`] per non-test function.
//!
//! [`collect`] walks a file's token stream, tracking `mod`/`impl`/`trait`
//! nesting, and records for every function outside `#[cfg(test)]` ranges:
//!
//! * its identity — crate, module (file stem), name, `impl` self type,
//! * its **panic sites** — `unwrap`/`expect`/panic-family macros and scalar
//!   `expr[i]` indexing (sites suppressed by a reasoned
//!   `// lintkit: allow(no-panic|no-index|panic-reachability)` comment are
//!   *not* recorded: the allow documents why the site cannot fire, so the
//!   interprocedural pass trusts it the same way the per-file pass does),
//! * its **call sites** — bare calls, `a::b::f()` path calls and `.m()`
//!   method calls, the raw material for [`crate::graph`],
//! * its **lock events** — acquisitions of struct fields declared as
//!   `Mutex`/`RwLock` (blocking `lock`/`read`/`write`; `try_lock` cannot
//!   deadlock and is ignored), interleaved with the call sites so the
//!   lock-order analysis sees what is held across which calls,
//! * its **determinism-taint sources** — `SystemTime::now`, `Instant::now`,
//!   `thread_rng`-style wall-clock/OS-randomness reads,
//! * whether its signature mentions `SimClock`/`SimRng` (the functions the
//!   determinism rule protects).
//!
//! Trait declarations are recorded too: a method *name* declared in any
//! workspace `trait` marks every `.name()` call as dynamic dispatch, which
//! the graph resolves conservatively (all impls plus the ⊥ node).

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{collect_reasoned_allows, test_gated_ranges, Rule};

/// One callable the analyzer knows about.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Crate directory name (`core`, `dns`, …; `tectonic` for the root).
    pub crate_name: String,
    /// Module name — the file stem (`ecs_scan`, `wire`, `lib`).
    pub module: String,
    /// The function name.
    pub name: String,
    /// The `impl` self-type name, when defined inside an `impl` block, or
    /// the trait name for a default method body inside a `trait` block.
    pub self_type: Option<String>,
    /// The trait name when defined inside an `impl Trait for Type` block
    /// (also set, to the trait's own name, for trait default bodies).
    pub impl_trait: Option<String>,
    /// Whether this is a default method body inside a `trait` block.
    pub in_trait: bool,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Whether the signature mentions `SimClock` or `SimRng`.
    pub takes_sim_types: bool,
    /// Whether the signature declares a `->` return type.
    pub returns_value: bool,
    /// Whether the return type mentions `HashMap`/`HashSet` — callers
    /// binding this call's result hold an unordered container.
    pub ret_unordered_container: bool,
    /// Parameter names, in declaration order (`self` excluded).
    pub params: Vec<String>,
    /// Parameter names whose declared type mentions `HashMap`/`HashSet`.
    pub unordered_params: Vec<String>,
    /// Parameter names passed by `&mut` reference — writes through them
    /// escape to the caller.
    pub ref_mut_params: Vec<String>,
    /// `HashMap`/`HashSet` struct-field names declared in the same file,
    /// visible to this function as `self.<field>`.
    pub map_fields: Vec<String>,
    /// Unsuppressed may-panic sites in the body.
    pub panic_sites: Vec<Site>,
    /// Wall-clock / OS-randomness reads in the body.
    pub taint_sites: Vec<Site>,
    /// Unsuppressed order-dependent `.fork(` call sites.
    pub fork_sites: Vec<Site>,
    /// Unsuppressed shared-mutable-state touches (`Mutex`, `OnceLock`,
    /// atomics, `.lock()`, `static mut`, …).
    pub shared_sites: Vec<Site>,
    /// Unsuppressed heap-allocation sites (`Vec::new`, `vec!`,
    /// `with_capacity`, `.to_vec()`, `.collect()`, `.clone()` on
    /// heap-typed values, …) for the alloc-in-hot-path rule.
    pub alloc_sites: Vec<Site>,
    /// Lines carrying a reasoned `allow(map-iter-order)` — seeds the order
    /// dataflow must skip.
    pub order_allows: Vec<u32>,
    /// The statement-level order IR the map-iter-order dataflow replays
    /// (see [`crate::order`]).
    pub order_stmts: Vec<OrderStmt>,
    /// Body events in source order (calls and lock acquisitions).
    pub events: Vec<Event>,
}

impl FuncDef {
    /// `crate::module::name`, the display path used in findings and DOT.
    pub fn path(&self) -> String {
        format!("{}::{}::{}", self.crate_name, self.module, self.name)
    }
}

/// A single interesting source location inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-indexed line.
    pub line: u32,
    /// What sits there (`.unwrap()`, `panic!`, `indexing`, …).
    pub what: String,
}

/// One body event, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A call site.
    Call(CallSite),
    /// A blocking acquisition of a known lock field.
    Acquire {
        /// The lock's identity (see [`LockDecl::id`]).
        lock: String,
        /// 1-indexed line of the acquisition.
        line: u32,
    },
}

/// How a call site names its callee.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments before the final name (`["masque"]` for
    /// `masque::establish(..)`, empty for bare calls).
    pub qualifiers: Vec<String>,
    /// The called name.
    pub name: String,
    /// `.name(..)` method-call syntax.
    pub is_method: bool,
    /// 1-indexed line.
    pub line: u32,
}

/// One statement of the order IR: a flat lexical summary of what the
/// statement binds, reads, calls and chains, retained so the
/// map-iter-order dataflow ([`crate::order`]) can replay the
/// intra-function analysis whenever interprocedural callee summaries
/// change.
#[derive(Debug, Clone, Default)]
pub struct OrderStmt {
    /// 1-indexed line the statement starts on.
    pub line: u32,
    /// Assignment destinations: `let` pattern variables, a reassigned
    /// variable, or a dotted `self.field` path.
    pub dests: Vec<String>,
    /// The destinations are freshly bound with `let` (a rebind clears any
    /// previous taint on the name).
    pub is_let: bool,
    /// Type-annotation identifiers on the `let` destination.
    pub dest_type: Vec<String>,
    /// `for <pat> in …` loop variables — the statement is a loop header,
    /// where reading an unordered container *is* iterating it.
    pub for_vars: Vec<String>,
    /// Root identifiers read (`x`, `self.field`).
    pub reads: Vec<String>,
    /// Path qualifiers seen (`HashMap` in `HashMap::new()`) — the
    /// constructor evidence for container typing.
    pub quals: Vec<String>,
    /// Method-chain uses, in source order.
    pub methods: Vec<MethodUse>,
    /// Free/path call names with their call-site lines.
    pub calls: Vec<(String, u32)>,
    /// Statement starts with `return`.
    pub is_return: bool,
    /// Statement is the function's trailing tail expression.
    pub is_tail: bool,
    /// Compound assignment (`+=`, `|=`, …): a commutative accumulation,
    /// treated as an order boundary.
    pub compound_assign: bool,
}

/// One `.name(…)` use inside a statement's method chains.
#[derive(Debug, Clone)]
pub struct MethodUse {
    /// The method name.
    pub name: String,
    /// The dotted receiver root (`m`, `self.map`) when the call starts a
    /// chain from a named place; `None` mid-chain (after `)`/`]`).
    pub recv: Option<String>,
    /// Identifiers inside a `::<…>` turbofish (`collect` targets).
    pub turbofish: Vec<String>,
    /// 1-indexed line.
    pub line: u32,
}

/// A struct field declared with a `Mutex`/`RwLock` type.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Workspace-relative file the struct lives in.
    pub file: String,
    /// The struct name.
    pub struct_name: String,
    /// The field name.
    pub field: String,
}

impl LockDecl {
    /// The stable identity used in lock-order findings: `Struct.field`.
    pub fn id(&self) -> String {
        format!("{}.{}", self.struct_name, self.field)
    }
}

/// Everything [`collect`] extracted from one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// The functions defined in the file (test-gated ones excluded).
    pub funcs: Vec<FuncDef>,
    /// Method names declared in `trait` blocks (dynamic-dispatch markers).
    pub trait_methods: Vec<String>,
    /// `Mutex`/`RwLock` struct fields declared in the file.
    pub locks: Vec<LockDecl>,
    /// `HashMap`/`HashSet` struct-field names declared in the file.
    pub map_fields: Vec<String>,
}

/// Panic-family macros (must match the per-file `no-panic` rule).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Extracts the symbol table of one file.
pub fn collect(crate_name: &str, module: &str, rel_path: &str, src: &str) -> FileSymbols {
    let tokens = lex(src);
    let suppressed = collect_reasoned_allows(
        &tokens,
        &[Rule::NoPanic, Rule::NoIndex, Rule::PanicReachability],
    );
    let order_allows = collect_reasoned_allows(&tokens, &[Rule::MapIterOrder]);
    let fork_allows = collect_reasoned_allows(&tokens, &[Rule::RngForkOrder]);
    let shared_allows = collect_reasoned_allows(&tokens, &[Rule::ShardStateEscape]);
    let alloc_allows = collect_reasoned_allows(&tokens, &[Rule::AllocInHotPath]);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let skip = test_gated_ranges(&code);
    let heap_idents = heap_idents(&code);
    let mut out = FileSymbols::default();
    let mut walker = Walker {
        code: &code,
        skip: &skip,
        suppressed: &suppressed,
        order_allows: &order_allows,
        fork_allows: &fork_allows,
        shared_allows: &shared_allows,
        alloc_allows: &alloc_allows,
        heap_idents: &heap_idents,
        crate_name,
        module,
        rel_path,
        out: &mut out,
    };
    walker.items(0, code.len(), &Ctx::default());
    // Struct declarations may follow the impls that use them, so the
    // file-level map-field set is distributed after the walk.
    let map_fields = out.map_fields.clone();
    for f in &mut out.funcs {
        f.map_fields = map_fields.clone();
    }
    out
}

/// Identifiers the file gives lexical evidence of being heap-typed —
/// `name: Vec<…>`-shaped ascriptions (params, struct fields, lets) and
/// `let name = <heap constructor>` bindings. Used to decide whether a
/// `.clone()` allocates. Evidence-based and file-global: a name typed
/// heap anywhere counts, which over-approximates across functions, but a
/// reasoned allow documents the rare false positive.
fn heap_idents(code: &[&Token]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    let is_heap_head = |t: &Token| {
        t.kind == TokenKind::Ident && crate::resource::HEAP_TYPES.contains(&t.text.as_str())
    };
    for i in 0..code.len() {
        // `name : …Vec<…>…` — scan the type tokens to the segment end.
        if code[i].kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && !code.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && (i == 0 || !code[i - 1].is_punct(b':'))
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            while let Some(t) = code.get(j) {
                match t.kind {
                    TokenKind::Punct(b'<') | TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => {
                        depth += 1
                    }
                    TokenKind::Punct(b'>') | TokenKind::Punct(b')') | TokenKind::Punct(b']') => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokenKind::Punct(b',')
                    | TokenKind::Punct(b';')
                    | TokenKind::Punct(b'=')
                    | TokenKind::Punct(b'{')
                    | TokenKind::Punct(b'}')
                        if depth == 0 =>
                    {
                        break;
                    }
                    _ => {
                        if is_heap_head(t) || t.is_ident("String") {
                            out.insert(code[i].text.clone());
                            break;
                        }
                    }
                }
                j += 1;
            }
        }
        // `let name = <rhs>;` where the RHS visibly constructs heap data.
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = code.get(j) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident
                || !code.get(j + 1).is_some_and(|t| t.is_punct(b'='))
            {
                continue;
            }
            let mut depth = 0i32;
            let mut k = j + 2;
            while let Some(t) = code.get(k) {
                match t.kind {
                    TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
                    TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
                    TokenKind::Punct(b';') | TokenKind::Punct(b'{') if depth == 0 => break,
                    TokenKind::Ident => {
                        let heap_ctor = (is_heap_head(t)
                            && code.get(k + 1).is_some_and(|n| n.is_punct(b':')))
                            || (matches!(t.text.as_str(), "vec" | "format")
                                && code.get(k + 1).is_some_and(|n| n.is_punct(b'!')))
                            || (matches!(
                                t.text.as_str(),
                                "to_vec" | "to_string" | "to_owned" | "collect"
                            ) && code.get(k + 1).is_some_and(|n| n.is_punct(b'(')));
                        if heap_ctor {
                            out.insert(name_tok.text.clone());
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
    }
    out
}

/// What [`Walker::signature`] extracts from one function signature.
#[derive(Debug, Default)]
struct SigInfo {
    params: Vec<String>,
    unordered_params: Vec<String>,
    ref_mut_params: Vec<String>,
    returns_value: bool,
    ret_unordered: bool,
}

/// Item-walk context: the `impl`/`trait` block we are inside, if any.
#[derive(Debug, Clone, Default)]
struct Ctx {
    self_type: Option<String>,
    impl_trait: Option<String>,
    in_trait: bool,
}

struct Walker<'a> {
    code: &'a [&'a Token],
    skip: &'a [(usize, usize)],
    suppressed: &'a [u32],
    order_allows: &'a [u32],
    fork_allows: &'a [u32],
    shared_allows: &'a [u32],
    alloc_allows: &'a [u32],
    heap_idents: &'a std::collections::BTreeSet<String>,
    crate_name: &'a str,
    module: &'a str,
    rel_path: &'a str,
    out: &'a mut FileSymbols,
}

impl Walker<'_> {
    fn in_skip(&self, i: usize) -> bool {
        self.skip.iter().any(|(lo, hi)| (*lo..=*hi).contains(&i))
    }

    /// Index of the `}`/`)`/`]`/`>` closing the opener at `open` (same
    /// punctuation family), or the end of the stream.
    fn close_of(&self, open: usize, opener: u8, closer: u8) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while let Some(t) = self.code.get(i) {
            if t.is_punct(opener) {
                depth += 1;
            } else if t.is_punct(closer) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Walks the items in `code[lo..hi]`, collecting functions.
    fn items(&mut self, lo: usize, hi: usize, ctx: &Ctx) {
        let mut i = lo;
        while i < hi {
            if self.in_skip(i) {
                i += 1;
                continue;
            }
            let t = self.code[i];
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "fn" => i = self.func(i, ctx, hi),
                "mod" => {
                    // Inline module: recurse into its braces (same file, so
                    // the module name for resolution stays the file stem).
                    let mut j = i + 1;
                    while j < hi && !self.code[j].is_punct(b'{') && !self.code[j].is_punct(b';') {
                        j += 1;
                    }
                    if j < hi && self.code[j].is_punct(b'{') {
                        let close = self.close_of(j, b'{', b'}');
                        self.items(j + 1, close.min(hi), ctx);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "impl" => {
                    let (header_end, self_type, impl_trait) = self.impl_header(i, hi);
                    if header_end < hi && self.code[header_end].is_punct(b'{') {
                        let close = self.close_of(header_end, b'{', b'}');
                        let inner = Ctx {
                            self_type,
                            impl_trait,
                            in_trait: false,
                        };
                        self.items(header_end + 1, close.min(hi), &inner);
                        i = close + 1;
                    } else {
                        i = header_end + 1;
                    }
                }
                "trait" => {
                    let name = self
                        .code
                        .get(i + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone());
                    let mut j = i + 1;
                    while j < hi && !self.code[j].is_punct(b'{') && !self.code[j].is_punct(b';') {
                        j += 1;
                    }
                    if j < hi && self.code[j].is_punct(b'{') {
                        let close = self.close_of(j, b'{', b'}');
                        self.trait_body(j + 1, close.min(hi), name.as_deref());
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "struct" => {
                    i = self.struct_decl(i, hi);
                }
                _ => i += 1,
            }
        }
    }

    /// Records the method names a `trait` block declares, then walks its
    /// default bodies as ordinary functions (tagged `in_trait`).
    fn trait_body(&mut self, lo: usize, hi: usize, trait_name: Option<&str>) {
        let mut i = lo;
        while i < hi {
            if self.code[i].is_ident("fn") {
                if let Some(name) = self.code.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                    self.out.trait_methods.push(name.text.clone());
                }
                let ctx = Ctx {
                    self_type: trait_name.map(String::from),
                    impl_trait: trait_name.map(String::from),
                    in_trait: true,
                };
                i = self.func(i, &ctx, hi);
            } else {
                i += 1;
            }
        }
    }

    /// Parses `impl … {`, returning the index of the body `{`, the
    /// self-type name (the last path segment before the brace, or before
    /// `for` when it is a trait impl — `impl Trait for Type`) and, for a
    /// trait impl, the implemented trait's name.
    fn impl_header(&self, start: usize, hi: usize) -> (usize, Option<String>, Option<String>) {
        let mut j = start + 1;
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut seen_for = false;
        let mut angle = 0i32;
        while j < hi {
            let t = self.code[j];
            if t.is_punct(b'<') {
                angle += 1;
            } else if t.is_punct(b'>') {
                angle -= 1;
            } else if t.is_punct(b'{') && angle <= 0 {
                break;
            } else if t.is_ident("for") {
                seen_for = true;
            } else if t.is_ident("where") {
                // Type name is settled before the where-clause.
            } else if t.kind == TokenKind::Ident && angle <= 0 {
                if seen_for {
                    after_for = Some(t.text.clone());
                } else {
                    last_ident = Some(t.text.clone());
                }
            }
            j += 1;
        }
        let impl_trait = if seen_for { last_ident.clone() } else { None };
        (j, after_for.or(last_ident), impl_trait)
    }

    /// Records `Mutex`/`RwLock` fields of a `struct` declaration; returns
    /// the index just past the item.
    fn struct_decl(&mut self, start: usize, hi: usize) -> usize {
        let Some(name) = self
            .code
            .get(start + 1)
            .filter(|t| t.kind == TokenKind::Ident)
        else {
            return start + 1;
        };
        let struct_name = name.text.clone();
        let mut j = start + 2;
        let mut angle = 0i32;
        while j < hi {
            let t = self.code[j];
            if t.is_punct(b'<') {
                angle += 1;
            } else if t.is_punct(b'>') {
                angle -= 1;
            } else if (t.is_punct(b'{') || t.is_punct(b'(') || t.is_punct(b';')) && angle <= 0 {
                break;
            }
            j += 1;
        }
        if j >= hi || !self.code[j].is_punct(b'{') {
            // Tuple/unit struct: no named lock fields to track.
            return j + 1;
        }
        let close = self.close_of(j, b'{', b'}');
        // Fields: `name : Type ,` — a field whose type tokens mention
        // Mutex/RwLock before the next top-level comma is a lock.
        let mut k = j + 1;
        while k < close {
            if self.code[k].kind == TokenKind::Ident
                && self.code.get(k + 1).is_some_and(|t| t.is_punct(b':'))
            {
                let field = self.code[k].text.clone();
                let mut m = k + 2;
                let mut depth = 0i32;
                let mut is_lock = false;
                let mut is_map = false;
                while m < close {
                    let t = self.code[m];
                    if t.is_punct(b'<') || t.is_punct(b'(') {
                        depth += 1;
                    } else if t.is_punct(b'>') || t.is_punct(b')') {
                        depth -= 1;
                    } else if t.is_punct(b',') && depth <= 0 {
                        break;
                    } else if t.is_ident("Mutex") || t.is_ident("RwLock") {
                        is_lock = true;
                    } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                        is_map = true;
                    }
                    m += 1;
                }
                if is_lock {
                    self.out.locks.push(LockDecl {
                        file: self.rel_path.to_string(),
                        struct_name: struct_name.clone(),
                        field,
                    });
                } else if is_map {
                    self.out.map_fields.push(field);
                }
                k = m + 1;
            } else {
                k += 1;
            }
        }
        close + 1
    }

    /// Parses one `fn` starting at the `fn` keyword; returns the index just
    /// past the item.
    fn func(&mut self, fn_kw: usize, ctx: &Ctx, hi: usize) -> usize {
        let Some(name_tok) = self
            .code
            .get(fn_kw + 1)
            .filter(|t| t.kind == TokenKind::Ident)
        else {
            return fn_kw + 1;
        };
        // Signature runs to the body `{` or a `;` (trait method without a
        // default body) at angle-depth 0.
        let mut j = fn_kw + 2;
        let mut angle = 0i32;
        let mut takes_sim_types = false;
        while j < hi {
            let t = self.code[j];
            if t.is_punct(b'<') {
                angle += 1;
            } else if t.is_punct(b'>') {
                angle -= 1;
            } else if t.is_ident("SimClock") || t.is_ident("SimRng") {
                takes_sim_types = true;
            } else if (t.is_punct(b'{') || t.is_punct(b';')) && angle <= 0 {
                break;
            }
            j += 1;
        }
        if j >= hi || self.code[j].is_punct(b';') {
            // Bodyless trait-method declaration: nothing to analyze.
            return j + 1;
        }
        let body_open = j;
        let body_close = self.close_of(body_open, b'{', b'}').min(hi);
        let sig = self.signature(fn_kw + 2, body_open);
        let mut def = FuncDef {
            crate_name: self.crate_name.to_string(),
            module: self.module.to_string(),
            name: name_tok.text.clone(),
            self_type: ctx.self_type.clone(),
            impl_trait: ctx.impl_trait.clone(),
            in_trait: ctx.in_trait,
            file: self.rel_path.to_string(),
            line: self.code[fn_kw].line,
            takes_sim_types,
            returns_value: sig.returns_value,
            ret_unordered_container: sig.ret_unordered,
            params: sig.params,
            unordered_params: sig.unordered_params,
            ref_mut_params: sig.ref_mut_params,
            map_fields: Vec::new(),
            panic_sites: Vec::new(),
            taint_sites: Vec::new(),
            fork_sites: Vec::new(),
            shared_sites: Vec::new(),
            alloc_sites: Vec::new(),
            order_allows: self.order_allows.to_vec(),
            order_stmts: Vec::new(),
            events: Vec::new(),
        };
        self.body(body_open + 1, body_close, &mut def);
        def.order_stmts = self.order_ir(body_open + 1, body_close, def.returns_value);
        self.out.funcs.push(def);
        body_close + 1
    }

    /// Parses the parameter list and return type of a signature spanning
    /// `code[start..body_open]`.
    fn signature(&self, start: usize, body_open: usize) -> SigInfo {
        let code = self.code;
        let mut info = SigInfo::default();
        // The parameter parens: the first `(` outside the generic list.
        let mut j = start;
        let mut angle = 0i32;
        while j < body_open {
            let t = code[j];
            if t.is_punct(b'<') {
                angle += 1;
            } else if t.is_punct(b'>') {
                angle -= 1;
            } else if t.is_punct(b'(') && angle <= 0 {
                break;
            }
            j += 1;
        }
        if j >= body_open {
            return info;
        }
        let close = self.close_of(j, b'(', b')').min(body_open);
        // Split parameters at top-level commas.
        let mut seg = j + 1;
        let mut depth = 0i32;
        let mut k = j + 1;
        while k <= close {
            let t = code[k];
            let end_seg = k == close || (t.is_punct(b',') && depth <= 0);
            if t.is_punct(b'<') || t.is_punct(b'(') || t.is_punct(b'[') {
                depth += 1;
            } else if t.is_punct(b'>') || t.is_punct(b')') || t.is_punct(b']') {
                depth -= 1;
            }
            if end_seg {
                self.param_segment(seg, k, &mut info);
                seg = k + 1;
            }
            k += 1;
        }
        // Return type: `-> …` between the parens and the body.
        let mut r = close + 1;
        while r + 1 < body_open {
            if code[r].is_punct(b'-') && code[r + 1].is_punct(b'>') {
                info.returns_value = true;
                for t in &code[r + 2..body_open] {
                    if t.is_ident("HashMap") || t.is_ident("HashSet") {
                        info.ret_unordered = true;
                    }
                }
                break;
            }
            r += 1;
        }
        info
    }

    /// One parameter segment `pat : Type` — records the pattern names and
    /// whether the type is an unordered container.
    fn param_segment(&self, lo: usize, hi: usize, info: &mut SigInfo) {
        let code = self.code;
        let mut colon = None;
        let mut depth = 0i32;
        for (k, t) in code.iter().enumerate().take(hi).skip(lo) {
            if t.is_punct(b'<') || t.is_punct(b'(') {
                depth += 1;
            } else if t.is_punct(b'>') || t.is_punct(b')') {
                depth -= 1;
            } else if t.is_punct(b':') && depth <= 0 {
                colon = Some(k);
                break;
            }
        }
        let Some(colon) = colon else { return }; // `self` receivers
        let mut names = Vec::new();
        for t in &code[lo..colon] {
            if t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "mut" | "ref" | "self")
                && !t.text.starts_with(|c: char| c.is_ascii_uppercase())
            {
                names.push(t.text.clone());
            }
        }
        let ty = &code[colon + 1..hi];
        let unordered = ty
            .iter()
            .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));
        let ref_mut = ty.windows(2).any(|w| {
            w[0].is_punct(b'&') && (w[1].is_ident("mut") || w[1].kind == TokenKind::Lifetime)
        }) && ty.iter().any(|t| t.is_ident("mut"));
        for n in names {
            if unordered {
                info.unordered_params.push(n.clone());
            }
            if ref_mut {
                info.ref_mut_params.push(n.clone());
            }
            info.params.push(n);
        }
    }

    /// Scans a function body for panic sites, taint sources, lock
    /// acquisitions and call sites.
    fn body(&mut self, lo: usize, hi: usize, def: &mut FuncDef) {
        let code = self.code;
        let is_suppressed = |line: u32| self.suppressed.contains(&line);
        let mut i = lo;
        while i < hi {
            let tok = code[i];
            // `.unwrap()` / `.expect(`.
            if tok.is_punct(b'.') {
                if let (Some(name), Some(paren)) = (code.get(i + 1), code.get(i + 2)) {
                    if paren.is_punct(b'(')
                        && (name.is_ident("unwrap") || name.is_ident("expect"))
                        && !is_suppressed(name.line)
                    {
                        def.panic_sites.push(Site {
                            line: name.line,
                            what: format!(".{}()", name.text),
                        });
                    }
                }
            }
            // Panic-family macros and taint sources.
            if tok.kind == TokenKind::Ident {
                if code.get(i + 1).is_some_and(|t| t.is_punct(b'!'))
                    && PANIC_MACROS.contains(&tok.text.as_str())
                    && !is_suppressed(tok.line)
                {
                    def.panic_sites.push(Site {
                        line: tok.line,
                        what: format!("{}!", tok.text),
                    });
                }
                let now_call = (tok.is_ident("SystemTime") || tok.is_ident("Instant"))
                    && code.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                    && code.get(i + 2).is_some_and(|t| t.is_punct(b':'))
                    && code.get(i + 3).is_some_and(|t| t.is_ident("now"));
                let rng_call = (tok.is_ident("thread_rng") || tok.is_ident("from_entropy"))
                    && code.get(i + 1).is_some_and(|t| t.is_punct(b'('));
                if now_call || rng_call {
                    let what = if now_call {
                        format!("{}::now()", tok.text)
                    } else {
                        format!("{}()", tok.text)
                    };
                    def.taint_sites.push(Site {
                        line: tok.line,
                        what,
                    });
                }
            }
            // Scalar indexing.
            if tok.is_punct(b'[') && i > lo && crate::rules::is_index_base(code[i - 1]) {
                if let Some(close) = crate::rules::matching_bracket(code, i) {
                    if !crate::rules::contains_top_level_range(code, i, close)
                        && !is_suppressed(tok.line)
                    {
                        def.panic_sites.push(Site {
                            line: tok.line,
                            what: "indexing".to_string(),
                        });
                    }
                }
            }
            // Order-dependent RNG forks: `.fork(` (the order-free variant
            // is `.fork_indexed(`, a different identifier).
            if tok.is_punct(b'.') {
                if let (Some(name), Some(paren)) = (code.get(i + 1), code.get(i + 2)) {
                    if paren.is_punct(b'(')
                        && name.is_ident("fork")
                        && !self.fork_allows.contains(&name.line)
                    {
                        def.fork_sites.push(Site {
                            line: name.line,
                            what: ".fork()".to_string(),
                        });
                    }
                }
            }
            // Heap-allocation sites (for the alloc-in-hot-path rule).
            if tok.kind == TokenKind::Ident
                && matches!(tok.text.as_str(), "vec" | "format")
                && code.get(i + 1).is_some_and(|t| t.is_punct(b'!'))
                && !self.alloc_allows.contains(&tok.line)
            {
                def.alloc_sites.push(Site {
                    line: tok.line,
                    what: format!("{}!", tok.text),
                });
            }
            // Heap-type path constructors: `Vec::new(`, `Box::new(`,
            // `String::from(`, `Vec::with_capacity(`, ….
            if tok.kind == TokenKind::Ident
                && matches!(tok.text.as_str(), "new" | "with_capacity" | "from")
                && code.get(i + 1).is_some_and(|t| t.is_punct(b'('))
                && i >= lo + 3
                && code[i - 1].is_punct(b':')
                && code[i - 2].is_punct(b':')
                && code[i - 3].kind == TokenKind::Ident
                && crate::resource::HEAP_TYPES.contains(&code[i - 3].text.as_str())
                && !self.alloc_allows.contains(&tok.line)
            {
                def.alloc_sites.push(Site {
                    line: tok.line,
                    what: format!("{}::{}", code[i - 3].text, tok.text),
                });
            }
            // Allocating methods, plus `.clone()` on heap-typed receivers.
            if tok.is_punct(b'.') {
                if let (Some(name), Some(paren)) = (code.get(i + 1), code.get(i + 2)) {
                    if paren.is_punct(b'(') && !self.alloc_allows.contains(&name.line) {
                        if crate::resource::ALLOC_METHODS.contains(&name.text.as_str()) {
                            def.alloc_sites.push(Site {
                                line: name.line,
                                what: format!(".{}()", name.text),
                            });
                        } else if name.is_ident("clone")
                            && i > lo
                            && code[i - 1].kind == TokenKind::Ident
                            && self.heap_idents.contains(&code[i - 1].text)
                        {
                            def.alloc_sites.push(Site {
                                line: name.line,
                                what: format!(".clone() of heap-typed `{}`", code[i - 1].text),
                            });
                        }
                    }
                }
            }
            // Shared-mutable-state touches (for the shard-state-escape
            // rule; only flagged inside `ShardModel` impl blocks).
            if tok.kind == TokenKind::Ident && !self.shared_allows.contains(&tok.line) {
                let name = tok.text.as_str();
                let shared_type = matches!(
                    name,
                    "Mutex" | "RwLock" | "OnceLock" | "OnceCell" | "LazyLock"
                ) || (name.starts_with("Atomic") && name.len() > 6)
                    || name == "thread_local";
                if shared_type {
                    def.shared_sites.push(Site {
                        line: tok.line,
                        what: name.to_string(),
                    });
                }
                if tok.is_ident("static") && code.get(i + 1).is_some_and(|t| t.is_ident("mut")) {
                    def.shared_sites.push(Site {
                        line: tok.line,
                        what: "static mut".to_string(),
                    });
                }
            }
            if tok.is_punct(b'.') {
                if let (Some(name), Some(paren)) = (code.get(i + 1), code.get(i + 2)) {
                    if paren.is_punct(b'(')
                        && (name.is_ident("lock") || name.is_ident("try_lock"))
                        && !self.shared_allows.contains(&name.line)
                    {
                        def.shared_sites.push(Site {
                            line: name.line,
                            what: format!(".{}()", name.text),
                        });
                    }
                }
            }
            // Lock acquisitions: `.field.lock()` / `.read()` / `.write()`.
            // (`try_lock` is non-blocking and cannot deadlock.)
            if tok.is_punct(b'.') {
                if let (Some(field), Some(dot2), Some(verb), Some(paren)) = (
                    code.get(i + 1),
                    code.get(i + 2),
                    code.get(i + 3),
                    code.get(i + 4),
                ) {
                    if field.kind == TokenKind::Ident
                        && dot2.is_punct(b'.')
                        && paren.is_punct(b'(')
                        && (verb.is_ident("lock")
                            || verb.is_ident("read")
                            || verb.is_ident("write"))
                    {
                        if let Some(decl) = self
                            .out
                            .locks
                            .iter()
                            .find(|l| l.field == field.text && l.file == self.rel_path)
                        {
                            def.events.push(Event::Acquire {
                                lock: decl.id(),
                                line: verb.line,
                            });
                        }
                    }
                }
            }
            // Call sites: `name (` that is not a macro, definition or
            // control keyword. Method calls are `. name (`.
            if tok.kind == TokenKind::Ident
                && code.get(i + 1).is_some_and(|t| t.is_punct(b'('))
                && !CALL_EXCLUDED.contains(&tok.text.as_str())
            {
                let prev = if i > lo { Some(code[i - 1]) } else { None };
                let prev_is_macro_bang = prev.is_some_and(|t| t.is_punct(b'!'));
                let prev_is_fn = prev.is_some_and(|t| t.is_ident("fn"));
                if !prev_is_macro_bang && !prev_is_fn {
                    let is_method = prev.is_some_and(|t| t.is_punct(b'.'));
                    let mut qualifiers = Vec::new();
                    if !is_method {
                        // Walk `seg ::` pairs backwards.
                        let mut k = i;
                        while k >= 2
                            && code[k - 1].is_punct(b':')
                            && k >= 3
                            && code[k - 2].is_punct(b':')
                            && code[k - 3].kind == TokenKind::Ident
                        {
                            qualifiers.insert(0, code[k - 3].text.clone());
                            k -= 3;
                        }
                    }
                    def.events.push(Event::Call(CallSite {
                        qualifiers,
                        name: tok.text.clone(),
                        is_method,
                        line: tok.line,
                    }));
                }
            }
            i += 1;
        }
    }

    /// Segments a function body into the flat statement list of the order
    /// IR. Statements split at `;`, `{` and `}` outside parens/brackets, so
    /// a `for` header is its own statement and loop/match bodies contribute
    /// their statements at the same (flattened) level.
    fn order_ir(&self, lo: usize, hi: usize, returns_value: bool) -> Vec<OrderStmt> {
        let code = self.code;
        let mut stmts = Vec::new();
        let mut s = lo;
        let mut depth = 0i32;
        let mut i = lo;
        while i < hi {
            let t = code[i];
            if t.is_punct(b'(') || t.is_punct(b'[') {
                depth += 1;
            } else if t.is_punct(b')') || t.is_punct(b']') {
                depth -= 1;
            } else if depth <= 0 && (t.is_punct(b';') || t.is_punct(b'{') || t.is_punct(b'}')) {
                if i > s {
                    if let Some(st) = self.order_stmt(s, i) {
                        stmts.push(st);
                    }
                }
                s = i + 1;
            }
            i += 1;
        }
        if hi > s {
            if let Some(mut st) = self.order_stmt(s, hi) {
                // A trailing segment without `;` is the tail expression.
                st.is_tail = returns_value;
                stmts.push(st);
            }
        }
        stmts
    }

    /// Parses one statement segment into its [`OrderStmt`] summary.
    fn order_stmt(&self, lo: usize, hi: usize) -> Option<OrderStmt> {
        let code = self.code;
        let mut st = OrderStmt {
            line: code[lo].line,
            ..OrderStmt::default()
        };
        let mut i = lo;
        if code[i].is_ident("return") {
            st.is_return = true;
            i += 1;
        } else if code[i].is_ident("let") {
            st.is_let = true;
            i += 1;
            // Pattern runs to the `:` annotation or `=` at nesting depth 0.
            let pat_start = i;
            let mut depth = 0i32;
            while i < hi {
                let t = code[i];
                if t.is_punct(b'(') || t.is_punct(b'[') || t.is_punct(b'<') {
                    depth += 1;
                } else if t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'>') {
                    depth -= 1;
                } else if depth <= 0 && (t.is_punct(b':') || t.is_punct(b'=')) {
                    break;
                }
                i += 1;
            }
            for t in &code[pat_start..i.min(hi)] {
                if t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                    && !t.text.starts_with(|c: char| c.is_ascii_uppercase())
                {
                    st.dests.push(t.text.clone());
                }
            }
            if i < hi && code[i].is_punct(b':') {
                i += 1;
                let mut depth = 0i32;
                while i < hi {
                    let t = code[i];
                    if t.is_punct(b'<') {
                        depth += 1;
                    } else if t.is_punct(b'>') {
                        depth -= 1;
                    } else if depth <= 0 && t.is_punct(b'=') {
                        break;
                    }
                    if t.kind == TokenKind::Ident {
                        st.dest_type.push(t.text.clone());
                    }
                    i += 1;
                }
            }
            if i < hi && code[i].is_punct(b'=') {
                i += 1;
            }
        } else if code[i].is_ident("for") {
            i += 1;
            let pat_start = i;
            while i < hi && !code[i].is_ident("in") {
                i += 1;
            }
            for t in &code[pat_start..i.min(hi)] {
                if t.kind == TokenKind::Ident
                    && !matches!(t.text.as_str(), "mut" | "ref" | "_")
                    && !t.text.starts_with(|c: char| c.is_ascii_uppercase())
                {
                    st.for_vars.push(t.text.clone());
                }
            }
            if i < hi {
                i += 1;
            }
        } else {
            // Reassignment: `place = …` / `*place = …` / `place += …`.
            let mut k = i;
            if code[k].is_punct(b'*') {
                k += 1;
            }
            let mut path = String::new();
            while k < hi && code[k].kind == TokenKind::Ident {
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(&code[k].text);
                if code.get(k + 1).is_some_and(|t| t.is_punct(b'.'))
                    && code.get(k + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    k += 2;
                } else {
                    k += 1;
                    break;
                }
            }
            if !path.is_empty() && k < hi {
                let t = code[k];
                let next_eq = code.get(k + 1).is_some_and(|t| t.is_punct(b'='));
                let next2_eq = code.get(k + 2).is_some_and(|t| t.is_punct(b'='));
                if t.is_punct(b'=') && !next_eq {
                    st.dests.push(path);
                    i = k + 1;
                } else if matches!(t.kind, TokenKind::Punct(c) if b"+-*/%&|^".contains(&c))
                    && next_eq
                    && !next2_eq
                {
                    st.compound_assign = true;
                    i = k + 2;
                }
            }
        }
        self.expr_scan(i, hi, &mut st);
        Some(st)
    }

    /// Scans an expression span for reads, method-chain uses, calls and
    /// path qualifiers.
    fn expr_scan(&self, lo: usize, hi: usize, st: &mut OrderStmt) {
        let code = self.code;
        let mut i = lo;
        while i < hi {
            let t = code[i];
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let prev_dot = i > 0 && code[i - 1].is_punct(b'.');
            if prev_dot {
                // Method use (with optional turbofish) or field access.
                let mut j = i + 1;
                let mut fish = Vec::new();
                if code.get(j).is_some_and(|t| t.is_punct(b':'))
                    && code.get(j + 1).is_some_and(|t| t.is_punct(b':'))
                    && code.get(j + 2).is_some_and(|t| t.is_punct(b'<'))
                {
                    let close = self.close_of(j + 2, b'<', b'>');
                    for t in code.iter().take(close.min(hi)).skip(j + 3) {
                        if t.kind == TokenKind::Ident {
                            fish.push(t.text.clone());
                        }
                    }
                    j = close + 1;
                }
                if code.get(j).is_some_and(|t| t.is_punct(b'(')) {
                    st.methods.push(MethodUse {
                        name: t.text.clone(),
                        recv: self.recv_root(i - 1, lo),
                        turbofish: fish,
                        line: t.line,
                    });
                }
                i = j;
                continue;
            }
            let name = t.text.as_str();
            if ORDER_KEYWORDS.contains(&name) {
                // `self.field` reads root through the keyword filter.
                if name == "self"
                    && code.get(i + 1).is_some_and(|t| t.is_punct(b'.'))
                    && code.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                    && !code.get(i + 3).is_some_and(|t| t.is_punct(b'('))
                {
                    st.reads.push(format!("self.{}", code[i + 2].text));
                }
                i += 1;
                continue;
            }
            // Macro names are not reads.
            if code.get(i + 1).is_some_and(|t| t.is_punct(b'!')) {
                i += 2;
                continue;
            }
            // Path qualifier (`HashMap::new` → qualifier `HashMap`).
            if code.get(i + 1).is_some_and(|t| t.is_punct(b':'))
                && code.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            {
                st.quals.push(t.text.clone());
                i += 1;
                continue;
            }
            // Bare / path-final call.
            if code.get(i + 1).is_some_and(|t| t.is_punct(b'(')) {
                if !CALL_EXCLUDED.contains(&name)
                    && !name.starts_with(|c: char| c.is_ascii_uppercase())
                {
                    st.calls.push((t.text.clone(), t.line));
                }
                i += 1;
                continue;
            }
            if !name.starts_with(|c: char| c.is_ascii_uppercase()) {
                st.reads.push(t.text.clone());
            }
            i += 1;
        }
    }

    /// The dotted receiver root ending at the `.` at `dot` (`m`,
    /// `self.map`), or `None` when the chain continues from a call or
    /// index result.
    fn recv_root(&self, dot: usize, lo: usize) -> Option<String> {
        let code = self.code;
        let mut parts = Vec::new();
        let mut k = dot;
        while k > lo && code[k].is_punct(b'.') && code[k - 1].kind == TokenKind::Ident {
            parts.push(code[k - 1].text.clone());
            if k >= 2 && code[k - 2].is_punct(b'.') {
                k -= 2;
            } else {
                break;
            }
        }
        if parts.is_empty() {
            return None;
        }
        parts.reverse();
        Some(parts.join("."))
    }
}

/// Keywords and binding forms the order-IR expression scan never treats as
/// variable reads.
const ORDER_KEYWORDS: [&str; 34] = [
    "if", "else", "match", "while", "loop", "for", "in", "let", "mut", "ref", "return", "break",
    "continue", "as", "move", "fn", "impl", "pub", "use", "where", "dyn", "box", "true", "false",
    "self", "Self", "crate", "super", "static", "const", "unsafe", "async", "await", "yield",
];

/// Identifiers that look like calls syntactically but are not function
/// calls the graph should chase: control keywords and common tuple-struct
/// or enum constructors from `std` whose payloads cannot panic.
const CALL_EXCLUDED: [&str; 12] = [
    "if", "while", "match", "for", "return", "loop", "else", "in", "move", "Some", "Ok", "Err",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols(src: &str) -> FileSymbols {
        collect(
            "testcrate",
            "testmod",
            "crates/testcrate/src/testmod.rs",
            src,
        )
    }

    #[test]
    fn records_free_and_impl_functions() {
        let s = symbols(
            "fn free() {}\n\
             struct S;\n\
             impl S { fn method(&self) {} }\n\
             impl std::fmt::Display for S { fn fmt(&self) {} }",
        );
        let names: Vec<(&str, Option<&str>)> = s
            .funcs
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("free", None), ("method", Some("S")), ("fmt", Some("S")),]
        );
    }

    #[test]
    fn cfg_test_functions_are_invisible() {
        let s = symbols("fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        assert_eq!(s.funcs.len(), 1);
        assert_eq!(s.funcs[0].name, "lib");
    }

    #[test]
    fn panic_sites_and_suppressions() {
        let s = symbols(
            "fn f(v: &[u8]) {\n\
             v.unwrap();\n\
             x.expect(\"m\"); // lintkit: allow(no-panic) -- fixture reason\n\
             panic!();\n\
             let a = v[0];\n\
             let b = &v[1..2];\n\
             }",
        );
        let sites: Vec<&str> = s.funcs[0]
            .panic_sites
            .iter()
            .map(|p| p.what.as_str())
            .collect();
        assert_eq!(sites, vec![".unwrap()", "panic!", "indexing"]);
    }

    #[test]
    fn calls_paths_and_methods() {
        let s = symbols(
            "fn f() {\n\
             helper();\n\
             masque::establish(1);\n\
             x.handle(2);\n\
             Ipv4Net::new(a, b);\n\
             vec![1];\n\
             }",
        );
        let calls: Vec<(Vec<String>, String, bool)> = s.funcs[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some((c.qualifiers.clone(), c.name.clone(), c.is_method)),
                _ => None,
            })
            .collect();
        assert_eq!(
            calls,
            vec![
                (vec![], "helper".to_string(), false),
                (vec!["masque".to_string()], "establish".to_string(), false),
                (vec![], "handle".to_string(), true),
                (vec!["Ipv4Net".to_string()], "new".to_string(), false),
            ]
        );
    }

    #[test]
    fn locks_declared_and_acquired() {
        let s = symbols(
            "struct S { counter: Mutex<u64>, plain: u64, map: RwLock<Map> }\n\
             impl S {\n\
             fn f(&self) { let g = self.counter.lock(); self.map.read(); }\n\
             fn nb(&self) { self.counter.try_lock(); }\n\
             }",
        );
        assert_eq!(s.locks.len(), 2);
        let acquires: Vec<&str> = s.funcs[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { lock, .. } => Some(lock.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(acquires, vec!["S.counter", "S.map"]);
        // try_lock is not an acquisition event.
        assert!(s.funcs[1]
            .events
            .iter()
            .all(|e| !matches!(e, Event::Acquire { .. })));
    }

    #[test]
    fn trait_methods_recorded_with_default_bodies() {
        let s = symbols(
            "trait Server {\n\
             fn handle(&self, b: &[u8]) -> u8;\n\
             fn twice(&self, b: &[u8]) -> u8 { self.handle(b) }\n\
             }",
        );
        assert_eq!(s.trait_methods, vec!["handle", "twice"]);
        assert_eq!(s.funcs.len(), 1);
        assert_eq!(s.funcs[0].name, "twice");
        assert!(s.funcs[0].in_trait);
    }

    #[test]
    fn sim_type_signatures_detected() {
        let s = symbols(
            "fn sim(clock: &mut SimClock) {}\n\
             fn rng(r: &SimRng) {}\n\
             fn plain(x: u64) {}",
        );
        assert!(s.funcs[0].takes_sim_types);
        assert!(s.funcs[1].takes_sim_types);
        assert!(!s.funcs[2].takes_sim_types);
    }

    #[test]
    fn taint_sources_detected() {
        let s = symbols(
            "fn bad() { let t = SystemTime::now(); let i = Instant::now(); let r = thread_rng(); }",
        );
        let what: Vec<&str> = s.funcs[0]
            .taint_sites
            .iter()
            .map(|t| t.what.as_str())
            .collect();
        assert_eq!(
            what,
            vec!["SystemTime::now()", "Instant::now()", "thread_rng()"]
        );
    }
}
