//! The conservative workspace call graph.
//!
//! [`CallGraph::build`] links the per-file symbol tables from
//! [`crate::symbols`] into one graph. Resolution is name-based and
//! deliberately over-approximate — every plausible callee gets an edge —
//! with one designed escape hatch for dynamic dispatch:
//!
//! * **Path calls** (`a::b::f(..)`, `Type::new(..)`): candidates are all
//!   workspace functions named `f`, narrowed by any qualifier that matches
//!   a crate name (with or without the `tectonic_` prefix), a module (file
//!   stem) or an `impl` self-type. If narrowing empties the set, all
//!   same-name candidates stay — over-approximation beats a missed edge.
//! * **Bare calls** (`f(..)`): prefer same module, then same crate, then
//!   any workspace function named `f`.
//! * **Method calls** (`x.m(..)`): if `m` is declared by any workspace
//!   `trait`, the receiver may be a `dyn`/`impl` object the analysis cannot
//!   type, so the call edges to *every* workspace implementation of `m`
//!   **plus the ⊥ node** — the "unknown callee" that propagates *may
//!   panic*. Otherwise the call edges to every inherent method named `m`.
//! * Calls that resolve to nothing in the workspace (`std`, vendored
//!   shims) are non-panicking leaves. This is the analysis boundary: `std`
//!   panics (`Vec::push` on OOM, arithmetic in debug) are out of scope,
//!   matching the per-file rules.
//!
//! The graph also answers "which locks does this function transitively
//! acquire" (for the lock-order rule) and renders itself as GraphViz DOT
//! (`cargo run -p xtask -- lint --graph`).

use std::collections::{BTreeSet, HashMap};

use crate::symbols::{CallSite, Event, FileSymbols, FuncDef, LockDecl};

/// The callee of one resolved call-site edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    /// A workspace function, by index into [`CallGraph::funcs`].
    Func(usize),
    /// The ⊥ node: a dynamically-dispatched callee the analysis cannot
    /// resolve. Conservatively assumed to panic.
    Bottom,
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Where the edge lands.
    pub callee: Callee,
    /// The called name as written (for ⊥ diagnostics).
    pub name: String,
    /// 1-indexed call-site line in the caller's file.
    pub line: u32,
}

/// The linked workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every analyzed function.
    pub funcs: Vec<FuncDef>,
    /// Outgoing resolved edges, indexed like `funcs`.
    pub edges: Vec<Vec<Edge>>,
    /// Every `Mutex`/`RwLock` field declaration seen.
    pub locks: Vec<LockDecl>,
    /// Method names declared in workspace `trait` blocks.
    pub trait_methods: BTreeSet<String>,
    /// Known crate names (for qualifier narrowing).
    crates: BTreeSet<String>,
    /// Known module names (file stems).
    modules: BTreeSet<String>,
    /// Known `impl` self-type / trait names.
    self_types: BTreeSet<String>,
    /// Function indices by name.
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Links the per-file symbol tables into one graph.
    pub fn build(files: Vec<FileSymbols>) -> CallGraph {
        let mut g = CallGraph::default();
        for mut file in files {
            g.trait_methods.extend(file.trait_methods.drain(..));
            g.locks.append(&mut file.locks);
            g.funcs.append(&mut file.funcs);
        }
        for (i, f) in g.funcs.iter().enumerate() {
            g.by_name.entry(f.name.clone()).or_default().push(i);
            g.crates.insert(f.crate_name.clone());
            g.modules.insert(f.module.clone());
            if let Some(t) = &f.self_type {
                g.self_types.insert(t.clone());
            }
        }
        g.edges = g
            .funcs
            .iter()
            .map(|f| {
                f.events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Call(c) => Some(c),
                        Event::Acquire { .. } => None,
                    })
                    .flat_map(|c| g.resolve(f, c))
                    .collect()
            })
            .collect();
        g
    }

    /// Resolves one call site to its conservative edge set.
    fn resolve(&self, caller: &FuncDef, call: &CallSite) -> Vec<Edge> {
        let edge = |callee: Callee| Edge {
            callee,
            name: call.name.clone(),
            line: call.line,
        };
        let Some(candidates) = self.by_name.get(&call.name) else {
            // No workspace function of this name: for a statically-named
            // call that is the analysis boundary (external leaf), but a
            // trait-*declared* method may still dispatch to code the
            // workspace never wrote (an external impl): keep ⊥.
            return if call.is_method && self.trait_methods.contains(&call.name) {
                vec![edge(Callee::Bottom)]
            } else {
                Vec::new()
            };
        };
        if call.is_method {
            if self.trait_methods.contains(&call.name) {
                // Dynamic dispatch: every impl (and trait default body),
                // plus ⊥ for the impl the workspace cannot see.
                let mut out: Vec<Edge> = candidates
                    .iter()
                    .filter(|&&i| self.funcs[i].self_type.is_some())
                    .map(|&i| edge(Callee::Func(i)))
                    .collect();
                out.push(edge(Callee::Bottom));
                return out;
            }
            // Inherent method: only actual workspace methods qualify. A
            // name that exists only as a free function cannot be the
            // receiver's method — the call is external (iterator adapters
            // like `.collect()` must not resolve to a free `collect`).
            return candidates
                .iter()
                .copied()
                .filter(|&i| self.funcs[i].self_type.is_some())
                .map(|i| edge(Callee::Func(i)))
                .collect();
        }
        // Path call: a qualified name whose innermost qualifier names
        // nothing in the workspace (`Vec::new`, `u32::from_be_bytes`) is an
        // external call — the analysis boundary. `Self` stands for the
        // caller's impl type.
        if let Some(last) = call.qualifiers.last() {
            let as_crate = last.strip_prefix("tectonic_").unwrap_or(last);
            let known = matches!(last.as_str(), "crate" | "self" | "super" | "Self")
                || self.crates.contains(as_crate)
                || self.modules.contains(last)
                || self.self_types.contains(last);
            if !known {
                return Vec::new();
            }
        }
        let mut pool: Vec<usize> = candidates.clone();
        for q in &call.qualifiers {
            if q == "Self" {
                if let Some(t) = &caller.self_type {
                    let narrowed: Vec<usize> = pool
                        .iter()
                        .copied()
                        .filter(|&i| self.funcs[i].self_type.as_deref() == Some(t.as_str()))
                        .collect();
                    if !narrowed.is_empty() {
                        pool = narrowed;
                    }
                }
                continue;
            }
            if q == "crate" || q == "self" || q == "super" {
                let crate_name = caller.crate_name.clone();
                let narrowed: Vec<usize> = pool
                    .iter()
                    .copied()
                    .filter(|&i| self.funcs[i].crate_name == crate_name)
                    .collect();
                if !narrowed.is_empty() {
                    pool = narrowed;
                }
                continue;
            }
            let as_crate = q.strip_prefix("tectonic_").unwrap_or(q);
            let narrowed: Vec<usize> = pool
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &self.funcs[i];
                    f.crate_name == as_crate
                        || f.module == *q
                        || f.self_type.as_deref() == Some(q.as_str())
                })
                .collect();
            if !narrowed.is_empty() {
                pool = narrowed;
            }
        }
        if call.qualifiers.is_empty() {
            // Bare call: prefer same module, then same crate.
            let same_module: Vec<usize> = pool
                .iter()
                .copied()
                .filter(|&i| {
                    let f = &self.funcs[i];
                    f.crate_name == caller.crate_name
                        && f.module == caller.module
                        && f.self_type.is_none()
                })
                .collect();
            if !same_module.is_empty() {
                pool = same_module;
            } else {
                let same_crate: Vec<usize> = pool
                    .iter()
                    .copied()
                    .filter(|&i| self.funcs[i].crate_name == caller.crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    pool = same_crate;
                }
            }
        }
        pool.into_iter().map(|i| edge(Callee::Func(i))).collect()
    }

    /// Resolves an entry-point pattern (`crate::module::name`, where `name`
    /// may be `*`) to function indices. An empty result means the pattern
    /// no longer matches anything — the caller reports that as a finding so
    /// a rename cannot silently disable the analysis.
    pub fn resolve_entry(&self, pattern: &str) -> Vec<usize> {
        let parts: Vec<&str> = pattern.split("::").collect();
        let [crate_name, module, name] = parts.as_slice() else {
            return Vec::new();
        };
        self.funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.crate_name == *crate_name
                    && f.module == *module
                    && (*name == "*" || f.name == *name)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the graph as GraphViz DOT. Entry functions are boxed, ⊥ is a
    /// double circle, and functions with intrinsic panic sites are shaded.
    pub fn to_dot(&self, entries: &[usize]) -> String {
        let mut out =
            String::from("digraph lintkit_callgraph {\n  rankdir=LR;\n  node [fontsize=10];\n");
        out.push_str("  bottom [label=\"⊥\", shape=doublecircle];\n");
        for (i, f) in self.funcs.iter().enumerate() {
            let mut attrs = vec![format!("label=\"{}\"", f.path())];
            if entries.contains(&i) {
                attrs.push("shape=box".to_string());
            }
            if !f.panic_sites.is_empty() {
                attrs.push("style=filled".to_string());
                attrs.push("fillcolor=lightpink".to_string());
            }
            out.push_str(&format!("  n{} [{}];\n", i, attrs.join(", ")));
        }
        for (i, edges) in self.edges.iter().enumerate() {
            // One DOT edge per distinct target, not per call site.
            let mut seen = BTreeSet::new();
            for e in edges {
                let target = match e.callee {
                    Callee::Func(j) => format!("n{j}"),
                    Callee::Bottom => "bottom".to_string(),
                };
                if seen.insert(target.clone()) {
                    out.push_str(&format!("  n{i} -> {target};\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::collect;

    fn graph(files: &[(&str, &str, &str, &str)]) -> CallGraph {
        CallGraph::build(
            files
                .iter()
                .map(|(krate, module, path, src)| collect(krate, module, path, src))
                .collect(),
        )
    }

    fn edges_of(g: &CallGraph, path: &str) -> Vec<String> {
        let (i, _) = g
            .funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.path() == path)
            .expect("function in graph");
        g.edges[i]
            .iter()
            .map(|e| match e.callee {
                Callee::Func(j) => g.funcs[j].path(),
                Callee::Bottom => format!("⊥({})", e.name),
            })
            .collect()
    }

    #[test]
    fn cross_crate_path_call_resolves() {
        let g = graph(&[
            (
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn entry() { beta::helper(); }",
            ),
            (
                "beta",
                "lib",
                "crates/beta/src/lib.rs",
                "pub fn helper() {}",
            ),
        ]);
        assert_eq!(edges_of(&g, "alpha::lib::entry"), vec!["beta::lib::helper"]);
    }

    #[test]
    fn bare_call_prefers_same_module() {
        let g = graph(&[
            (
                "alpha",
                "a",
                "crates/alpha/src/a.rs",
                "pub fn entry() { helper(); }\nfn helper() {}",
            ),
            ("beta", "b", "crates/beta/src/b.rs", "pub fn helper() {}"),
        ]);
        assert_eq!(edges_of(&g, "alpha::a::entry"), vec!["alpha::a::helper"]);
    }

    #[test]
    fn trait_method_call_gets_bottom_edge() {
        let g = graph(&[(
            "alpha",
            "lib",
            "crates/alpha/src/lib.rs",
            "trait Server { fn handle(&self); }\n\
             struct S;\n\
             impl Server for S { fn handle(&self) {} }\n\
             pub fn entry(s: &dyn Server) { s.handle(); }",
        )]);
        let edges = edges_of(&g, "alpha::lib::entry");
        assert!(edges.contains(&"alpha::lib::handle".to_string()));
        assert!(edges.contains(&"⊥(handle)".to_string()));
    }

    #[test]
    fn inherent_method_call_has_no_bottom() {
        let g = graph(&[(
            "alpha",
            "lib",
            "crates/alpha/src/lib.rs",
            "struct S;\n\
             impl S { fn go(&self) {} }\n\
             pub fn entry(s: &S) { s.go(); }",
        )]);
        assert_eq!(edges_of(&g, "alpha::lib::entry"), vec!["alpha::lib::go"]);
    }

    #[test]
    fn external_calls_are_leaves() {
        let g = graph(&[(
            "alpha",
            "lib",
            "crates/alpha/src/lib.rs",
            "pub fn entry() { std::mem::drop(1); format(); }",
        )]);
        assert!(edges_of(&g, "alpha::lib::entry").is_empty());
    }

    #[test]
    fn type_qualified_call_narrows_to_impl() {
        let g = graph(&[(
            "alpha",
            "lib",
            "crates/alpha/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn new() -> A { A } }\n\
             impl B { fn new() -> B { B } }\n\
             pub fn entry() { A::new(); }",
        )]);
        let edges = edges_of(&g, "alpha::lib::entry");
        assert_eq!(edges.len(), 1);
        let target = g
            .funcs
            .iter()
            .find(|f| f.self_type.as_deref() == Some("A"))
            .map(|f| f.path());
        assert_eq!(edges[0], target.expect("A::new in graph"));
    }

    #[test]
    fn entry_patterns_resolve_with_wildcard() {
        let g = graph(&[(
            "quic",
            "probe",
            "crates/quic/src/probe.rs",
            "pub fn a() {}\npub fn b() {}",
        )]);
        assert_eq!(g.resolve_entry("quic::probe::a").len(), 1);
        assert_eq!(g.resolve_entry("quic::probe::*").len(), 2);
        assert!(g.resolve_entry("quic::probe::gone").is_empty());
    }

    #[test]
    fn dot_output_has_nodes_and_bottom() {
        let g = graph(&[(
            "alpha",
            "lib",
            "crates/alpha/src/lib.rs",
            "trait T { fn m(&self); }\npub fn entry(t: &dyn T) { t.m(); }",
        )]);
        let entries = g.resolve_entry("alpha::lib::entry");
        let dot = g.to_dot(&entries);
        assert!(dot.contains("digraph lintkit_callgraph"));
        assert!(dot.contains("alpha::lib::entry"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("-> bottom"));
    }
}
