//! On-disk incremental cache for the per-file lint pass.
//!
//! The cache maps each workspace-relative source path to the FNV-1a hash of
//! its contents plus the findings the per-file rules produced for it.  A warm
//! run reuses the cached findings for every file whose hash is unchanged and
//! only re-lexes the rest; symbol collection for the call graph still runs on
//! every file, so interprocedural results never go stale.
//!
//! Invalidation is two-level:
//!
//! * **Per file** — the content hash differs, so only that file re-runs.
//! * **Whole cache** — the *fingerprint* differs.  The fingerprint hashes the
//!   schema version, the full rule-name list, and every config knob that can
//!   change per-file findings (strict-index files, strict-arith files, skip
//!   lists).  Bumping a rule or editing the config discards the cache rather
//!   than serving findings computed under different semantics.
//!
//! The file lives at `target/lintkit-cache.json` and is rewritten atomically
//! (temp file + rename) so a crashed run can never leave a torn cache.

use crate::baseline::{json_string, parse_json, Json};
use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::path::Path;

/// Format version; bump when the serialized shape or finding semantics
/// change in a way the fingerprint's rule list does not capture.
const SCHEMA_VERSION: &str = "1";

/// One cached file: the content hash it was computed from and the findings
/// the per-file pass emitted.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    pub hash: u64,
    pub findings: Vec<Finding>,
}

/// The whole cache file, keyed by workspace-relative path.
#[derive(Debug, Default)]
pub struct CacheFile {
    pub fingerprint: u64,
    pub files: BTreeMap<String, CacheEntry>,
}

/// FNV-1a 64-bit over raw bytes — dependency-free and stable across runs
/// and platforms, which is all the cache key needs (this is an integrity
/// check against accidental staleness, not an adversarial digest).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash_str(h: &mut u64, s: &str) {
    *h = content_hash_continue(*h, s.as_bytes());
    // Separator so ["ab","c"] and ["a","bc"] fingerprint differently.
    *h = content_hash_continue(*h, &[0xff]);
}

fn content_hash_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of everything besides file contents that can change per-file
/// findings: schema version, the active rule set, and the config lists the
/// per-file pass consults.
pub fn fingerprint(config_facets: &[&[String]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    hash_str(&mut h, SCHEMA_VERSION);
    for rule in Rule::ALL {
        hash_str(&mut h, rule.name());
    }
    for facet in config_facets {
        // Facet boundary marker so list membership cannot migrate between
        // facets without changing the fingerprint.
        hash_str(&mut h, "\u{1}");
        for item in *facet {
            hash_str(&mut h, item);
        }
    }
    h
}

/// Loads the cache from `path`.  Any failure — missing file, parse error,
/// unknown rule name, malformed entry — yields an empty cache: the cost is
/// one cold run, never a wrong answer.
pub fn load(path: &Path) -> CacheFile {
    let Ok(text) = std::fs::read_to_string(path) else {
        return CacheFile::default();
    };
    parse_cache(&text).unwrap_or_default()
}

fn parse_cache(text: &str) -> Option<CacheFile> {
    let Json::Object(top) = parse_json(text).ok()? else {
        return None;
    };
    let get = |k: &str| top.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let Json::String(fp) = get("fingerprint")? else {
        return None;
    };
    let fingerprint = u64::from_str_radix(fp, 16).ok()?;
    let Json::Object(files) = get("files")? else {
        return None;
    };
    let mut out = CacheFile {
        fingerprint,
        files: BTreeMap::new(),
    };
    for (rel, entry) in files {
        let Json::Object(fields) = entry else {
            return None;
        };
        let field = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let Json::String(hash) = field("hash")? else {
            return None;
        };
        let hash = u64::from_str_radix(hash, 16).ok()?;
        let Json::Array(raw) = field("findings")? else {
            return None;
        };
        let mut findings = Vec::with_capacity(raw.len());
        for f in raw {
            let Json::Object(ff) = f else {
                return None;
            };
            let fget = |k: &str| ff.iter().find(|(key, _)| key == k).map(|(_, v)| v);
            let Json::String(rule) = fget("rule")? else {
                return None;
            };
            // An unknown rule name means the cache was written by a
            // different lintkit — treat the whole file as stale.
            let rule = Rule::from_name(rule)?;
            let Json::String(file) = fget("file")? else {
                return None;
            };
            let Json::Number(line) = fget("line")? else {
                return None;
            };
            let Json::String(message) = fget("message")? else {
                return None;
            };
            findings.push(Finding {
                rule,
                file: file.clone(),
                line: *line as u32,
                message: message.clone(),
            });
        }
        out.files.insert(rel.clone(), CacheEntry { hash, findings });
    }
    Some(out)
}

/// Serializes and atomically replaces the cache at `path`.  Errors are
/// swallowed: a cache that fails to persist costs the next run a cold pass,
/// which is not worth failing the lint over.
pub fn store(path: &Path, cache: &CacheFile) {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"fingerprint\": ");
    out.push_str(&json_string(&format!("{:016x}", cache.fingerprint)));
    out.push_str(",\n  \"files\": {");
    let mut first_file = true;
    for (rel, entry) in &cache.files {
        if !first_file {
            out.push(',');
        }
        first_file = false;
        out.push_str("\n    ");
        out.push_str(&json_string(rel));
        out.push_str(": {\"hash\": ");
        out.push_str(&json_string(&format!("{:016x}", entry.hash)));
        out.push_str(", \"findings\": [");
        let mut first = true;
        for f in &entry.findings {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!(
                "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(f.rule.name()),
                json_string(&f.file),
                f.line,
                json_string(&f.message)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  }\n}\n");

    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, out).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CacheFile {
        let mut files = BTreeMap::new();
        files.insert(
            "crates/net/src/lpm.rs".to_string(),
            CacheEntry {
                hash: content_hash(b"fn main() {}"),
                findings: vec![Finding {
                    rule: Rule::NarrowingCast,
                    file: "crates/net/src/lpm.rs".to_string(),
                    line: 7,
                    message: "`as u32` truncates \"quoted\" bits".to_string(),
                }],
            },
        );
        files.insert(
            "crates/dns/src/wire.rs".to_string(),
            CacheEntry {
                hash: 42,
                findings: Vec::new(),
            },
        );
        CacheFile {
            fingerprint: fingerprint(&[]),
            files,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("lintkit-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let cache = sample();
        store(&path, &cache);
        let back = load(&path);
        assert_eq!(back.fingerprint, cache.fingerprint);
        assert_eq!(back.files, cache.files);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_corrupt_cache_is_empty() {
        let empty = load(Path::new("/nonexistent/lintkit-cache.json"));
        assert!(empty.files.is_empty());
        assert!(parse_cache("{not json").is_none());
        assert!(parse_cache("{\"fingerprint\": \"zz\", \"files\": {}}").is_none());
    }

    #[test]
    fn unknown_rule_name_discards_cache() {
        let text = r#"{"fingerprint": "00000000000000ff", "files": {
            "a.rs": {"hash": "01", "findings": [
                {"rule": "rule-from-the-future", "file": "a.rs", "line": 1, "message": "m"}
            ]}}}"#;
        assert!(parse_cache(text).is_none());
    }

    #[test]
    fn fingerprint_separates_facets() {
        let a = vec!["x".to_string()];
        let b = vec!["x".to_string()];
        let empty: Vec<String> = Vec::new();
        // Same items in different facets must not collide.
        assert_ne!(
            fingerprint(&[&a, &empty]),
            fingerprint(&[&empty, &b]),
            "facet boundaries must be part of the key"
        );
        assert_ne!(fingerprint(&[&a]), fingerprint(&[&empty]));
    }

    #[test]
    fn content_hash_is_fnv1a() {
        // Known FNV-1a vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
