//! The interprocedural rules, run over [`crate::graph::CallGraph`]:
//!
//! * **panic-reachability** — no panic site (and no ⊥ edge) may be
//!   transitively reachable from a declared hostile-input entry point.
//!   Findings carry the shortest call path from the entry so the report is
//!   actionable (`scan_subnets → query_subnet → ⊥(handle_query_into)`).
//! * **lock-order** — the derived lock-acquisition-order graph must be
//!   acyclic. An order edge `A → B` exists when `B` is acquired (directly
//!   or via a callee) while `A` is held; guards are conservatively assumed
//!   held until the end of the acquiring function.
//! * **determinism-taint** — no wall-clock/OS-randomness source may be
//!   reachable from a function whose signature takes a `SimClock`/`SimRng`.
//!   Unlike panic-reachability, ⊥ does not propagate taint: the rule
//!   checks *known* sources, so dynamic dispatch to unseen code is out of
//!   scope (the clippy.toml syntactic bans still cover every workspace
//!   file directly).
//!
//! Findings deduplicate by `(rule, file, line)`, keeping the first
//! (shortest-path) witness, and come back in deterministic order.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::graph::{CallGraph, Callee};
use crate::rules::{Finding, Rule};
use crate::symbols::Event;

/// Runs all seven interprocedural rules (plus the allocation-reachability
/// pass from [`crate::resource`], which shares this module's BFS shape).
pub fn check_graph(
    graph: &CallGraph,
    entry_points: &[String],
    hot_paths: &[String],
    warm_paths: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    panic_reachability(graph, entry_points, &mut findings);
    lock_order(graph, &mut findings);
    determinism_taint(graph, &mut findings);
    crate::order::map_iter_order(graph, &mut findings);
    rng_fork_order(graph, &mut findings);
    shard_state_escape(graph, &mut findings);
    crate::resource::alloc_in_hot_path(graph, hot_paths, warm_paths, &mut findings);
    findings
}

/// **rng-fork-order** — within code reachable from the sharded engine
/// (`engine::sched::*` plus every `ShardModel` impl), the order-dependent
/// `SimRng::fork` is forbidden: the stream it yields depends on *when* the
/// fork happens relative to its siblings, which worker interleaving must
/// not influence. `fork_indexed(label, stable_id)` derives an order-free
/// stream family instead. The entry set is structural (trait-impl
/// detection by name), so a workspace without an engine crate simply has
/// fewer entries.
fn rng_fork_order(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let mut entries: Vec<usize> = graph.resolve_entry("engine::sched::*");
    for (i, f) in graph.funcs.iter().enumerate() {
        if f.impl_trait.as_deref() == Some("ShardModel") {
            entries.push(i);
        }
    }
    entries.sort_unstable();
    entries.dedup();
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for entry in entries {
        let parent = bfs(graph, entry);
        let mut reached: Vec<usize> = parent.keys().copied().collect();
        reached.sort_unstable();
        for i in reached {
            let f = &graph.funcs[i];
            for site in &f.fork_sites {
                if seen.insert((f.file.clone(), site.line)) {
                    findings.push(Finding {
                        rule: Rule::RngForkOrder,
                        file: f.file.clone(),
                        line: site.line,
                        message: format!(
                            "order-dependent SimRng::fork reachable from engine entry `{}` \
                             via {} — use fork_indexed keyed by a stable id",
                            graph.funcs[entry].path(),
                            path_to(graph, &parent, i),
                        ),
                    });
                }
            }
        }
    }
}

/// **shard-state-escape** — functions defined directly inside a
/// `ShardModel` impl block must not touch shared mutable aliases
/// (`Mutex`/`RwLock`, `OnceLock`/`OnceCell`/`LazyLock`, atomics,
/// `thread_local!`, `static mut`, `.lock()`): a shard observing state
/// another shard wrote breaks worker-count unobservability. Cross-shard
/// effects go through `ShardCtx` sends only. The check is deliberately
/// direct (not transitive): helpers shared with serial code may lock, but
/// the shard entry surface itself must stay alias-free.
fn shard_state_escape(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for f in &graph.funcs {
        if f.impl_trait.as_deref() != Some("ShardModel") {
            continue;
        }
        for site in &f.shared_sites {
            if seen.insert((f.file.clone(), site.line)) {
                findings.push(Finding {
                    rule: Rule::ShardStateEscape,
                    file: f.file.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` touches shared mutable state (`{}`) inside a ShardModel \
                         impl — route cross-shard effects through ShardCtx sends",
                        f.path(),
                        site.what,
                    ),
                });
            }
        }
    }
}

/// Breadth-first reachability from `start`, returning for every reached
/// function the index of the function it was first reached from (`start`
/// maps to itself).
fn bfs(graph: &CallGraph, start: usize) -> HashMap<usize, usize> {
    let mut parent = HashMap::new();
    parent.insert(start, start);
    let mut queue = VecDeque::from([start]);
    while let Some(i) = queue.pop_front() {
        for e in &graph.edges[i] {
            if let Callee::Func(j) = e.callee {
                if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(j) {
                    slot.insert(i);
                    queue.push_back(j);
                }
            }
        }
    }
    parent
}

/// The call path `entry → … → target`, rendered with function names.
pub(crate) fn path_to(graph: &CallGraph, parent: &HashMap<usize, usize>, target: usize) -> String {
    let mut chain = vec![target];
    let mut cur = target;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
        .iter()
        .map(|&i| graph.funcs[i].name.as_str())
        .collect::<Vec<_>>()
        .join(" → ")
}

fn panic_reachability(graph: &CallGraph, entry_points: &[String], findings: &mut Vec<Finding>) {
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for pattern in entry_points {
        let entries = graph.resolve_entry(pattern);
        if entries.is_empty() {
            findings.push(Finding {
                rule: Rule::PanicReachability,
                file: "lintkit.config".to_string(),
                line: 0,
                message: format!(
                    "entry point `{pattern}` matches no workspace function — \
                     update the entry list so the analysis stays live"
                ),
            });
            continue;
        }
        for entry in entries {
            let parent = bfs(graph, entry);
            // Deterministic order: visit reached functions by index.
            let mut reached: Vec<usize> = parent.keys().copied().collect();
            reached.sort_unstable();
            for i in reached {
                let f = &graph.funcs[i];
                for site in &f.panic_sites {
                    if seen.insert((f.file.clone(), site.line)) {
                        findings.push(Finding {
                            rule: Rule::PanicReachability,
                            file: f.file.clone(),
                            line: site.line,
                            message: format!(
                                "{} reachable from entry `{}` via {}",
                                site.what,
                                graph.funcs[entry].path(),
                                path_to(graph, &parent, i),
                            ),
                        });
                    }
                }
                for e in &graph.edges[i] {
                    if e.callee == Callee::Bottom && seen.insert((f.file.clone(), e.line)) {
                        findings.push(Finding {
                            rule: Rule::PanicReachability,
                            file: f.file.clone(),
                            line: e.line,
                            message: format!(
                                "dynamic call `.{}()` may reach unanalyzed code (⊥) \
                                 from entry `{}` via {}",
                                e.name,
                                graph.funcs[entry].path(),
                                path_to(graph, &parent, i),
                            ),
                        });
                    }
                }
            }
        }
    }
}

fn determinism_taint(graph: &CallGraph, findings: &mut Vec<Finding>) {
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for (p, protected) in graph.funcs.iter().enumerate() {
        if !protected.takes_sim_types {
            continue;
        }
        let parent = bfs(graph, p);
        let mut reached: Vec<usize> = parent.keys().copied().collect();
        reached.sort_unstable();
        for i in reached {
            let f = &graph.funcs[i];
            for site in &f.taint_sites {
                if seen.insert((f.file.clone(), site.line)) {
                    findings.push(Finding {
                        rule: Rule::DeterminismTaint,
                        file: f.file.clone(),
                        line: site.line,
                        message: format!(
                            "{} reachable from SimClock/SimRng-driven `{}` via {} — \
                             route time/randomness through the simulation types",
                            site.what,
                            protected.path(),
                            path_to(graph, &parent, i),
                        ),
                    });
                }
            }
        }
    }
}

/// One edge of the derived lock-order graph: `B` acquired while `A` held.
#[derive(Debug, Clone)]
struct OrderSite {
    file: String,
    line: u32,
}

fn lock_order(graph: &CallGraph, findings: &mut Vec<Finding>) {
    // Transitive lock sets: which locks can each function acquire, itself
    // or through its callees (⊥ contributes nothing — an unknown impl
    // cannot reach workspace-private lock fields).
    let n = graph.funcs.len();
    let mut trans: Vec<BTreeSet<String>> = graph
        .funcs
        .iter()
        .map(|f| {
            f.events
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire { lock, .. } => Some(lock.clone()),
                    Event::Call(_) => None,
                })
                .collect()
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for e in &graph.edges[i] {
                if let Callee::Func(j) = e.callee {
                    if j == i {
                        continue;
                    }
                    let add: Vec<String> = trans[j].difference(&trans[i]).cloned().collect();
                    if !add.is_empty() {
                        trans[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
    }

    // Order edges, first witness site wins (BTreeMap for determinism).
    let mut order: BTreeMap<(String, String), OrderSite> = BTreeMap::new();
    for (i, f) in graph.funcs.iter().enumerate() {
        let mut held: Vec<String> = Vec::new();
        // Pair body events with resolved call edges by matching lines: the
        // events list interleaves acquisitions and calls in source order.
        for ev in &f.events {
            match ev {
                Event::Acquire { lock, line } => {
                    for a in &held {
                        if a != lock {
                            order.entry((a.clone(), lock.clone())).or_insert(OrderSite {
                                file: f.file.clone(),
                                line: *line,
                            });
                        }
                    }
                    if !held.contains(lock) {
                        held.push(lock.clone());
                    }
                }
                Event::Call(call) => {
                    if held.is_empty() {
                        continue;
                    }
                    for e in graph.edges[i]
                        .iter()
                        .filter(|e| e.line == call.line && e.name == call.name)
                    {
                        if let Callee::Func(j) = e.callee {
                            for b in &trans[j] {
                                for a in &held {
                                    if a != b {
                                        order.entry((a.clone(), b.clone())).or_insert(OrderSite {
                                            file: f.file.clone(),
                                            line: call.line,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the order graph.
    let nodes: BTreeSet<String> = order
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect();
    let succ: BTreeMap<&String, Vec<&String>> = nodes
        .iter()
        .map(|a| {
            (
                a,
                order
                    .keys()
                    .filter(|(x, _)| x == a)
                    .map(|(_, b)| b)
                    .collect(),
            )
        })
        .collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &nodes {
        // DFS from each node, looking for a path back to `start`.
        let mut stack = vec![(start, vec![start.clone()])];
        let mut visited: BTreeSet<&String> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in succ.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                if next == start {
                    let mut cycle = path.clone();
                    // Normalize: rotate so the smallest lock leads, so each
                    // cycle is reported exactly once.
                    let min = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.as_str())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min);
                    if reported.insert(cycle.clone()) {
                        report_cycle(&cycle, &order, findings);
                    }
                } else if !path.contains(next) && visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next.clone());
                    stack.push((next, p));
                }
            }
        }
    }
}

/// Emits one finding for a normalized lock cycle, anchored at the
/// acquisition site of the first edge (smallest lock name first).
fn report_cycle(
    cycle: &[String],
    order: &BTreeMap<(String, String), OrderSite>,
    findings: &mut Vec<Finding>,
) {
    let mut legs = Vec::new();
    let mut anchor: Option<&OrderSite> = None;
    for (k, a) in cycle.iter().enumerate() {
        let b = &cycle[(k + 1) % cycle.len()];
        if let Some(site) = order.get(&(a.clone(), b.clone())) {
            if anchor.is_none() {
                anchor = Some(site);
            }
            legs.push(format!("{} → {} ({}:{})", a, b, site.file, site.line));
        }
    }
    let Some(site) = anchor else { return };
    findings.push(Finding {
        rule: Rule::LockOrder,
        file: site.file.clone(),
        line: site.line,
        message: format!("lock-order cycle: {}", legs.join(", ")),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::symbols::collect;

    fn run(files: &[(&str, &str, &str, &str)], entries: &[&str]) -> Vec<Finding> {
        let graph = CallGraph::build(
            files
                .iter()
                .map(|(krate, module, path, src)| collect(krate, module, path, src))
                .collect(),
        );
        check_graph(
            &graph,
            &entries.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &[],
            &[],
        )
    }

    #[test]
    fn panic_behind_indirection_is_reached() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn entry(x: Option<u8>) { mid(x); }\n\
                 fn mid(x: Option<u8>) { deep(x); }\n\
                 fn deep(x: Option<u8>) { x.unwrap(); }",
            )],
            &["alpha::lib::entry"],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PanicReachability);
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("entry → mid → deep"));
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn entry() {}\n\
                 pub fn other(x: Option<u8>) { x.unwrap(); }",
            )],
            &["alpha::lib::entry"],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn missing_entry_is_a_config_finding() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn entry() {}",
            )],
            &["alpha::lib::renamed"],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "lintkit.config");
        assert!(f[0].message.contains("alpha::lib::renamed"));
    }

    #[test]
    fn bottom_edge_is_flagged_from_entry() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "trait T { fn m(&self); }\n\
                 pub fn entry(t: &dyn T) { t.m(); }",
            )],
            &["alpha::lib::entry"],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("⊥"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn taint_reaches_through_calls() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn sim(clock: &mut SimClock) { helper(); }\n\
                 fn helper() { let t = SystemTime::now(); }",
            )],
            &[],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::DeterminismTaint);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("alpha::lib::sim"));
    }

    #[test]
    fn taint_in_unprotected_code_is_fine() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "pub fn wallclock() { let t = SystemTime::now(); }",
            )],
            &[],
        );
        assert!(f.is_empty());
    }

    #[test]
    fn lock_order_cycle_detected_with_exact_site() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                 impl S {\n\
                 fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                 fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
                 }",
            )],
            &[],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::LockOrder);
        assert_eq!(f[0].file, "crates/alpha/src/lib.rs");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("S.a → S.b"));
        assert!(f[0].message.contains("S.b → S.a"));
    }

    #[test]
    fn lock_order_cycle_through_callee() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                 impl S {\n\
                 fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
                 fn inner(&self) { let h = self.b.lock(); }\n\
                 fn reversed(&self) { let h = self.b.lock(); let g = self.a.lock(); }\n\
                 }",
            )],
            &[],
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::LockOrder);
        // The A→B leg comes from the call site in `outer`.
        assert!(f[0]
            .message
            .contains("S.a → S.b (crates/alpha/src/lib.rs:3)"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let f = run(
            &[(
                "alpha",
                "lib",
                "crates/alpha/src/lib.rs",
                "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                 impl S {\n\
                 fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                 fn two(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
                 }",
            )],
            &[],
        );
        assert!(f.is_empty());
    }
}
