//! Hand-rolled SARIF v2.1.0 export of the lint findings.
//!
//! SARIF (Static Analysis Results Interchange Format) is the
//! OASIS-standard envelope that code-hosting CI surfaces ingest to
//! annotate pull requests with analyzer findings. The export mirrors the
//! `--json` report in [`crate::baseline::report_json`]: one `result` per
//! finding, anchored to the workspace-relative file and 1-indexed line.
//!
//! Like the rest of lintkit the writer is dependency-free — the document
//! is small and append-only, so a string builder over
//! [`crate::baseline::json_string`] (the escape-correct literal writer)
//! is all it takes. Shape kept to the minimal valid core of §3 of the
//! spec:
//!
//! * `runs[0].tool.driver` names the analyzer and carries the full rule
//!   table (every [`Rule`] with its one-line description), so viewers can
//!   render rule help without out-of-band metadata,
//! * each `result` carries `ruleId`, `ruleIndex` (into that table),
//!   `level: "error"` (the gate treats every unbaselined finding as
//!   fatal), `message.text`, and one `physicalLocation` with
//!   `artifactLocation.uri` + `region.startLine`.
//!
//! `startLine` is clamped to ≥ 1: SARIF regions are 1-indexed, and a few
//! whole-file findings (vendor-manifest drift) anchor at line 0
//! internally.

use std::fmt::Write as _;

use crate::baseline::json_string;
use crate::rules::{Finding, Rule};

/// Every rule lintkit defines, in the stable order used for
/// `runs[0].tool.driver.rules` (and therefore for `ruleIndex`).
pub const RULES: [Rule; 15] = Rule::ALL;

/// One-line rule help shown by SARIF viewers next to each result.
fn description(rule: Rule) -> &'static str {
    match rule {
        Rule::NoPanic => "no unwrap/expect/panic in library code",
        Rule::NoIndex => "no slice indexing on hostile-input parse paths",
        Rule::NoPrint => "no stdout/stderr printing in library code",
        Rule::ForbidUnsafe => "crate roots must carry #![forbid(unsafe_code)]",
        Rule::AllowNeedsReason => "lint suppressions must carry a justification",
        Rule::VendorManifest => "vendored shims must match the public-API manifest",
        Rule::PanicReachability => "no panic site reachable from a hostile-input entry point",
        Rule::LockOrder => "the lock acquisition-order graph must be acyclic",
        Rule::DeterminismTaint => "wall-clock and OS randomness unreachable from simulated code",
        Rule::MapIterOrder => {
            "unordered-container iteration must pass a sorting boundary before \
             escaping a function's output"
        }
        Rule::RngForkOrder => {
            "engine-reachable code must use fork_indexed, not order-dependent \
             SimRng::fork"
        }
        Rule::ShardStateEscape => {
            "ShardModel impls must not touch shared mutable state — cross-shard \
             effects go through ShardCtx sends"
        }
        Rule::AllocInHotPath => {
            "no heap allocation reachable from a steady-state hot entry point \
             outside declared warm-path boundaries"
        }
        Rule::NarrowingCast => {
            "no lossy `as` cast in strict-arithmetic files — use try_from or a \
             checked narrowing"
        }
        Rule::UncheckedArith => {
            "no unguarded +/-/*/<< on size/index-typed operands in \
             strict-arithmetic files"
        }
    }
}

/// Renders the findings as a complete SARIF v2.1.0 log (one run).
pub fn report_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \
         \"name\": \"lintkit\",\n          \
         \"informationUri\": \"https://example.invalid/lintkit\",\n          \
         \"rules\": [",
    );
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }} }}",
            json_string(rule.name()),
            json_string(description(*rule))
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = RULES.iter().position(|r| *r == f.rule).unwrap_or(0);
        let _ = write!(
            out,
            "\n        {{\n          \"ruleId\": {},\n          \
             \"ruleIndex\": {},\n          \"level\": \"error\",\n          \
             \"message\": {{ \"text\": {} }},\n          \"locations\": [\n            \
             {{ \"physicalLocation\": {{ \"artifactLocation\": {{ \"uri\": {} }}, \
             \"region\": {{ \"startLine\": {} }} }} }}\n          ]\n        }}",
            json_string(f.rule.name()),
            rule_index,
            json_string(&f.message),
            json_string(&f.file),
            f.line.max(1)
        );
    }
    if findings.is_empty() {
        out.push_str("]\n    }\n  ]\n}\n");
    } else {
        out.push_str("\n      ]\n    }\n  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: u32) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: "a \"quoted\" message".to_string(),
        }
    }

    #[test]
    fn empty_log_is_well_formed() {
        let text = report_sarif(&[]);
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains("\"results\": []"));
        // Every rule is declared even when nothing fired.
        for rule in RULES {
            assert!(text.contains(&format!("\"id\": \"{}\"", rule.name())));
        }
    }

    #[test]
    fn one_result_per_finding_with_stable_rule_index() {
        let findings = vec![
            finding(Rule::MapIterOrder, "crates/a/src/lib.rs", 7),
            finding(Rule::ShardStateEscape, "crates/b/src/lib.rs", 3),
        ];
        let text = report_sarif(&findings);
        assert_eq!(text.matches("\"ruleId\"").count(), 2);
        assert!(text.contains("\"ruleId\": \"map-iter-order\""));
        assert!(text.contains(&format!(
            "\"ruleIndex\": {}",
            RULES
                .iter()
                .position(|r| *r == Rule::MapIterOrder)
                .unwrap_or(0)
        )));
        assert!(text.contains("\"uri\": \"crates/a/src/lib.rs\""));
        assert!(text.contains("\"startLine\": 7"));
        assert!(text.contains("\\\"quoted\\\""));
    }

    #[test]
    fn line_zero_clamps_to_one() {
        let text = report_sarif(&[finding(Rule::VendorManifest, "vendor/x.rs", 0)]);
        assert!(text.contains("\"startLine\": 1"));
    }
}
