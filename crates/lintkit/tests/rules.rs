//! Fixture tests: one known violation per rule, asserting the exact
//! rule, file, and line the analyzer reports — the acceptance check that
//! flipping any fixture violation changes the verdict.

use std::fs;
use std::path::PathBuf;

use lintkit::{check_file, manifest, FileContext, Finding, Rule};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The strictest context: crate root, hostile-input indexing rules, no
/// printing.
fn strict() -> FileContext {
    FileContext {
        is_crate_root: true,
        strict_index: true,
        strict_arith: true,
        allow_print: false,
    }
}

fn lint(name: &str, ctx: FileContext) -> Vec<Finding> {
    check_file(&format!("fixtures/{name}"), &fixture(name), ctx)
}

#[test]
fn no_panic_fixture_flags_rule_file_line() {
    let findings = lint(
        "no_panic.rs",
        FileContext {
            is_crate_root: false,
            ..strict()
        },
    );
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, Rule::NoPanic);
    assert_eq!(findings[0].file, "fixtures/no_panic.rs");
    assert_eq!(findings[0].line, 5);
    assert_eq!(
        findings[0].to_string(),
        "no-panic: fixtures/no_panic.rs:5: .unwrap() can panic on malformed input"
    );
}

#[test]
fn no_index_fixture_flags_rule_file_line() {
    let findings = lint(
        "no_index.rs",
        FileContext {
            is_crate_root: false,
            ..strict()
        },
    );
    assert_eq!(
        findings.len(),
        1,
        "range slicing must not be flagged: {findings:?}"
    );
    assert_eq!(findings[0].rule, Rule::NoIndex);
    assert_eq!(findings[0].file, "fixtures/no_index.rs");
    assert_eq!(findings[0].line, 5);
}

#[test]
fn no_index_is_opt_in_per_file() {
    let findings = lint(
        "no_index.rs",
        FileContext {
            is_crate_root: false,
            strict_index: false,
            strict_arith: false,
            allow_print: false,
        },
    );
    assert!(
        findings.is_empty(),
        "non-strict files may index: {findings:?}"
    );
}

#[test]
fn no_print_fixture_flags_rule_file_line() {
    let findings = lint(
        "no_print.rs",
        FileContext {
            is_crate_root: false,
            ..strict()
        },
    );
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, Rule::NoPrint);
    assert_eq!(findings[0].file, "fixtures/no_print.rs");
    assert_eq!(findings[0].line, 5);
}

#[test]
fn missing_forbid_fixture_flags_crate_root() {
    let findings = lint("missing_forbid.rs", strict());
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, Rule::ForbidUnsafe);
    assert_eq!(findings[0].file, "fixtures/missing_forbid.rs");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn reasonless_allow_is_a_finding_and_suppresses_nothing() {
    let findings = lint(
        "allow_without_reason.rs",
        FileContext {
            is_crate_root: false,
            ..strict()
        },
    );
    assert_eq!(findings.len(), 2, "findings: {findings:?}");
    let reason = findings
        .iter()
        .find(|f| f.rule == Rule::AllowNeedsReason)
        .expect("allow-needs-reason finding");
    assert_eq!(reason.line, 5);
    let panic = findings
        .iter()
        .find(|f| f.rule == Rule::NoPanic)
        .expect("the unwrap stays flagged");
    assert_eq!(panic.line, 6);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = lint("clean.rs", strict());
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
}

#[test]
fn vendor_manifest_drift_is_flagged_both_ways() {
    // A miniature vendor tree: one shim with one public fn, and a manifest
    // that records a different API — drift in both directions.
    let dir = std::env::temp_dir().join(format!("lintkit-manifest-{}", std::process::id()));
    let src = dir.join("shim/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(src.join("lib.rs"), "pub fn present() {}\n").unwrap();
    fs::write(
        dir.join(manifest::MANIFEST_FILE),
        "shim/src/lib.rs: fn recorded_but_gone\n",
    )
    .unwrap();

    let findings = manifest::check(&dir).unwrap();
    fs::remove_dir_all(&dir).ok();

    assert_eq!(findings.len(), 2, "findings: {findings:?}");
    assert!(findings.iter().all(|f| f.rule == Rule::VendorManifest));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("gained `shim/src/lib.rs: fn present`")),
        "gained-item drift reported: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f
            .message
            .contains("lost `shim/src/lib.rs: fn recorded_but_gone`")),
        "lost-item drift reported: {findings:?}"
    );
}

#[test]
fn missing_vendor_manifest_is_flagged() {
    let dir = std::env::temp_dir().join(format!("lintkit-nomanifest-{}", std::process::id()));
    let src = dir.join("shim/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(src.join("lib.rs"), "pub fn present() {}\n").unwrap();

    let findings = manifest::check(&dir).unwrap();
    fs::remove_dir_all(&dir).ok();

    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].rule, Rule::VendorManifest);
    assert!(findings[0].message.contains("manifest missing"));
}
