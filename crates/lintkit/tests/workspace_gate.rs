//! Tier-1 gate: the same analysis `cargo run -p xtask -- lint` performs,
//! run over the real workspace from `cargo test`. Any unsuppressed panic
//! path, stray print, missing `#![forbid(unsafe_code)]`, or vendored-shim
//! API drift fails the build — not just the lint step.

use std::path::PathBuf;

use lintkit::{lint_workspace, Config};

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let config = Config::for_workspace(&root);
    let findings = lint_workspace(&config).expect("lint pass runs");
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
