//! Tier-1 gate: the same analysis `cargo run -p xtask -- lint` performs,
//! run over the real workspace from `cargo test`. Any unsuppressed panic
//! path, stray print, missing `#![forbid(unsafe_code)]`, vendored-shim
//! API drift, or baseline drift fails the build — not just the lint step.
//!
//! Baseline semantics mirror the xtask: every finding must be covered by
//! `lint-baseline.json`, and every baseline entry must still correspond to
//! a live finding. Fixing a baselined site without regenerating the
//! baseline (`cargo run -p xtask -- lint --update-baseline`) fails here
//! too — the ratchet only ever tightens.

use std::path::PathBuf;

use lintkit::{baseline, lint_workspace, Config};

#[test]
fn workspace_is_lint_clean_modulo_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let config = Config::for_workspace(&root);
    let findings = lint_workspace(&config).expect("lint pass runs");
    let baseline_text =
        std::fs::read_to_string(root.join(baseline::BASELINE_FILE)).unwrap_or_default();
    let entries = baseline::parse(&baseline_text).expect("baseline parses");
    let outcome = baseline::apply(&findings, &entries);
    assert!(
        outcome.unbaselined.is_empty(),
        "unbaselined workspace lint findings:\n{}",
        outcome
            .unbaselined
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "stale baseline entries (fixed findings still listed — regenerate \
         with `cargo run -p xtask -- lint --update-baseline`):\n{}",
        outcome
            .stale
            .iter()
            .map(|e| format!("  {}:{}: {}", e.file, e.line, e.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_holds_only_dynamic_dispatch_findings() {
    // The checked-in baseline is reserved for ⊥ (dynamic-dispatch) edges the
    // conservative graph cannot resolve; genuine panic sites must be fixed
    // in code, never baselined. In particular none of the determinism-
    // soundness findings (map-iter-order / rng-fork-order /
    // shard-state-escape) may ever land here: those are fixed in code or
    // carry a reasoned allow at the site.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let baseline_text =
        std::fs::read_to_string(root.join(baseline::BASELINE_FILE)).unwrap_or_default();
    let entries = baseline::parse(&baseline_text).expect("baseline parses");
    for e in &entries {
        assert_eq!(
            e.rule, "panic-reachability",
            "only panic-reachability ⊥ findings may be baselined, got {}:{}: {}",
            e.file, e.line, e.rule
        );
    }
}

#[test]
fn determinism_soundness_rules_are_active() {
    // The three dataflow rules must be wired into the analysis — parseable
    // by name (so allow comments and baselines can reference them) and
    // actually firing on seeded violations. A refactor that drops one from
    // `check_graph` fails here, not silently.
    for name in ["map-iter-order", "rng-fork-order", "shard-state-escape"] {
        assert!(
            lintkit::Rule::from_name(name).is_some(),
            "rule `{name}` no longer parses"
        );
    }
    let fixture_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph_ws");
    let config = Config {
        root: fixture_root,
        strict_index: Vec::new(),
        strict_arith: Vec::new(),
        skip_crates: Vec::new(),
        entry_points: vec!["core::ecs_scan::scan_subnets".to_string()],
        hot_paths: Vec::new(),
        warm_paths: Vec::new(),
        graph_skip_crates: Vec::new(),
        cache: None,
    };
    let findings = lint_workspace(&config).expect("fixture workspace lints");
    for name in ["map-iter-order", "rng-fork-order", "shard-state-escape"] {
        assert!(
            findings.iter().any(|f| f.rule.name() == name),
            "rule `{name}` produced no finding on its seeded fixture \
             violation — is it still wired into check_graph?"
        );
    }
}

#[test]
fn resource_soundness_rules_are_active() {
    // Same liveness contract for the resource rules: parseable by name and
    // firing on the seeded fixture violations when the config wires the
    // strict-arith file and hot/warm boundaries in.
    for name in ["alloc-in-hot-path", "narrowing-cast", "unchecked-arith"] {
        assert!(
            lintkit::Rule::from_name(name).is_some(),
            "rule `{name}` no longer parses"
        );
    }
    let fixture_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph_ws");
    let config = Config {
        root: fixture_root,
        strict_index: Vec::new(),
        strict_arith: vec!["crates/hot/src/fastpath.rs".to_string()],
        skip_crates: Vec::new(),
        entry_points: Vec::new(),
        hot_paths: vec!["hot::fastpath::drain_window".to_string()],
        warm_paths: vec!["hot::fastpath::setup_tables".to_string()],
        graph_skip_crates: Vec::new(),
        cache: None,
    };
    let findings = lint_workspace(&config).expect("fixture workspace lints");
    for name in ["alloc-in-hot-path", "narrowing-cast", "unchecked-arith"] {
        assert!(
            findings.iter().any(|f| f.rule.name() == name),
            "rule `{name}` produced no finding on its seeded fixture \
             violation — is it still wired into the analysis?"
        );
    }
}
