//! The incremental cache's correctness contract, proven over the on-disk
//! fixture workspace:
//!
//! * a warm (fully cached) run emits **byte-identical** findings to the
//!   cold run that populated the cache — same rules, same order, same
//!   messages — so caching can never change what the gate sees,
//! * editing a source file invalidates exactly that file's entry, and the
//!   next run picks up the edit's findings,
//! * a fingerprint change (different strict-file config) discards the
//!   whole cache rather than serving findings computed under different
//!   rule semantics.

use std::fs;
use std::path::{Path, PathBuf};

use lintkit::{analyze_workspace, baseline, Config};

/// Copies the fixture workspace into a scratch dir so the stale-cache test
/// can edit sources without touching the checked-in fixtures.
fn scratch_workspace(tag: &str) -> PathBuf {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph_ws");
    let dst = std::env::temp_dir().join(format!(
        "lintkit-cache-determinism-{}-{tag}",
        std::process::id()
    ));
    if dst.exists() {
        fs::remove_dir_all(&dst).expect("clear stale scratch dir");
    }
    copy_tree(&src, &dst).expect("copy fixture workspace");
    dst
}

fn copy_tree(src: &Path, dst: &Path) -> std::io::Result<()> {
    fs::create_dir_all(dst)?;
    for entry in fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to)?;
        } else {
            fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn fixture_config(root: &Path) -> Config {
    Config {
        root: root.to_path_buf(),
        strict_index: Vec::new(),
        strict_arith: vec!["crates/hot/src/fastpath.rs".to_string()],
        skip_crates: Vec::new(),
        entry_points: vec!["core::ecs_scan::scan_subnets".to_string()],
        hot_paths: vec!["hot::fastpath::drain_window".to_string()],
        warm_paths: vec!["hot::fastpath::setup_tables".to_string()],
        graph_skip_crates: Vec::new(),
        cache: Some(root.join("lintkit-cache.json")),
    }
}

#[test]
fn warm_run_is_byte_identical_to_cold() {
    let root = scratch_workspace("identical");
    let config = fixture_config(&root);

    let cold = analyze_workspace(&config).expect("cold pass");
    assert_eq!(cold.stats.cache_hits, 0, "first run has nothing cached");
    assert_eq!(cold.stats.cache_misses, cold.stats.files);
    assert!(cold.stats.files > 0, "fixture workspace has files");
    assert!(
        config.cache.as_ref().is_some_and(|p| p.is_file()),
        "the cold run persisted the cache"
    );

    let warm = analyze_workspace(&config).expect("warm pass");
    assert_eq!(
        warm.stats.cache_hits, warm.stats.files,
        "every file served from cache on the warm run"
    );
    assert_eq!(warm.stats.cache_misses, 0);

    // The contract: byte-identical findings, proven over the full rendered
    // report (rule, file, line, message — in order), not a summary.
    assert_eq!(
        baseline::report_json(&cold.findings),
        baseline::report_json(&warm.findings),
        "cached findings must be byte-identical to computed ones"
    );

    fs::remove_dir_all(&root).ok();
}

#[test]
fn editing_a_source_invalidates_exactly_that_file() {
    let root = scratch_workspace("stale");
    let config = fixture_config(&root);

    let cold = analyze_workspace(&config).expect("cold pass");
    let baseline_findings = baseline::report_json(&cold.findings);

    // Edit one strict file: append a fresh narrowing-cast violation.
    let edited = root.join("crates/hot/src/fastpath.rs");
    let mut text = fs::read_to_string(&edited).expect("read fixture source");
    text.push_str("\nfn appended(extra: u64) -> u8 {\n    extra as u8\n}\n");
    fs::write(&edited, text).expect("write edited source");

    let after = analyze_workspace(&config).expect("post-edit pass");
    assert_eq!(
        after.stats.cache_misses, 1,
        "exactly the edited file re-runs"
    );
    assert_eq!(after.stats.cache_hits, after.stats.files - 1);
    assert_ne!(
        baseline::report_json(&after.findings),
        baseline_findings,
        "the edit's findings are visible, not served stale"
    );
    assert!(
        after
            .findings
            .iter()
            .any(|f| f.rule.name() == "narrowing-cast"
                && f.file == "crates/hot/src/fastpath.rs"
                && f.message.contains("as u8")),
        "the appended cast is found: {:?}",
        after.findings
    );

    fs::remove_dir_all(&root).ok();
}

#[test]
fn config_change_discards_the_whole_cache() {
    let root = scratch_workspace("fingerprint");
    let config = fixture_config(&root);
    let cold = analyze_workspace(&config).expect("cold pass");
    assert_eq!(cold.stats.cache_misses, cold.stats.files);

    // Same files, different strict-arith set: the fingerprint differs, so
    // nothing may be served from the old cache.
    let mut reconfigured = fixture_config(&root);
    reconfigured.strict_arith = Vec::new();
    let run = analyze_workspace(&reconfigured).expect("reconfigured pass");
    assert_eq!(
        run.stats.cache_hits, 0,
        "a fingerprint mismatch must cold-start the cache"
    );
    assert!(
        !run.findings
            .iter()
            .any(|f| f.rule.name() == "narrowing-cast"),
        "strict-arith findings disappear with the config, not linger in cache"
    );

    fs::remove_dir_all(&root).ok();
}
