//! Integration tests for the interprocedural pass, run over the on-disk
//! fixture mini-workspace in `fixtures/graph_ws`. Unlike the unit tests in
//! `graph.rs`/`reach.rs`, these exercise the whole pipeline: directory
//! walking, per-file symbol collection, cross-crate linking, and the
//! reachability rules — exactly what `cargo run -p xtask -- lint` does.

use std::path::PathBuf;

use lintkit::{analyze_workspace, Analysis, Config, Finding, Rule};

fn fixture_analysis() -> Analysis {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/graph_ws");
    let config = Config {
        root,
        strict_index: Vec::new(),
        strict_arith: vec!["crates/hot/src/fastpath.rs".to_string()],
        skip_crates: Vec::new(),
        entry_points: vec![
            "core::ecs_scan::scan_subnets".to_string(),
            "relay::client::request".to_string(),
        ],
        hot_paths: vec!["hot::fastpath::drain_window".to_string()],
        warm_paths: vec!["hot::fastpath::setup_tables".to_string()],
        graph_skip_crates: Vec::new(),
        cache: None,
    };
    analyze_workspace(&config).expect("fixture workspace lints")
}

fn of_rule(analysis: &Analysis, rule: Rule) -> Vec<&Finding> {
    analysis
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn seeded_panic_behind_indirection_is_reached_cross_crate() {
    let analysis = fixture_analysis();
    let reach = of_rule(&analysis, Rule::PanicReachability);
    let seeded = reach
        .iter()
        .find(|f| f.file == "crates/dns/src/wire.rs")
        .expect("the seeded panic is found");
    assert_eq!(seeded.line, 10, "anchored at the unwrap site");
    // The message spells out the cross-crate path through the local
    // indirection: scan_subnets (core) → step (core) → decode_entry (dns)
    // → deep (dns).
    assert!(
        seeded.message.contains("core::ecs_scan::scan_subnets"),
        "names the entry: {}",
        seeded.message
    );
    for hop in ["scan_subnets", "step", "decode_entry", "deep"] {
        assert!(
            seeded.message.contains(hop),
            "path includes {hop}: {}",
            seeded.message
        );
    }
}

#[test]
fn unimplemented_trait_method_is_a_bottom_edge() {
    let analysis = fixture_analysis();
    let reach = of_rule(&analysis, Rule::PanicReachability);
    let bottom = reach
        .iter()
        .find(|f| f.file == "crates/relay/src/client.rs")
        .expect("the dynamic dispatch is flagged");
    assert_eq!(bottom.line, 9, "anchored at the call site");
    assert!(
        bottom.message.contains(".handle()"),
        "names the method: {}",
        bottom.message
    );
}

#[test]
fn cfg_test_code_is_exempt() {
    let analysis = fixture_analysis();
    // The unwrap inside ecs_scan.rs's `#[cfg(test)]` module (line 17) must
    // produce neither a per-file no-panic finding nor a reachability one.
    assert!(
        !analysis
            .findings
            .iter()
            .any(|f| f.file == "crates/core/src/ecs_scan.rs" && f.line == 17),
        "cfg(test) unwrap flagged: {:?}",
        analysis.findings
    );
}

#[test]
fn lock_order_cycle_has_exact_rule_file_and_line() {
    let analysis = fixture_analysis();
    let cycles = of_rule(&analysis, Rule::LockOrder);
    assert_eq!(cycles.len(), 1, "one cycle, one finding: {cycles:?}");
    let Some(f) = cycles.first() else {
        return;
    };
    assert_eq!(f.rule.name(), "lock-order");
    assert_eq!(f.file, "crates/relay/src/locks.rs");
    assert_eq!(f.line, 14, "anchored where Pair.b is taken under Pair.a");
    assert!(
        f.message.contains("Pair.a") && f.message.contains("Pair.b"),
        "cycle names both locks: {}",
        f.message
    );
}

#[test]
fn sim_driven_code_reaching_wall_clock_is_tainted() {
    let analysis = fixture_analysis();
    let taints = of_rule(&analysis, Rule::DeterminismTaint);
    let t = taints
        .iter()
        .find(|f| f.file == "crates/core/src/sim.rs")
        .expect("the SystemTime::now leak is flagged");
    assert_eq!(t.line, 9, "anchored at the wall-clock read");
}

#[test]
fn seeded_unordered_escape_through_callee_is_flagged() {
    let analysis = fixture_analysis();
    let orders = of_rule(&analysis, Rule::MapIterOrder);
    // Exactly two findings: the sorting caller (`emit_sorted`) and the
    // reasoned allow (`emit_allowed`) stay silent.
    assert_eq!(orders.len(), 2, "{orders:?}");
    // The seed in the callee, anchored at the iteration itself…
    let seed = orders
        .iter()
        .find(|f| f.line == 7)
        .expect("the callee's keys() seed is found");
    assert_eq!(seed.file, "crates/core/src/orders.rs");
    assert!(
        seed.message.contains("iteration over unordered `m`"),
        "names the container: {}",
        seed.message
    );
    // …and the caller whose output the callee's order reaches, anchored
    // at the tainting call.
    let caller = orders
        .iter()
        .find(|f| f.line == 11)
        .expect("the caller's tainted call is found");
    assert_eq!(caller.file, "crates/core/src/orders.rs");
    assert!(
        caller.message.contains("core::orders::emit_keys"),
        "names the tainting callee: {}",
        caller.message
    );
}

#[test]
fn seeded_fork_behind_indirection_is_engine_reachable() {
    let analysis = fixture_analysis();
    let forks = of_rule(&analysis, Rule::RngForkOrder);
    // Exactly one finding: `CleanShard` uses fork_indexed and
    // `QuietShard` carries a reasoned allow.
    assert_eq!(forks.len(), 1, "{forks:?}");
    let Some(f) = forks.first() else {
        return;
    };
    assert_eq!(f.file, "crates/relay/src/shard.rs");
    assert_eq!(f.line, 21, "anchored at the fork site inside the helper");
    assert!(
        f.message.contains("on_event") && f.message.contains("reseed"),
        "path runs from the shard entry through the indirection: {}",
        f.message
    );
    assert!(
        f.message.contains("fork_indexed"),
        "suggests the order-free API: {}",
        f.message
    );
}

#[test]
fn seeded_shard_mutex_touch_is_flagged() {
    let analysis = fixture_analysis();
    let escapes = of_rule(&analysis, Rule::ShardStateEscape);
    // Exactly one finding: `QuietShard`'s lock carries a reasoned allow.
    assert_eq!(escapes.len(), 1, "{escapes:?}");
    let Some(f) = escapes.first() else {
        return;
    };
    assert_eq!(f.file, "crates/relay/src/shard.rs");
    assert_eq!(f.line, 32, "anchored where LockyShard takes the mutex");
    assert!(
        f.message.contains("ShardCtx"),
        "points at the sanctioned channel: {}",
        f.message
    );
}

#[test]
fn seeded_alloc_behind_indirection_is_hot_reachable() {
    let analysis = fixture_analysis();
    let allocs = of_rule(&analysis, Rule::AllocInHotPath);
    // Exactly one finding: the warm `setup_tables` Vec::new is pruned at
    // the boundary and the scratch buffer carries a reasoned allow.
    assert_eq!(allocs.len(), 1, "{allocs:?}");
    let Some(f) = allocs.first() else {
        return;
    };
    assert_eq!(f.file, "crates/hot/src/fastpath.rs");
    assert_eq!(f.line, 26, "anchored at the format! inside the helper");
    assert!(
        f.message.contains("hot::fastpath::drain_window"),
        "names the hot entry: {}",
        f.message
    );
    assert!(
        f.message.contains("drain_window → label"),
        "spells the call path through the indirection: {}",
        f.message
    );
}

#[test]
fn seeded_narrowing_cast_is_pinned() {
    let analysis = fixture_analysis();
    let casts = of_rule(&analysis, Rule::NarrowingCast);
    // Exactly one finding: the try_from counterpart and the reasoned allow
    // stay silent.
    assert_eq!(casts.len(), 1, "{casts:?}");
    let Some(f) = casts.first() else {
        return;
    };
    assert_eq!(f.file, "crates/hot/src/fastpath.rs");
    assert_eq!(f.line, 43, "anchored at the u32 → u16 cast");
    assert!(
        f.message.contains("as u16") && f.message.contains("try_from"),
        "names the cast and the fix: {}",
        f.message
    );
}

#[test]
fn seeded_unchecked_add_is_pinned() {
    let analysis = fixture_analysis();
    let adds = of_rule(&analysis, Rule::UncheckedArith);
    // Exactly one finding: the saturating counterpart and the reasoned
    // allow stay silent.
    assert_eq!(adds.len(), 1, "{adds:?}");
    let Some(f) = adds.first() else {
        return;
    };
    assert_eq!(f.file, "crates/hot/src/fastpath.rs");
    assert_eq!(f.line, 59, "anchored at the bare + on u64 operands");
    assert!(
        f.message.contains("checked_"),
        "suggests the checked family: {}",
        f.message
    );
}

#[test]
fn graph_links_cross_crate_edges() {
    let analysis = fixture_analysis();
    let graph = &analysis.graph;
    // Resolved entries exist for both declared patterns.
    assert_eq!(analysis.entries.len(), 2, "both entry points resolve");
    // The DOT dump renders without panicking and mentions the fixture
    // functions and the ⊥ node.
    let dot = graph.to_dot(&analysis.entries);
    assert!(dot.contains("scan_subnets"));
    assert!(dot.contains("decode_entry"));
    assert!(dot.contains("⊥"));
}
