//! Fixture: exactly one `no-index` violation, on line 5 (linted with
//! `strict_index` set, as a hostile-input parse path would be).

pub fn first_byte(buf: &[u8]) -> u8 {
    buf[0]
}

/// Range slicing is out of scope for the rule — this must NOT be flagged.
pub fn header(buf: &[u8]) -> &[u8] {
    &buf[..4]
}
