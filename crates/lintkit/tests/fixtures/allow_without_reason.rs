//! Fixture: an allow comment missing its `-- <reason>` justification.
//! Yields `allow-needs-reason` on line 5 AND the unsuppressed `no-panic`
//! on line 6 — a reasonless allow suppresses nothing.

// lintkit: allow(no-panic)
pub fn bad() -> u32 { "7".parse().unwrap() }
