//! Fixture: passes every rule under the strictest context (crate root,
//! strict indexing, printing disallowed), including one properly justified
//! allow suppressing an `expect`.

#![forbid(unsafe_code)]

/// Total accessor: `.get` instead of indexing.
pub fn first_byte(buf: &[u8]) -> Option<u8> {
    buf.get(0).copied()
}

/// A justified suppression is not a finding.
pub fn must_have() -> u32 {
    // lintkit: allow(no-panic) -- fixture: constant input cannot fail
    "7".parse().expect("constant")
}

#[cfg(test)]
mod tests {
    // Test code may panic freely; the rules skip `#[cfg(test)]` ranges.
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!("3".parse::<u32>().unwrap(), 3);
    }
}
