//! Fixture: exactly one `no-panic` violation, on line 5.

/// Parses a count from operator-controlled input.
pub fn parse_count(input: &str) -> u32 {
    input.parse().unwrap()
}
