//! Hostile-input decoder fixture: the seeded panic sits one call behind
//! the public API.

pub fn decode_entry(x: u32) -> u32 {
    deep(x)
}

fn deep(x: u32) -> u32 {
    let v = vec![x];
    *v.first().unwrap()
}
