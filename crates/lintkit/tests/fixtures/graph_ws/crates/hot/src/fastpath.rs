//! Hot-path fixture: the steady-state `drain_window` entry must stay
//! allocation-free under strict integer arithmetic. Seeds exactly one
//! violation per resource rule plus clean and allowed counterparts.

/// Warm boundary (`Config::warm_paths`): builds the lookup tables once
/// at startup, so its allocations are setup cost, not steady state.
pub fn setup_tables() -> Vec<u64> {
    let mut t = Vec::new();
    t.push(1);
    t
}

/// The declared hot entry (`Config::hot_paths`).
pub fn drain_window(acc: u64, width: u32) -> u64 {
    let tables = setup_tables();
    let labeled = label(acc);
    let scratch = scratch_allowed();
    let slot = pick_slot(width);
    let safe = pick_slot_checked(width);
    let capped = bump_checked(bump(labeled, scratch), u64::from(safe));
    finishing(tables, u64::from(slot), capped)
}

/// One call of indirection between the hot entry and the allocation.
fn label(acc: u64) -> u64 {
    let s = format!("acc={acc}");
    if s.is_empty() {
        0
    } else {
        acc
    }
}

/// A reasoned allow keeps this deliberate scratch allocation silent.
fn scratch_allowed() -> u64 {
    // lintkit: allow(alloc-in-hot-path) -- fixture: documented scratch buffer
    let v = vec![0u64; 4];
    v.first().copied().unwrap_or(0)
}

/// Seeded narrowing cast: u32 → u16 may truncate.
fn pick_slot(width: u32) -> u16 {
    width as u16
}

/// Clean counterpart: the checked narrowing stays silent.
fn pick_slot_checked(width: u32) -> u16 {
    u16::try_from(width).unwrap_or(u16::MAX)
}

/// An allowed narrowing: the reason keeps the ratchet silent.
fn tag_byte(width: u32) -> u8 {
    // lintkit: allow(narrowing-cast) -- fixture: tag occupies the low 6 bits
    width as u8
}

/// Seeded unchecked add on size-typed operands.
fn bump(cursor: u64, step: u64) -> u64 {
    cursor + step
}

/// Clean counterpart: saturating arithmetic is a recognized boundary.
fn bump_checked(cursor: u64, step: u64) -> u64 {
    cursor.saturating_add(step)
}

/// An allowed add: the reason keeps the ratchet silent.
fn finishing(tables: Vec<u64>, count: u64, fallback: u64) -> u64 {
    // lintkit: allow(unchecked-arith) -- fixture: count is bounded by the window
    let joined = count + fallback;
    if joined == 0 {
        fallback
    } else {
        tables.first().copied().unwrap_or(fallback)
    }
}
