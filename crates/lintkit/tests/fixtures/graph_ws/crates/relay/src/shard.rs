//! rng-fork-order / shard-state-escape fixtures: one shard forks the sim
//! RNG behind a local helper, one grabs a shared mutex, one uses the
//! order-free fork_indexed, and one carries reasoned allows.

use std::sync::Mutex;

pub trait ShardModel {
    fn on_event(&mut self, seed: u64) -> u64;
}

pub struct ForkyShard;

impl ShardModel for ForkyShard {
    fn on_event(&mut self, seed: u64) -> u64 {
        reseed(seed)
    }
}

fn reseed(seed: u64) -> u64 {
    let rng = SimRng::new(seed);
    let child = rng.fork("worker");
    let _ = child;
    seed
}

pub struct LockyShard {
    shared: Mutex<u64>,
}

impl ShardModel for LockyShard {
    fn on_event(&mut self, seed: u64) -> u64 {
        let g = self.shared.lock();
        let _ = g;
        seed
    }
}

pub struct CleanShard;

impl ShardModel for CleanShard {
    fn on_event(&mut self, seed: u64) -> u64 {
        let child = SimRng::new(seed).fork_indexed("worker", seed);
        let _ = child;
        seed
    }
}

pub struct QuietShard {
    stats: Mutex<u64>,
}

impl ShardModel for QuietShard {
    fn on_event(&mut self, seed: u64) -> u64 {
        // lintkit: allow(shard-state-escape) -- fixture: read-only stats mirror
        let g = self.stats.lock();
        let _ = g;
        // lintkit: allow(rng-fork-order) -- fixture: serial replay path
        let child = SimRng::new(seed).fork("replay");
        let _ = child;
        seed
    }
}
