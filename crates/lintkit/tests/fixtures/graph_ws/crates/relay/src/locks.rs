//! Lock-order fixture: two functions acquire the same pair of mutexes in
//! opposite orders.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) {
        let _ga = self.a.lock();
        let _gb = self.b.lock();
    }

    pub fn ba(&self) {
        let _gb = self.b.lock();
        let _ga = self.a.lock();
    }
}
