//! Dynamic-dispatch fixture: a trait method with no workspace impl is a
//! ⊥ edge and conservatively "may panic".

pub trait Handler {
    fn handle(&self) -> u32;
}

pub fn request(h: &dyn Handler) -> u32 {
    h.handle()
}
