//! Determinism fixture: SimClock-driven code reaching a wall-clock read.

pub fn drive(clock: &SimClock) -> u32 {
    let _ = clock;
    leak()
}

fn leak() -> u32 {
    let _ = std::time::SystemTime::now();
    3
}
