//! map-iter-order fixture: a callee's unordered iteration escapes its
//! caller's output; a sorting caller and a reasoned allow stay silent.

use std::collections::HashMap;

fn emit_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect::<Vec<u32>>()
}

pub fn emit_all(m: &HashMap<u32, u32>) -> Vec<u32> {
    emit_keys(m)
}

pub fn emit_sorted(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v = emit_keys(m);
    v.sort_unstable();
    v
}

pub fn emit_allowed(m: &HashMap<u32, u32>) -> Vec<u32> {
    // lintkit: allow(map-iter-order) -- fixture: consumer sorts downstream
    m.keys().copied().collect::<Vec<u32>>()
}
