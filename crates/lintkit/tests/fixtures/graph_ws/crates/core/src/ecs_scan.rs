//! Scan-loop fixture: the entry point reaches the dns decoder cross-crate,
//! behind one local call of indirection.

pub fn scan_subnets() -> u32 {
    step()
}

fn step() -> u32 {
    wire::decode_entry(7)
}

#[cfg(test)]
mod tests {
    #[test]
    fn gated_unwrap_is_exempt() {
        let v = vec![1u32];
        let _ = *v.first().unwrap();
    }
}
