//! Fixture: a crate root with no `#![forbid(unsafe_code)]` attribute —
//! linted with `is_crate_root` set, yielding one `forbid-unsafe` finding.

pub fn noop() {}
