//! Fixture: exactly one `no-print` violation, on line 5.

/// Library code talking straight to stdout.
pub fn announce(n: u32) {
    println!("scanned {n} subnets");
}
