//! Property tests for the geo substrate: geohash laws, egress CSV
//! round-trips, and quota-assignment invariants.

use proptest::prelude::*;
use tectonic_net::SimRng;

use tectonic_geo::city::CityUniverse;
use tectonic_geo::country::CountryCode;
use tectonic_geo::egress::{EgressEntry, EgressList};
use tectonic_geo::geohash;

fn arb_lat() -> impl Strategy<Value = f64> {
    -90.0f64..90.0
}

fn arb_lon() -> impl Strategy<Value = f64> {
    -180.0f64..180.0
}

fn arb_cc() -> impl Strategy<Value = CountryCode> {
    proptest::string::string_regex("[A-Z]{2}")
        .unwrap()
        .prop_map(|s| CountryCode::new(&s).unwrap())
}

fn arb_entry() -> impl Strategy<Value = EgressEntry> {
    (
        any::<u32>(),
        8u8..=32,
        arb_cc(),
        proptest::string::string_regex("[A-Z]{2}-R[0-9]{2}").unwrap(),
        proptest::option::of(proptest::string::string_regex("[A-Za-z0-9-]{1,24}").unwrap()),
    )
        .prop_map(|(bits, len, cc, region, city)| EgressEntry {
            subnet: tectonic_net::IpNet::V4(
                tectonic_net::Ipv4Net::new(std::net::Ipv4Addr::from(bits), len).unwrap(),
            ),
            cc,
            region,
            city,
        })
}

proptest! {
    #[test]
    fn geohash_decode_contains_encoded_point(
        lat in arb_lat(),
        lon in arb_lon(),
        precision in 1usize..=12,
    ) {
        let hash = geohash::encode(lat, lon, precision);
        prop_assert_eq!(hash.len(), precision);
        let cell = geohash::decode(&hash).expect("own hash decodes");
        prop_assert!((cell.lat - lat).abs() <= cell.lat_err + 1e-9);
        prop_assert!((cell.lon - lon).abs() <= cell.lon_err + 1e-9);
    }

    #[test]
    fn geohash_prefix_property(
        lat in arb_lat(),
        lon in arb_lon(),
        short in 1usize..=6,
        extra in 1usize..=6,
    ) {
        let short_hash = geohash::encode(lat, lon, short);
        let long_hash = geohash::encode(lat, lon, short + extra);
        prop_assert!(long_hash.starts_with(&short_hash));
    }

    #[test]
    fn geohash_cell_shrinks_with_precision(lat in arb_lat(), lon in arb_lon()) {
        let coarse = geohash::decode(&geohash::encode(lat, lon, 3)).unwrap();
        let fine = geohash::decode(&geohash::encode(lat, lon, 8)).unwrap();
        prop_assert!(fine.lat_err < coarse.lat_err);
        prop_assert!(fine.lon_err < coarse.lon_err);
    }

    #[test]
    fn egress_csv_round_trips(entries in prop::collection::vec(arb_entry(), 0..40)) {
        let list = EgressList::from_entries(entries);
        let csv = list.to_csv();
        let back = EgressList::parse_csv(&csv).expect("own CSV parses");
        prop_assert_eq!(back.len(), list.len());
        for (a, b) in back.entries().iter().zip(list.entries()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn city_universe_scales_with_target(target in 500usize..8000, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let universe = CityUniverse::generate(&mut rng, target);
        // Within a factor of two of the target (min-2-per-country floor
        // can push small targets up).
        prop_assert!(universe.len() >= target / 2);
        prop_assert!(universe.len() <= target * 2 + 600);
        // Coordinates valid everywhere.
        for city in universe.cities().iter().step_by(97) {
            prop_assert!((-90.0..=90.0).contains(&city.lat));
            prop_assert!((-180.0..=180.0).contains(&city.lon));
        }
    }
}
