//! The Apple egress list: data model, CSV codec, calibrated generator.
//!
//! Apple publishes `https://mask-api.icloud.com/egress-ip-ranges.csv`, a
//! list of egress subnets with the location each subnet *represents*
//! (country, region, city). The paper's Tables 3–4 and Figures 2/4/5 are
//! pure functions of that list plus BGP attribution. We cannot fetch the
//! live list, so [`generate`] synthesises one with the same structure:
//!
//! * the May 2022 per-operator subnet counts, mask mix (derived from the
//!   subnets-vs-addresses columns of Table 3) and BGP prefix counts,
//! * all-/64 IPv6 subnets,
//! * the US-dominant country distribution (58 % US, 3.6 % DE, long tail
//!   with >100 countries under 50 subnets),
//! * per-operator country/city coverage targets (Table 4),
//! * 1.6 % of subnets with a blank city (the region-withholding option).
//!
//! [`EgressList::parse_csv`] accepts the real file's format, so a user with
//! network access can swap the synthetic list for the live one.

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, IpNet, Ipv4Net, Ipv6Net, SimRng};

use crate::city::CityUniverse;
use crate::country::{all_countries, CountryCode};

/// One row of the egress list.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EgressEntry {
    /// The egress subnet.
    pub subnet: IpNet,
    /// Country the subnet represents.
    pub cc: CountryCode,
    /// Region identifier (`US-CA` style).
    pub region: String,
    /// City, or `None` when the user withholds the region (1.6 % of rows).
    pub city: Option<String>,
}

pub use crate::csv::{CsvParseStats, EgressParseError};

/// The egress list.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EgressList {
    entries: Vec<EgressEntry>,
}

impl EgressList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps existing entries.
    pub fn from_entries(entries: Vec<EgressEntry>) -> Self {
        EgressList { entries }
    }

    /// All entries.
    pub fn entries(&self) -> &[EgressEntry] {
        &self.entries
    }

    /// Number of subnets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// IPv4 rows.
    pub fn v4_entries(&self) -> impl Iterator<Item = &EgressEntry> {
        self.entries.iter().filter(|e| e.subnet.is_v4())
    }

    /// IPv6 rows.
    pub fn v6_entries(&self) -> impl Iterator<Item = &EgressEntry> {
        self.entries.iter().filter(|e| e.subnet.is_v6())
    }

    /// Serialises in Apple's `subnet,CC,region,city` format.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 40);
        for e in &self.entries {
            out.push_str(&format!(
                "{},{},{},{}\n",
                e.subnet,
                e.cc,
                e.region,
                e.city.as_deref().unwrap_or("")
            ));
        }
        out
    }

    /// Parses the CSV format strictly; blank city fields become `None` and
    /// the first malformed row aborts. See [`crate::csv`] for the codec.
    pub fn parse_csv(text: &str) -> Result<EgressList, EgressParseError> {
        crate::csv::parse_csv(text)
    }

    /// Parses the CSV format leniently: malformed rows are skipped and
    /// counted in the returned [`CsvParseStats`] instead of aborting.
    pub fn parse_csv_lossy(text: &str) -> (EgressList, CsvParseStats) {
        crate::csv::parse_csv_lossy(text)
    }
}

/// Generation parameters for one egress operator.
#[derive(Clone, Debug)]
pub struct OperatorEgressSpec {
    /// The operator's AS.
    pub asn: Asn,
    /// `(prefix_len, count)` — how many IPv4 subnets of each mask length.
    /// Derived from Table 3's subnets-vs-addresses columns.
    pub v4_mask_plan: Vec<(u8, usize)>,
    /// Number of routed IPv4 BGP prefixes carrying the subnets.
    pub v4_bgp_prefixes: usize,
    /// Pool the IPv4 BGP prefixes are carved from.
    pub v4_pool: Ipv4Net,
    /// Prefix length of each carved IPv4 BGP prefix.
    pub v4_bgp_len: u8,
    /// Number of IPv6 subnets (all /64, as in the published list).
    pub v6_subnets: usize,
    /// Number of routed IPv6 BGP prefixes.
    pub v6_bgp_prefixes: usize,
    /// Pool the IPv6 BGP prefixes are carved from.
    pub v6_pool: Ipv6Net,
    /// Prefix length of each carved IPv6 BGP prefix.
    pub v6_bgp_len: u8,
    /// Countries covered by IPv4 subnets.
    pub cc_count_v4: usize,
    /// Countries covered by IPv6 subnets.
    pub cc_count_v6: usize,
    /// Distinct cities targeted by IPv4 subnets (Table 4).
    pub cities_v4: usize,
    /// Distinct cities targeted by IPv6 subnets (Table 4).
    pub cities_v6: usize,
}

impl OperatorEgressSpec {
    /// Total IPv4 subnets in the plan.
    pub fn v4_subnets(&self) -> usize {
        self.v4_mask_plan.iter().map(|(_, c)| c).sum()
    }

    /// Total IPv4 addresses in the plan.
    pub fn v4_addresses(&self) -> u64 {
        self.v4_mask_plan
            .iter()
            .map(|(len, c)| (1u64 << (32 - *len as u32)) * *c as u64)
            .sum()
    }

    /// The four operators with the paper's May 2022 numbers (Table 3/4).
    ///
    /// Mask plans solve the subnets/addresses system exactly:
    /// Akamai&#8239;PR 9890 subnets / 57 589 addresses, Akamai&#8239;EG
    /// 1602 / 5100, Cloudflare 18 218 / 18 218 (all /32), Fastly
    /// 8530 / 17 060 (all /31).
    pub fn paper_defaults() -> Vec<OperatorEgressSpec> {
        vec![
            OperatorEgressSpec {
                asn: Asn::AKAMAI_PR,
                v4_mask_plan: vec![(29, 5699), (30, 2602), (32, 1589)],
                v4_bgp_prefixes: 301,
                v4_pool: Ipv4Net::literal("172.224.0.0/12"),
                v4_bgp_len: 21,
                v6_subnets: 142_826,
                v6_bgp_prefixes: 1172,
                v6_pool: Ipv6Net::literal("2a02:26f7::/32"),
                v6_bgp_len: 44,
                cc_count_v4: 236,
                cc_count_v6: 236,
                cities_v4: 853,
                cities_v6: 14_085,
            },
            OperatorEgressSpec {
                asn: Asn::AKAMAI_EG,
                v4_mask_plan: vec![(30, 1000), (31, 498), (32, 104)],
                v4_bgp_prefixes: 1,
                v4_pool: Ipv4Net::literal("23.32.0.0/12"),
                v4_bgp_len: 12,
                v6_subnets: 23_495,
                v6_bgp_prefixes: 1,
                v6_pool: Ipv6Net::literal("2600:1400::/32"),
                v6_bgp_len: 32,
                cc_count_v4: 18,
                cc_count_v6: 24,
                cities_v4: 455,
                cities_v6: 7507,
            },
            OperatorEgressSpec {
                asn: Asn::CLOUDFLARE,
                v4_mask_plan: vec![(32, 18_218)],
                v4_bgp_prefixes: 112,
                v4_pool: Ipv4Net::literal("104.0.0.0/10"),
                v4_bgp_len: 20,
                v6_subnets: 26_988,
                v6_bgp_prefixes: 2,
                v6_pool: Ipv6Net::literal("2a09:b800::/29"),
                v6_bgp_len: 32,
                cc_count_v4: 248,
                cc_count_v6: 248,
                cities_v4: 1134,
                cities_v6: 5228,
            },
            OperatorEgressSpec {
                asn: Asn::FASTLY,
                v4_mask_plan: vec![(31, 8530)],
                v4_bgp_prefixes: 81,
                v4_pool: Ipv4Net::literal("146.72.0.0/13"),
                v4_bgp_len: 20,
                v6_subnets: 8530,
                v6_bgp_prefixes: 81,
                v6_pool: Ipv6Net::literal("2a04:4e40::/26"),
                v6_bgp_len: 48,
                cc_count_v4: 236,
                cc_count_v6: 236,
                cities_v4: 848,
                cities_v6: 848,
            },
        ]
    }
}

/// The routed footprint of one operator, as announced in BGP.
#[derive(Clone, Debug)]
pub struct OperatorFootprint {
    /// The operator's AS.
    pub asn: Asn,
    /// Announced IPv4 prefixes carrying egress subnets.
    pub bgp_v4: Vec<Ipv4Net>,
    /// Announced IPv6 prefixes carrying egress subnets.
    pub bgp_v6: Vec<Ipv6Net>,
}

/// Fraction of rows with a blank city, from §4.2.
const BLANK_CITY_FRACTION: f64 = 0.016;
/// US share of all subnets, from §4.2.
const US_SHARE: f64 = 0.58;
/// DE share of all subnets, from §4.2.
const DE_SHARE: f64 = 0.036;

/// Ordered country preference: US, DE, then by descending weight.
fn country_order() -> Vec<CountryCode> {
    let mut countries = all_countries();
    countries.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    let mut order = vec![CountryCode::US, CountryCode::DE];
    for c in countries {
        if c.code != CountryCode::US && c.code != CountryCode::DE {
            order.push(c.code);
        }
    }
    order
}

/// Per-CC subnet shares within one operator: US 58 %, DE 3.6 %, the rest
/// split by country weight.
fn cc_shares(ccs: &[CountryCode]) -> Vec<f64> {
    let infos = all_countries();
    let weight_of = |cc: CountryCode| {
        infos
            .iter()
            .find(|i| i.code == cc)
            .map(|i| i.weight)
            .unwrap_or(0.1)
    };
    let rest_weight: f64 = ccs
        .iter()
        .filter(|c| **c != CountryCode::US && **c != CountryCode::DE)
        .map(|c| weight_of(*c))
        .sum();
    let mut shares: Vec<f64> = ccs
        .iter()
        .map(|c| {
            if *c == CountryCode::US {
                US_SHARE
            } else if *c == CountryCode::DE {
                DE_SHARE
            } else {
                (1.0 - US_SHARE - DE_SHARE) * weight_of(*c) / rest_weight.max(1e-9)
            }
        })
        .collect();
    // The deployment does not follow raw population: Germany is the second
    // country in the published list (3.6 %) even though larger countries
    // exist. Cap every tail country below DE's share and redistribute the
    // excess over the uncapped tail until stable.
    let cap = DE_SHARE * 0.9;
    for _ in 0..16 {
        let mut excess = 0.0;
        let mut uncapped_weight = 0.0;
        for (c, share) in ccs.iter().zip(shares.iter_mut()) {
            if *c == CountryCode::US || *c == CountryCode::DE {
                continue;
            }
            if *share > cap {
                excess += *share - cap;
                *share = cap;
            } else {
                uncapped_weight += *share;
            }
        }
        if excess < 1e-12 || uncapped_weight < 1e-12 {
            break;
        }
        for (c, share) in ccs.iter().zip(shares.iter_mut()) {
            if *c == CountryCode::US || *c == CountryCode::DE || *share >= cap {
                continue;
            }
            *share += excess * *share / uncapped_weight;
        }
    }
    shares
}

/// City pools per CC for one operator/family: roughly `target` cities in
/// total, split across CCs in proportion to how many cities the universe
/// *has* there (≥1 each). City coverage does not follow the subnet
/// distribution — the US holds 58 % of subnets but only its fair share of
/// the world's cities — which is exactly why Table 4's city counts dwarf
/// the per-country subnet skew.
fn city_pools<'a>(
    universe: &'a CityUniverse,
    ccs: &[CountryCode],
    target: usize,
) -> Vec<Vec<&'a crate::city::City>> {
    let total_available: usize = ccs
        .iter()
        .map(|cc| universe.cities_of(*cc).len())
        .sum::<usize>()
        .max(1);
    let fraction = (target as f64 / total_available as f64).min(1.0);
    ccs.iter()
        .map(|cc| {
            let available = universe.cities_of(*cc);
            let want = ((available.len() as f64 * fraction).ceil() as usize)
                .max(1)
                .min(available.len().max(1));
            available.iter().take(want).collect()
        })
        .collect()
}

/// Distributes `total` subnets over countries by largest-remainder quotas.
///
/// Every country receives at least one subnet when `total` allows it, so an
/// operator's configured country coverage is exact (Table 3's CC column);
/// the remainder follows `shares` (58 % US and so on). When `total` is
/// smaller than the country set, the top-ordered countries are covered one
/// subnet each. The returned per-subnet country indices are shuffled so
/// countries interleave across BGP prefixes.
fn quota_assignments(shares: &[f64], total: usize, rng: &mut SimRng) -> Vec<usize> {
    let n = shares.len();
    if n == 0 || total == 0 {
        return Vec::new();
    }
    let mut quotas = vec![0usize; n];
    // Indices 0 and 1 are US and DE by construction of `country_order`;
    // their headline shares (58 % / 3.6 %) are reserved exactly first, so
    // the distribution keeps its shape at any scale. The rest of the
    // subnets cover the remaining countries with at-least-one semantics.
    let reserved = n.min(2);
    let mut used = 0usize;
    for i in 0..reserved {
        quotas[i] = ((shares[i] * total as f64).round() as usize)
            .max(1)
            .min(total - used - (reserved - i - 1));
        used += quotas[i];
    }
    let remaining = total - used;
    let tail = n - reserved;
    if tail > 0 && remaining > 0 {
        if remaining <= tail {
            for q in quotas.iter_mut().skip(reserved).take(remaining) {
                *q = 1;
            }
        } else {
            for q in quotas.iter_mut().skip(reserved) {
                *q = 1;
            }
            let extra = remaining - tail;
            let share_total: f64 = shares.iter().skip(reserved).sum();
            let mut fractional: Vec<(usize, f64)> = Vec::with_capacity(tail);
            let mut assigned = 0usize;
            for (i, share) in shares.iter().enumerate().skip(reserved) {
                let exact = share / share_total * extra as f64;
                let floor = exact.floor() as usize;
                quotas[i] += floor;
                assigned += floor;
                fractional.push((i, exact - floor as f64));
            }
            // Largest remainders get the leftover units.
            fractional.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (i, _) in fractional.into_iter().take(extra - assigned) {
                quotas[i] += 1;
            }
        }
    }
    let mut assignments = Vec::with_capacity(total);
    for (i, q) in quotas.iter().enumerate() {
        assignments.extend(std::iter::repeat_n(i, *q));
    }
    rng.shuffle(&mut assignments);
    assignments
}

/// Generates the egress list plus per-operator routed footprints.
///
/// `scale` scales subnet counts (1.0 = the May snapshot; ≈0.87 reproduces
/// the January list which the paper reports as 15 % smaller with little
/// churn — a scaled-down list is a prefix of the full one by construction).
pub fn generate(
    rng: &SimRng,
    universe: &CityUniverse,
    specs: &[OperatorEgressSpec],
    scale: f64,
) -> (EgressList, Vec<OperatorFootprint>) {
    let order = country_order();
    let mut entries = Vec::new();
    let mut footprints = Vec::new();
    for spec in specs {
        let mut op_rng = rng.fork(&format!("egress-{}", spec.asn));
        // --- carve BGP prefixes from the pools
        let bgp_v4: Vec<Ipv4Net> = spec
            .v4_pool
            .subnets(spec.v4_bgp_len)
            .into_iter()
            .flatten()
            .take(spec.v4_bgp_prefixes)
            .collect();
        assert_eq!(
            bgp_v4.len(),
            spec.v4_bgp_prefixes,
            "{}: v4 pool too small",
            spec.asn
        );
        let bgp_v6: Vec<Ipv6Net> = (0..spec.v6_bgp_prefixes)
            .filter_map(|i| spec.v6_pool.nth_subnet(spec.v6_bgp_len, i as u128).ok())
            .collect();
        assert_eq!(
            bgp_v6.len(),
            spec.v6_bgp_prefixes,
            "{}: v6 pool too small",
            spec.asn
        );

        // --- IPv4 subnets: bump-allocate inside each BGP prefix,
        //     large blocks first so alignment is automatic.
        let mut plan = spec.v4_mask_plan.clone();
        plan.sort_by_key(|(len, _)| *len);
        let mut cursors: Vec<u64> = vec![0; bgp_v4.len()];
        let mut v4_subnets: Vec<Ipv4Net> = Vec::new();
        for (len, full_count) in &plan {
            // Cursors always advance for the *full* plan so a scaled-down
            // list is an exact subset of the full one (the paper's
            // "little churn" observation between snapshots).
            let emit_count = ((*full_count as f64) * scale).round() as usize;
            let block = 1u64 << (32 - *len as u32);
            for i in 0..*full_count {
                let pfx_idx = i % bgp_v4.len();
                let base = bgp_v4[pfx_idx];
                let offset = cursors[pfx_idx];
                assert!(
                    offset + block <= base.addr_count(),
                    "{}: BGP prefix {} exhausted",
                    spec.asn,
                    base
                );
                let addr = base.nth_addr(offset);
                cursors[pfx_idx] = offset + block;
                if i < emit_count {
                    v4_subnets.push(Ipv4Net::clamped(addr, *len));
                }
            }
        }

        // --- IPv6 subnets: all /64, sequential within each BGP prefix.
        let v6_count = ((spec.v6_subnets as f64) * scale).round() as usize;
        let mut v6_subnets: Vec<Ipv6Net> = Vec::with_capacity(v6_count);
        for i in 0..v6_count {
            let Some(base) = bgp_v6.get(i % bgp_v6.len().max(1)) else {
                break; // no v6 footprint configured
            };
            let slot = (i / bgp_v6.len().max(1)) as u128;
            // Carving /64s out of a shorter announced prefix cannot fail;
            // a misconfigured spec (bgp_len > 64) just truncates the list.
            if let Ok(s) = base.nth_subnet(64, slot) {
                v6_subnets.push(s);
            }
        }

        // --- geography
        let ccs_v4: Vec<CountryCode> = order.iter().take(spec.cc_count_v4).copied().collect();
        let ccs_v6: Vec<CountryCode> = order.iter().take(spec.cc_count_v6).copied().collect();
        let shares_v4 = cc_shares(&ccs_v4);
        let shares_v6 = cc_shares(&ccs_v6);
        let pools_v4 = city_pools(universe, &ccs_v4, spec.cities_v4);
        let pools_v6 = city_pools(universe, &ccs_v6, spec.cities_v6);

        let assign = |subnet: IpNet,
                      cc_idx: usize,
                      ccs: &[CountryCode],
                      pools: &[Vec<&crate::city::City>],
                      rng: &mut SimRng|
         -> EgressEntry {
            let cc = ccs[cc_idx];
            let pool = &pools[cc_idx];
            let blank = rng.chance(BLANK_CITY_FRACTION);
            if blank || pool.is_empty() {
                EgressEntry {
                    subnet,
                    cc,
                    region: format!("{cc}-R00"),
                    city: None,
                }
            } else {
                let city = pool[rng.index(pool.len())];
                EgressEntry {
                    subnet,
                    cc,
                    region: city.region.clone(),
                    city: Some(city.name.clone()),
                }
            }
        };

        let assignments_v4 = quota_assignments(&shares_v4, v4_subnets.len(), &mut op_rng);
        for (subnet, cc_idx) in v4_subnets.into_iter().zip(assignments_v4) {
            entries.push(assign(
                IpNet::V4(subnet),
                cc_idx,
                &ccs_v4,
                &pools_v4,
                &mut op_rng,
            ));
        }
        let assignments_v6 = quota_assignments(&shares_v6, v6_subnets.len(), &mut op_rng);
        for (subnet, cc_idx) in v6_subnets.into_iter().zip(assignments_v6) {
            entries.push(assign(
                IpNet::V6(subnet),
                cc_idx,
                &ccs_v6,
                &pools_v6,
                &mut op_rng,
            ));
        }
        footprints.push(OperatorFootprint {
            asn: spec.asn,
            bgp_v4,
            bgp_v6,
        });
    }
    (EgressList { entries }, footprints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_universe() -> CityUniverse {
        CityUniverse::generate(&mut SimRng::new(1), 25_000)
    }

    fn small_specs() -> Vec<OperatorEgressSpec> {
        // Scaled-down variants so tests stay fast.
        let mut specs = OperatorEgressSpec::paper_defaults();
        for s in &mut specs {
            for (_, c) in &mut s.v4_mask_plan {
                *c /= 20;
            }
            s.v6_subnets /= 20;
            s.cities_v4 /= 10;
            s.cities_v6 /= 10;
        }
        specs
    }

    #[test]
    fn paper_defaults_match_table3_arithmetic() {
        let specs = OperatorEgressSpec::paper_defaults();
        let by_asn = |a: Asn| specs.iter().find(|s| s.asn == a).unwrap();
        let akpr = by_asn(Asn::AKAMAI_PR);
        assert_eq!(akpr.v4_subnets(), 9890);
        assert_eq!(akpr.v4_addresses(), 57_589);
        let akeg = by_asn(Asn::AKAMAI_EG);
        assert_eq!(akeg.v4_subnets(), 1602);
        assert_eq!(akeg.v4_addresses(), 5100);
        let cf = by_asn(Asn::CLOUDFLARE);
        assert_eq!(cf.v4_subnets(), 18_218);
        assert_eq!(cf.v4_addresses(), 18_218);
        let fastly = by_asn(Asn::FASTLY);
        assert_eq!(fastly.v4_subnets(), 8530);
        assert_eq!(fastly.v4_addresses(), 17_060);
    }

    #[test]
    fn generated_counts_match_specs() {
        let rng = SimRng::new(7);
        let universe = small_universe();
        let specs = small_specs();
        let (list, footprints) = generate(&rng, &universe, &specs, 1.0);
        let want_v4: usize = specs.iter().map(|s| s.v4_subnets()).sum();
        let want_v6: usize = specs.iter().map(|s| s.v6_subnets).sum();
        assert_eq!(list.v4_entries().count(), want_v4);
        assert_eq!(list.v6_entries().count(), want_v6);
        assert_eq!(footprints.len(), specs.len());
        for (f, s) in footprints.iter().zip(&specs) {
            assert_eq!(f.bgp_v4.len(), s.v4_bgp_prefixes);
            assert_eq!(f.bgp_v6.len(), s.v6_bgp_prefixes);
        }
    }

    #[test]
    fn subnets_fall_inside_their_operator_footprint() {
        let rng = SimRng::new(7);
        let universe = small_universe();
        let specs = small_specs();
        let (list, footprints) = generate(&rng, &universe, &specs, 1.0);
        // Every subnet must be inside exactly one operator's announced space.
        for e in list.entries() {
            let holders: Vec<Asn> = footprints
                .iter()
                .filter(|f| {
                    f.bgp_v4
                        .iter()
                        .any(|p| IpNet::V4(*p).contains_net(&e.subnet))
                        || f.bgp_v6
                            .iter()
                            .any(|p| IpNet::V6(*p).contains_net(&e.subnet))
                })
                .map(|f| f.asn)
                .collect();
            assert_eq!(holders.len(), 1, "subnet {} held by {holders:?}", e.subnet);
        }
    }

    #[test]
    fn subnets_are_unique_and_disjoint_within_operator() {
        let rng = SimRng::new(7);
        let universe = small_universe();
        let specs = small_specs();
        let (list, _) = generate(&rng, &universe, &specs, 1.0);
        let subnets: HashSet<String> = list
            .entries()
            .iter()
            .map(|e| e.subnet.to_string())
            .collect();
        assert_eq!(subnets.len(), list.len(), "duplicate subnets generated");
        // v4 subnets must not nest (bump allocation guarantees it).
        let v4: Vec<&EgressEntry> = list.v4_entries().collect();
        for w in v4.windows(2) {
            assert!(!w[0].subnet.contains_net(&w[1].subnet) || w[0].subnet == w[1].subnet);
        }
    }

    #[test]
    fn ipv6_subnets_are_all_64() {
        let rng = SimRng::new(7);
        let (list, _) = generate(&rng, &small_universe(), &small_specs(), 1.0);
        for e in list.v6_entries() {
            assert_eq!(e.subnet.len(), 64, "subnet {}", e.subnet);
        }
    }

    #[test]
    fn us_dominates_the_distribution() {
        let rng = SimRng::new(7);
        let (list, _) = generate(&rng, &small_universe(), &small_specs(), 1.0);
        let us = list
            .entries()
            .iter()
            .filter(|e| e.cc == CountryCode::US)
            .count();
        let share = us as f64 / list.len() as f64;
        assert!(
            (0.5..0.66).contains(&share),
            "US share {share:.3} not near 0.58"
        );
    }

    #[test]
    fn some_rows_have_blank_city() {
        let rng = SimRng::new(7);
        let (list, _) = generate(&rng, &small_universe(), &small_specs(), 1.0);
        let blank = list.entries().iter().filter(|e| e.city.is_none()).count();
        let share = blank as f64 / list.len() as f64;
        assert!(
            (0.005..0.05).contains(&share),
            "blank-city share {share:.4} not near 0.016"
        );
    }

    #[test]
    fn csv_round_trips() {
        let rng = SimRng::new(7);
        let (list, _) = generate(&rng, &small_universe(), &small_specs(), 1.0);
        let csv = list.to_csv();
        let back = EgressList::parse_csv(&csv).unwrap();
        assert_eq!(back.len(), list.len());
        assert_eq!(back.entries()[0], list.entries()[0]);
        assert_eq!(
            back.entries()[list.len() - 1],
            list.entries()[list.len() - 1]
        );
    }

    #[test]
    fn csv_parser_rejects_malformed() {
        assert!(matches!(
            EgressList::parse_csv("1.2.3.0/24,US,US-CA"),
            Err(EgressParseError::BadRow(1))
        ));
        assert!(matches!(
            EgressList::parse_csv("junk,US,US-CA,LA"),
            Err(EgressParseError::BadSubnet(1, _))
        ));
        assert!(matches!(
            EgressList::parse_csv("1.2.3.0/24,USA,US-CA,LA"),
            Err(EgressParseError::BadCountry(1, _))
        ));
        // Blank lines are fine; blank city is fine.
        let ok = EgressList::parse_csv("\n172.224.0.0/27,US,US-CA,\n\n").unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok.entries()[0].city, None);
    }

    #[test]
    fn scale_produces_prefix_subset() {
        let rng = SimRng::new(7);
        let universe = small_universe();
        let specs = small_specs();
        let (full, _) = generate(&rng, &universe, &specs, 1.0);
        let (small, _) = generate(&rng, &universe, &specs, 0.87);
        assert!(small.len() < full.len());
        let full_subnets: HashSet<String> = full
            .entries()
            .iter()
            .map(|e| e.subnet.to_string())
            .collect();
        let missing = small
            .entries()
            .iter()
            .filter(|e| !full_subnets.contains(&e.subnet.to_string()))
            .count();
        // "Little churn": the smaller list is (almost) contained in the
        // bigger one. Bump allocation makes it exact.
        assert_eq!(missing, 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let universe = small_universe();
        let specs = small_specs();
        let (a, _) = generate(&SimRng::new(3), &universe, &specs, 1.0);
        let (b, _) = generate(&SimRng::new(3), &universe, &specs, 1.0);
        assert_eq!(a.entries()[0], b.entries()[0]);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.entries()[a.len() / 2], b.entries()[b.len() / 2]);
    }

    #[test]
    fn cc_count_respected() {
        let rng = SimRng::new(7);
        let universe = small_universe();
        let specs = small_specs();
        let (list, footprints) = generate(&rng, &universe, &specs, 1.0);
        // Attribute entries to operators via the footprints.
        for (f, s) in footprints.iter().zip(&specs) {
            let ccs: HashSet<CountryCode> = list
                .entries()
                .iter()
                .filter(|e| {
                    f.bgp_v4
                        .iter()
                        .any(|p| IpNet::V4(*p).contains_net(&e.subnet))
                        || f.bgp_v6
                            .iter()
                            .any(|p| IpNet::V6(*p).contains_net(&e.subnet))
                })
                .map(|e| e.cc)
                .collect();
            assert!(
                ccs.len() <= s.cc_count_v6.max(s.cc_count_v4),
                "{}: {} CCs exceeds spec",
                s.asn,
                ccs.len()
            );
        }
    }
}
