//! A deterministic city universe.
//!
//! The egress list maps subnets to `(country, region, city)` triples; the
//! paper's Table 4 counts covered cities per operator (up to 14 k for
//! Akamai&#8239;PR). [`CityUniverse::generate`] synthesises a fixed universe
//! of named cities per country — sized by population weight, coordinates
//! jittered around the country centroid — from which the egress generator
//! samples.

use serde::{Deserialize, Serialize};
use tectonic_net::SimRng;

use crate::country::{all_countries, CountryCode};

/// One city.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name, unique within the universe.
    pub name: String,
    /// Country the city is in.
    pub cc: CountryCode,
    /// Region identifier in Apple's `CC-Region` style (e.g. `US-CA`).
    pub region: String,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
}

/// The full set of cities available to the simulation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CityUniverse {
    cities: Vec<City>,
    /// Index ranges into `cities` per country (start, len).
    index: Vec<(CountryCode, usize, usize)>,
}

impl CityUniverse {
    /// Generates roughly `target_total` cities across all countries,
    /// proportional to population weight with a minimum of 2 per country.
    ///
    /// City coordinates are jittered within a few degrees of the country
    /// centroid; latitudes are clamped to the valid range. Names are
    /// synthetic (`"US-City-0017"`) — the analyses only need identity, not
    /// toponymy.
    pub fn generate(rng: &mut SimRng, target_total: usize) -> CityUniverse {
        let countries = all_countries();
        let total_weight: f64 = countries.iter().map(|c| c.weight).sum();
        let mut cities = Vec::new();
        let mut index = Vec::new();
        for info in &countries {
            let share = info.weight / total_weight;
            let count = ((target_total as f64 * share).round() as usize).max(2);
            let start = cities.len();
            let mut crng = rng.fork(&format!("cities-{}", info.code));
            for i in 0..count {
                // Spread scales gently with city count so big countries
                // occupy more of the map.
                let spread = 2.0 + (count as f64).log10();
                let lat = (info.lat + (crng.unit() - 0.5) * spread).clamp(-89.9, 89.9);
                let mut lon = info.lon + (crng.unit() - 0.5) * spread * 1.5;
                if lon > 180.0 {
                    lon -= 360.0;
                }
                if lon < -180.0 {
                    lon += 360.0;
                }
                let region = format!("{}-R{:02}", info.code, i % 50);
                cities.push(City {
                    name: format!("{}-City-{:04}", info.code, i),
                    cc: info.code,
                    region,
                    lat,
                    lon,
                });
            }
            index.push((info.code, start, count));
        }
        CityUniverse { cities, index }
    }

    /// Total number of cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Cities of one country.
    pub fn cities_of(&self, cc: CountryCode) -> &[City] {
        self.index
            .iter()
            .find(|(c, _, _)| *c == cc)
            .map(|(_, start, len)| &self.cities[*start..*start + *len])
            .unwrap_or(&[])
    }

    /// The countries present, in table order.
    pub fn countries(&self) -> Vec<CountryCode> {
        self.index.iter().map(|(c, _, _)| *c).collect()
    }

    /// A specific city by name.
    pub fn by_name(&self, name: &str) -> Option<&City> {
        self.cities.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn universe() -> CityUniverse {
        CityUniverse::generate(&mut SimRng::new(42), 25_000)
    }

    #[test]
    fn generates_roughly_target_count() {
        let u = universe();
        assert!(
            (20_000..35_000).contains(&u.len()),
            "unexpected size {}",
            u.len()
        );
    }

    #[test]
    fn every_country_has_cities() {
        let u = universe();
        for cc in u.countries() {
            assert!(u.cities_of(cc).len() >= 2, "{cc} has too few cities");
        }
    }

    #[test]
    fn us_has_many_more_cities_than_small_countries() {
        let u = universe();
        let us = u.cities_of(CountryCode::US).len();
        let kn = u.cities_of(CountryCode::new("KN").unwrap()).len();
        assert!(us > 500, "US only has {us} cities");
        assert!(kn < 20, "KN has {kn} cities");
        assert!(us > kn * 10);
    }

    #[test]
    fn names_are_unique_and_typed() {
        let u = universe();
        let names: HashSet<_> = u.cities().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), u.len());
        let c = &u.cities_of(CountryCode::DE)[0];
        assert!(c.name.starts_with("DE-City-"));
        assert!(c.region.starts_with("DE-R"));
    }

    #[test]
    fn coordinates_near_country_centroid() {
        let u = universe();
        let info = crate::country::country_info(CountryCode::DE).unwrap();
        for c in u.cities_of(CountryCode::DE) {
            assert!((c.lat - info.lat).abs() < 10.0);
            assert!((c.lon - info.lon).abs() < 15.0);
            assert!((-90.0..=90.0).contains(&c.lat));
            assert!((-180.0..=180.0).contains(&c.lon));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CityUniverse::generate(&mut SimRng::new(9), 5_000);
        let b = CityUniverse::generate(&mut SimRng::new(9), 5_000);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.cities()[10], b.cities()[10]);
    }

    #[test]
    fn by_name_lookup() {
        let u = universe();
        let first = &u.cities()[0];
        assert_eq!(u.by_name(&first.name), Some(first));
        assert!(u.by_name("Atlantis").is_none());
    }
}
