//! Great-circle geometry.
//!
//! The QoE extension (§6's third future-work question) models RTTs from
//! fibre distance; this module provides the haversine distance between
//! coordinates and country centroids.

use crate::country::{country_info, CountryCode};

/// Mean Earth radius, kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;

/// Great-circle distance between two `(lat, lon)` points, kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

/// Distance between two country centroids, kilometres. `None` when either
/// country is unknown.
pub fn country_distance_km(a: CountryCode, b: CountryCode) -> Option<f64> {
    let ia = country_info(a)?;
    let ib = country_info(b)?;
    Some(haversine_km(ia.lat, ia.lon, ib.lat, ib.lon))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        assert!(haversine_km(48.1, 11.6, 48.1, 11.6) < 1e-9);
        let d = country_distance_km(CountryCode::DE, CountryCode::DE).unwrap();
        assert!(d < 1e-9);
    }

    #[test]
    fn known_distances_are_plausible() {
        // Munich → New York ≈ 6500 km.
        let d = haversine_km(48.14, 11.58, 40.71, -74.01);
        assert!((6000.0..7000.0).contains(&d), "Munich-NYC {d:.0} km");
        // London → Paris ≈ 340 km.
        let d = haversine_km(51.5, -0.13, 48.86, 2.35);
        assert!((300.0..400.0).contains(&d), "London-Paris {d:.0} km");
    }

    #[test]
    fn symmetry_and_positivity() {
        let ab = haversine_km(10.0, 20.0, -30.0, 120.0);
        let ba = haversine_km(-30.0, 120.0, 10.0, 20.0);
        assert!((ab - ba).abs() < 1e-9);
        assert!(ab > 0.0);
        // Never exceeds half the circumference.
        assert!(ab <= std::f64::consts::PI * 6371.0 + 1.0);
    }

    #[test]
    fn country_distance_us_de() {
        let d = country_distance_km(CountryCode::US, CountryCode::DE).unwrap();
        assert!((6000.0..9000.0).contains(&d), "US-DE {d:.0} km");
        assert!(country_distance_km(CountryCode::US, CountryCode::new("ZQ").unwrap()).is_none());
    }

    #[test]
    fn antimeridian_distance_is_short() {
        // Fiji (179°E) to Samoa (-172°W) should be ~1150 km, not ~39000.
        let d = haversine_km(-17.7, 178.0, -13.8, -172.1);
        assert!(d < 2000.0, "antimeridian distance {d:.0} km");
    }
}
