//! Country codes with centroid coordinates and population weights.
//!
//! The table below lists 250 ISO-3166-1-alpha-2-style codes. Coordinates
//! are rough country centroids (degrees) — accurate enough to render the
//! Figure 2/5-style maps and to derive geohashes; they make no claim to
//! surveying precision. The `weight` column is a coarse relative population
//! used when synthesising city universes and client address distributions.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A two-letter country code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Builds a code from two ASCII letters; lower case is folded to upper.
    pub fn new(code: &str) -> Option<CountryCode> {
        let [a, b] = code.as_bytes() else {
            return None;
        };
        let a = a.to_ascii_uppercase();
        let b = b.to_ascii_uppercase();
        if !a.is_ascii_uppercase() || !b.is_ascii_uppercase() {
            return None;
        }
        Some(CountryCode([a, b]))
    }

    /// The United States — the paper's dominant egress location (58 %).
    pub const US: CountryCode = CountryCode(*b"US");
    /// Germany — the second-largest egress location (3.6 %).
    pub const DE: CountryCode = CountryCode(*b"DE");

    /// Parses a compile-time two-letter code, panicking on invalid input.
    ///
    /// For static tables only; never call this on runtime input — use
    /// [`CountryCode::new`] and handle the `None`.
    pub fn literal(code: &str) -> CountryCode {
        // lintkit: allow(no-panic) -- documented literal-only constructor; the single sanctioned panic site for static country codes
        CountryCode::new(code).expect("invalid CountryCode literal")
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        // Constructed from validated ASCII; the fallback is unreachable.
        std::str::from_utf8(&self.0).unwrap_or("??")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CountryCode::new(s).ok_or_else(|| format!("invalid country code {s:?}"))
    }
}

impl TryFrom<String> for CountryCode {
    type Error = String;
    fn try_from(s: String) -> Result<Self, String> {
        s.parse()
    }
}

impl From<CountryCode> for String {
    fn from(c: CountryCode) -> String {
        c.as_str().to_string()
    }
}

/// Static information about one country.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CountryInfo {
    /// The two-letter code.
    pub code: CountryCode,
    /// Approximate centroid latitude, degrees.
    pub lat: f64,
    /// Approximate centroid longitude, degrees.
    pub lon: f64,
    /// Coarse relative population weight (arbitrary units).
    pub weight: f64,
}

/// `(code, lat, lon, weight)` rows; weight is a coarse population proxy.
const TABLE: &[(&str, f64, f64, f64)] = &[
    // Americas
    ("US", 39.8, -98.6, 331.0),
    ("CA", 56.1, -106.3, 38.0),
    ("MX", 23.6, -102.5, 128.0),
    ("BR", -14.2, -51.9, 213.0),
    ("AR", -38.4, -63.6, 45.0),
    ("CL", -35.7, -71.5, 19.0),
    ("CO", 4.6, -74.3, 51.0),
    ("PE", -9.2, -75.0, 33.0),
    ("VE", 6.4, -66.6, 28.0),
    ("EC", -1.8, -78.2, 18.0),
    ("BO", -16.3, -63.6, 12.0),
    ("PY", -23.4, -58.4, 7.0),
    ("UY", -32.5, -55.8, 3.5),
    ("GY", 4.9, -58.9, 0.8),
    ("SR", 3.9, -56.0, 0.6),
    ("GF", 3.9, -53.1, 0.3),
    ("PA", 8.5, -80.8, 4.3),
    ("CR", 9.7, -83.8, 5.1),
    ("NI", 12.9, -85.2, 6.6),
    ("HN", 15.2, -86.2, 10.0),
    ("SV", 13.8, -88.9, 6.5),
    ("GT", 15.8, -90.2, 17.0),
    ("BZ", 17.2, -88.5, 0.4),
    ("CU", 21.5, -77.8, 11.0),
    ("DO", 18.7, -70.2, 10.8),
    ("HT", 19.0, -72.3, 11.4),
    ("JM", 18.1, -77.3, 3.0),
    ("TT", 10.7, -61.2, 1.4),
    ("BB", 13.2, -59.5, 0.3),
    ("BS", 25.0, -77.4, 0.4),
    ("KN", 17.3, -62.7, 0.05),
    ("LC", 13.9, -61.0, 0.18),
    ("VC", 13.3, -61.2, 0.11),
    ("GD", 12.1, -61.7, 0.11),
    ("AG", 17.1, -61.8, 0.1),
    ("DM", 15.4, -61.4, 0.07),
    ("PR", 18.2, -66.4, 3.2),
    ("VI", 18.3, -64.9, 0.1),
    ("VG", 18.4, -64.6, 0.03),
    ("KY", 19.3, -81.3, 0.07),
    ("BM", 32.3, -64.8, 0.06),
    ("AW", 12.5, -70.0, 0.11),
    ("CW", 12.2, -69.0, 0.16),
    ("SX", 18.0, -63.1, 0.04),
    ("TC", 21.7, -71.8, 0.04),
    ("AI", 18.2, -63.1, 0.02),
    ("MS", 16.7, -62.2, 0.005),
    ("GP", 16.3, -61.6, 0.4),
    ("MQ", 14.6, -61.0, 0.37),
    ("BQ", 12.2, -68.3, 0.03),
    ("FK", -51.8, -59.5, 0.003),
    ("GL", 71.7, -42.6, 0.06),
    ("PM", 46.9, -56.3, 0.006),
    // Europe
    ("DE", 51.2, 10.4, 83.0),
    ("GB", 55.4, -3.4, 67.0),
    ("FR", 46.2, 2.2, 67.0),
    ("IT", 41.9, 12.6, 60.0),
    ("ES", 40.5, -3.7, 47.0),
    ("PT", 39.4, -8.2, 10.0),
    ("NL", 52.1, 5.3, 17.5),
    ("BE", 50.5, 4.5, 11.6),
    ("LU", 49.8, 6.1, 0.6),
    ("CH", 46.8, 8.2, 8.7),
    ("AT", 47.5, 14.6, 9.0),
    ("PL", 51.9, 19.1, 38.0),
    ("CZ", 49.8, 15.5, 10.7),
    ("SK", 48.7, 19.7, 5.5),
    ("HU", 47.2, 19.5, 9.7),
    ("RO", 45.9, 25.0, 19.0),
    ("BG", 42.7, 25.5, 6.9),
    ("GR", 39.1, 21.8, 10.4),
    ("SE", 60.1, 18.6, 10.4),
    ("NO", 60.5, 8.5, 5.4),
    ("DK", 56.3, 9.5, 5.8),
    ("FI", 61.9, 25.7, 5.5),
    ("IS", 64.9, -19.0, 0.37),
    ("IE", 53.4, -8.2, 5.0),
    ("EE", 58.6, 25.0, 1.3),
    ("LV", 56.9, 24.6, 1.9),
    ("LT", 55.2, 23.9, 2.8),
    ("UA", 48.4, 31.2, 44.0),
    ("BY", 53.7, 28.0, 9.4),
    ("MD", 47.4, 28.4, 2.6),
    ("RU", 61.5, 105.3, 146.0),
    ("RS", 44.0, 21.0, 6.9),
    ("HR", 45.1, 15.2, 4.0),
    ("SI", 46.2, 14.8, 2.1),
    ("BA", 43.9, 17.7, 3.3),
    ("ME", 42.7, 19.4, 0.6),
    ("MK", 41.6, 21.7, 2.1),
    ("AL", 41.2, 20.2, 2.8),
    ("XK", 42.6, 20.9, 1.8),
    ("TR", 39.0, 35.2, 84.0),
    ("CY", 35.1, 33.4, 1.2),
    ("MT", 35.9, 14.4, 0.5),
    ("AD", 42.5, 1.6, 0.08),
    ("MC", 43.7, 7.4, 0.04),
    ("SM", 43.9, 12.5, 0.03),
    ("VA", 41.9, 12.5, 0.001),
    ("LI", 47.2, 9.6, 0.04),
    ("GI", 36.1, -5.4, 0.03),
    ("JE", 49.2, -2.1, 0.1),
    ("GG", 49.5, -2.6, 0.07),
    ("IM", 54.2, -4.5, 0.08),
    ("FO", 62.0, -6.9, 0.05),
    ("AX", 60.2, 20.0, 0.03),
    ("SJ", 77.6, 16.0, 0.003),
    // Middle East & Central Asia
    ("IL", 31.0, 34.9, 9.3),
    ("PS", 31.9, 35.2, 5.1),
    ("JO", 30.6, 36.2, 10.2),
    ("LB", 33.9, 35.9, 6.8),
    ("SY", 34.8, 39.0, 17.5),
    ("IQ", 33.2, 43.7, 40.0),
    ("IR", 32.4, 53.7, 84.0),
    ("SA", 23.9, 45.1, 35.0),
    ("AE", 23.4, 53.8, 9.9),
    ("QA", 25.4, 51.2, 2.9),
    ("KW", 29.3, 47.5, 4.3),
    ("BH", 26.0, 50.5, 1.7),
    ("OM", 21.5, 55.9, 5.1),
    ("YE", 15.6, 48.0, 30.0),
    ("GE", 42.3, 43.4, 3.7),
    ("AM", 40.1, 45.0, 3.0),
    ("AZ", 40.1, 47.6, 10.1),
    ("KZ", 48.0, 66.9, 19.0),
    ("UZ", 41.4, 64.6, 34.0),
    ("TM", 38.9, 59.6, 6.0),
    ("KG", 41.2, 74.8, 6.6),
    ("TJ", 38.9, 71.3, 9.5),
    ("AF", 33.9, 67.7, 39.0),
    // South & East Asia
    ("IN", 20.6, 79.0, 1380.0),
    ("PK", 30.4, 69.3, 221.0),
    ("BD", 23.7, 90.4, 165.0),
    ("LK", 7.9, 80.8, 22.0),
    ("NP", 28.4, 84.1, 29.0),
    ("BT", 27.5, 90.4, 0.8),
    ("MV", 3.2, 73.2, 0.5),
    ("CN", 35.9, 104.2, 1402.0),
    ("JP", 36.2, 138.3, 126.0),
    ("KR", 35.9, 127.8, 52.0),
    ("KP", 40.3, 127.5, 26.0),
    ("TW", 23.7, 121.0, 24.0),
    ("HK", 22.4, 114.1, 7.5),
    ("MO", 22.2, 113.5, 0.7),
    ("MN", 46.9, 103.8, 3.3),
    ("TH", 15.9, 101.0, 70.0),
    ("VN", 14.1, 108.3, 97.0),
    ("KH", 12.6, 105.0, 17.0),
    ("LA", 19.9, 102.5, 7.3),
    ("MM", 21.9, 95.9, 54.0),
    ("MY", 4.2, 102.0, 32.0),
    ("SG", 1.35, 103.8, 5.7),
    ("ID", -0.8, 113.9, 274.0),
    ("PH", 12.9, 121.8, 110.0),
    ("BN", 4.5, 114.7, 0.44),
    ("TL", -8.9, 125.7, 1.3),
    // Oceania
    ("AU", -25.3, 133.8, 26.0),
    ("NZ", -40.9, 174.9, 5.1),
    ("PG", -6.3, 143.9, 9.0),
    ("FJ", -17.7, 178.0, 0.9),
    ("SB", -9.6, 160.2, 0.7),
    ("VU", -15.4, 166.9, 0.3),
    ("NC", -20.9, 165.6, 0.27),
    ("PF", -17.7, -149.4, 0.28),
    ("WS", -13.8, -172.1, 0.2),
    ("TO", -21.2, -175.2, 0.1),
    ("KI", 1.9, -157.4, 0.12),
    ("FM", 7.4, 150.5, 0.11),
    ("MH", 7.1, 171.2, 0.06),
    ("PW", 7.5, 134.6, 0.018),
    ("NR", -0.5, 166.9, 0.011),
    ("TV", -7.1, 177.6, 0.011),
    ("CK", -21.2, -159.8, 0.017),
    ("NU", -19.1, -169.9, 0.002),
    ("TK", -9.2, -171.8, 0.0013),
    ("WF", -13.8, -177.2, 0.011),
    ("AS", -14.3, -170.7, 0.055),
    ("GU", 13.4, 144.8, 0.17),
    ("MP", 15.1, 145.7, 0.057),
    ("NF", -29.0, 168.0, 0.002),
    ("CX", -10.4, 105.7, 0.002),
    ("CC", -12.2, 96.9, 0.0006),
    // Africa
    ("EG", 26.8, 30.8, 102.0),
    ("LY", 26.3, 17.2, 6.9),
    ("TN", 33.9, 9.5, 11.8),
    ("DZ", 28.0, 1.7, 44.0),
    ("MA", 31.8, -7.1, 37.0),
    ("EH", 24.2, -12.9, 0.6),
    ("MR", 21.0, -10.9, 4.6),
    ("ML", 17.6, -4.0, 20.0),
    ("NE", 17.6, 8.1, 24.0),
    ("TD", 15.5, 18.7, 16.0),
    ("SD", 12.9, 30.2, 44.0),
    ("SS", 7.3, 30.0, 11.0),
    ("ER", 15.2, 39.8, 3.5),
    ("ET", 9.1, 40.5, 115.0),
    ("DJ", 11.8, 42.6, 1.0),
    ("SO", 5.2, 46.2, 16.0),
    ("KE", -0.02, 37.9, 54.0),
    ("UG", 1.4, 32.3, 46.0),
    ("RW", -1.9, 29.9, 13.0),
    ("BI", -3.4, 29.9, 12.0),
    ("TZ", -6.4, 34.9, 60.0),
    ("MZ", -18.7, 35.5, 31.0),
    ("MW", -13.3, 34.3, 19.0),
    ("ZM", -13.1, 27.8, 18.0),
    ("ZW", -19.0, 29.2, 15.0),
    ("BW", -22.3, 24.7, 2.4),
    ("NA", -22.96, 18.5, 2.5),
    ("ZA", -30.6, 22.9, 59.0),
    ("LS", -29.6, 28.2, 2.1),
    ("SZ", -26.5, 31.5, 1.2),
    ("AO", -11.2, 17.9, 33.0),
    ("CD", -4.0, 21.8, 90.0),
    ("CG", -0.2, 15.8, 5.5),
    ("GA", -0.8, 11.6, 2.2),
    ("GQ", 1.6, 10.3, 1.4),
    ("CM", 7.4, 12.4, 27.0),
    ("CF", 6.6, 20.9, 4.8),
    ("NG", 9.1, 8.7, 206.0),
    ("BJ", 9.3, 2.3, 12.0),
    ("TG", 8.6, 0.8, 8.3),
    ("GH", 7.9, -1.0, 31.0),
    ("CI", 7.5, -5.5, 26.0),
    ("LR", 6.4, -9.4, 5.1),
    ("SL", 8.5, -11.8, 8.0),
    ("GN", 9.9, -9.7, 13.0),
    ("GW", 11.8, -15.2, 2.0),
    ("SN", 14.5, -14.5, 17.0),
    ("GM", 13.4, -15.3, 2.4),
    ("CV", 16.0, -24.0, 0.56),
    ("ST", 0.2, 6.6, 0.22),
    ("BF", 12.2, -1.6, 21.0),
    ("MG", -18.8, 47.0, 28.0),
    ("MU", -20.3, 57.6, 1.3),
    ("SC", -4.7, 55.5, 0.1),
    ("KM", -11.6, 43.4, 0.87),
    ("RE", -21.1, 55.5, 0.86),
    ("YT", -12.8, 45.2, 0.27),
    ("SH", -15.97, -5.7, 0.006),
    // Remaining territories and special areas
    ("AQ", -75.3, -0.1, 0.001),
    ("BV", -54.4, 3.4, 0.0001),
    ("GS", -54.4, -36.6, 0.0001),
    ("HM", -53.1, 73.5, 0.0001),
    ("IO", -7.3, 72.4, 0.003),
    ("TF", -49.3, 69.3, 0.0001),
    ("UM", 19.3, 166.6, 0.0003),
    ("PN", -24.4, -128.3, 0.0001),
];

/// All known countries, in table order (US first within the Americas).
pub fn all_countries() -> Vec<CountryInfo> {
    TABLE
        .iter()
        .map(|(code, lat, lon, weight)| CountryInfo {
            code: CountryCode::literal(code),
            lat: *lat,
            lon: *lon,
            weight: *weight,
        })
        .collect()
}

/// Looks up one country by code.
pub fn country_info(code: CountryCode) -> Option<CountryInfo> {
    TABLE.iter().find_map(|(c, lat, lon, weight)| {
        if CountryCode::new(c) == Some(code) {
            Some(CountryInfo {
                code,
                lat: *lat,
                lon: *lon,
                weight: *weight,
            })
        } else {
            None
        }
    })
}

/// The country whose centroid is closest to the given coordinates.
///
/// Used to map a geohash cell (what a relay egress advertises) back to a
/// represented country. Distance is the squared equirectangular
/// approximation — adequate for centroid-granularity matching — with ties
/// broken by table order so the result is deterministic. Longitude wraps
/// at the antimeridian.
pub fn nearest_country(lat: f64, lon: f64) -> CountryInfo {
    let mut best: Option<(f64, CountryInfo)> = None;
    let cos_lat = lat.to_radians().cos();
    for info in all_countries() {
        let dlat = info.lat - lat;
        let mut dlon = (info.lon - lon).abs() % 360.0;
        if dlon > 180.0 {
            dlon = 360.0 - dlon;
        }
        let dlon = dlon * cos_lat;
        let dist = dlat * dlat + dlon * dlon;
        if best.as_ref().is_none_or(|(d, _)| dist < *d) {
            best = Some((dist, info));
        }
    }
    // The table is non-empty by construction; fall back to US regardless.
    best.map(|(_, info)| info).unwrap_or(CountryInfo {
        code: CountryCode::US,
        lat: 39.8,
        lon: -98.6,
        weight: 0.0,
    })
}

/// Countries where a large CDN physically operates points of presence.
///
/// §4.2 compares Akamai's published PoP-country list against the egress
/// list and finds represented countries (e.g. Saint Kitts and Nevis)
/// *without* any point of presence — proof that the published location is
/// the client's represented location, not the relay's. The synthetic PoP
/// list is the top-`n` countries by weight: big markets get
/// infrastructure, microstates do not.
pub fn pop_countries(n: usize) -> Vec<CountryCode> {
    let mut countries = all_countries();
    countries.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    countries.into_iter().take(n).map(|c| c.code).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn codes_parse_and_fold_case() {
        assert_eq!(CountryCode::new("us"), Some(CountryCode::US));
        assert_eq!(CountryCode::US.as_str(), "US");
        assert!(CountryCode::new("USA").is_none());
        assert!(CountryCode::new("U1").is_none());
        assert!(CountryCode::new("").is_none());
        assert_eq!("de".parse::<CountryCode>().unwrap(), CountryCode::DE);
    }

    #[test]
    fn table_is_large_and_unique() {
        let countries = all_countries();
        // Cloudflare covers 248 CCs in the paper; the universe must exceed that.
        assert!(countries.len() >= 248, "only {} countries", countries.len());
        let codes: HashSet<_> = countries.iter().map(|c| c.code).collect();
        assert_eq!(codes.len(), countries.len(), "duplicate codes in table");
    }

    #[test]
    fn coordinates_in_range() {
        for c in all_countries() {
            assert!((-90.0..=90.0).contains(&c.lat), "{}: lat {}", c.code, c.lat);
            assert!(
                (-180.0..=180.0).contains(&c.lon),
                "{}: lon {}",
                c.code,
                c.lon
            );
            assert!(c.weight > 0.0, "{}: nonpositive weight", c.code);
        }
    }

    #[test]
    fn us_has_dominant_weight_among_targets() {
        let us = country_info(CountryCode::US).unwrap();
        let de = country_info(CountryCode::DE).unwrap();
        assert!(us.weight > de.weight);
        assert!((us.lat - 39.8).abs() < 1.0);
    }

    #[test]
    fn pop_countries_are_the_big_markets() {
        let pops = pop_countries(130);
        assert_eq!(pops.len(), 130);
        assert!(pops.contains(&CountryCode::US));
        assert!(pops.contains(&CountryCode::DE));
        // Microstates fall outside the infrastructure footprint.
        assert!(!pops.contains(&CountryCode::new("KN").unwrap()));
        assert!(!pops.contains(&CountryCode::new("NR").unwrap()));
    }

    #[test]
    fn nearest_country_recovers_every_centroid() {
        // A country's own centroid must map back to itself.
        for c in all_countries() {
            assert_eq!(nearest_country(c.lat, c.lon).code, c.code, "{}", c.code);
        }
        // A point jittered off the US centroid still resolves to the US.
        let us = country_info(CountryCode::US).unwrap();
        assert_eq!(nearest_country(us.lat + 1.5, us.lon - 1.5).code, us.code);
    }

    #[test]
    fn lookup_missing_code() {
        assert!(country_info(CountryCode::new("ZQ").unwrap()).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let j = serde_json::to_string(&CountryCode::US).unwrap();
        assert_eq!(j, "\"US\"");
        assert_eq!(
            serde_json::from_str::<CountryCode>(&j).unwrap(),
            CountryCode::US
        );
        assert!(serde_json::from_str::<CountryCode>("\"USA\"").is_err());
    }
}
