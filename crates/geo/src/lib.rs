//! # tectonic-geo
//!
//! Geography for the reproduction of the paper's egress analyses (§4.2,
//! Tables 3–4, Figures 2/4/5):
//!
//! * [`country`] — ISO-style country codes with centroid coordinates and
//!   population weights used to synthesise realistic location skews,
//! * [`city`] — a deterministic city universe (every country gets a set of
//!   cities with jittered coordinates),
//! * [`geohash`] — standard geohash encoding, the mechanism iCloud Private
//!   Relay uses to carry approximate client location to the egress,
//! * [`egress`] — the `egress-ip-ranges.csv` data model: parser/serialiser
//!   for Apple's published format plus a generator calibrated to the
//!   paper's per-operator subnet structure,
//! * [`mmdb`] — a MaxMind-GeoLite2-style lookup database; the paper found
//!   MaxMind had adopted Apple's egress mapping, which is modelled by
//!   building the DB straight from the egress list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod city;
pub mod coords;
pub mod country;
pub mod csv;
pub mod egress;
pub mod geohash;
pub mod mmdb;

pub use city::{City, CityUniverse};
pub use coords::haversine_km;
pub use country::{nearest_country, CountryCode, CountryInfo};
pub use csv::{CsvParseStats, EgressParseError};
pub use egress::{EgressEntry, EgressList, OperatorEgressSpec};
pub use mmdb::{GeoDb, Location};
