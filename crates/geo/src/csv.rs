//! The `egress-ip-ranges.csv` codec.
//!
//! Apple's published format is `subnet,CC,region,city` — one row per
//! egress subnet, blank city when the user withheld their region. Two
//! decoders are provided:
//!
//! * [`parse_csv`] — strict; the first malformed row aborts with a typed
//!   error. For round-trip tests and trusted synthetic inputs.
//! * [`parse_csv_lossy`] — skip-and-count; malformed rows are recorded in
//!   [`CsvParseStats`] and the remaining rows still produce a usable
//!   [`EgressList`]. The live file is fetched from an external endpoint we
//!   do not control, so one corrupt row must never abort a Table 3/4 run.
//!
//! This module is on the hostile-input path and is written without a
//! single slice-index expression (`lintkit`'s `no-index` rule is enforced
//! here in strict mode): fields come off a `split(',')` iterator.

use std::fmt;

use crate::country::CountryCode;
use crate::egress::{EgressEntry, EgressList};
use tectonic_net::IpNet;

/// Errors from parsing the CSV format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EgressParseError {
    /// A row did not have the expected four fields.
    BadRow(usize),
    /// A subnet failed to parse.
    BadSubnet(usize, String),
    /// A country code failed to parse.
    BadCountry(usize, String),
}

impl EgressParseError {
    /// The 1-based line number the error occurred on.
    pub fn line(&self) -> usize {
        match self {
            EgressParseError::BadRow(n)
            | EgressParseError::BadSubnet(n, _)
            | EgressParseError::BadCountry(n, _) => *n,
        }
    }
}

impl fmt::Display for EgressParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EgressParseError::BadRow(n) => write!(f, "line {n}: expected 4 fields"),
            EgressParseError::BadSubnet(n, s) => write!(f, "line {n}: bad subnet {s:?}"),
            EgressParseError::BadCountry(n, s) => write!(f, "line {n}: bad country {s:?}"),
        }
    }
}

impl std::error::Error for EgressParseError {}

/// Outcome counters of a lossy parse.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsvParseStats {
    /// Rows decoded into entries.
    pub rows_ok: usize,
    /// Rows skipped as malformed.
    pub rows_skipped: usize,
    /// The first few row errors, for diagnostics (capped so a wholly
    /// garbage file cannot balloon the report).
    pub errors: Vec<EgressParseError>,
}

/// Cap on retained per-row errors in [`CsvParseStats::errors`].
const MAX_RETAINED_ERRORS: usize = 32;

/// Decodes one trimmed, non-empty row. `lineno` is 1-based.
fn parse_row(lineno: usize, line: &str) -> Result<EgressEntry, EgressParseError> {
    let mut fields = line.split(',');
    let (Some(subnet), Some(cc), Some(region), Some(city), None) = (
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
        fields.next(),
    ) else {
        return Err(EgressParseError::BadRow(lineno));
    };
    let subnet: IpNet = subnet
        .parse()
        .map_err(|_| EgressParseError::BadSubnet(lineno, subnet.into()))?;
    let cc = CountryCode::new(cc).ok_or_else(|| EgressParseError::BadCountry(lineno, cc.into()))?;
    let city = if city.is_empty() {
        None
    } else {
        Some(city.to_string())
    };
    Ok(EgressEntry {
        subnet,
        cc,
        region: region.to_string(),
        city,
    })
}

/// Rows of `text` as `(lineno, trimmed_line)` with blanks removed.
fn rows(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, line)| (i + 1, line.trim()))
        .filter(|(_, line)| !line.is_empty())
}

/// Strict parse: the first malformed row aborts.
pub fn parse_csv(text: &str) -> Result<EgressList, EgressParseError> {
    let mut entries = Vec::new();
    for (lineno, line) in rows(text) {
        entries.push(parse_row(lineno, line)?);
    }
    Ok(EgressList::from_entries(entries))
}

/// Lossy parse: malformed rows are skipped and counted, never fatal.
pub fn parse_csv_lossy(text: &str) -> (EgressList, CsvParseStats) {
    let mut entries = Vec::new();
    let mut stats = CsvParseStats::default();
    for (lineno, line) in rows(text) {
        match parse_row(lineno, line) {
            Ok(entry) => {
                entries.push(entry);
                stats.rows_ok += 1;
            }
            Err(e) => {
                stats.rows_skipped += 1;
                if stats.errors.len() < MAX_RETAINED_ERRORS {
                    stats.errors.push(e);
                }
            }
        }
    }
    (EgressList::from_entries(entries), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_skips_and_counts() {
        let text = "172.224.0.0/27,US,US-CA,Los Angeles\n\
                    junk,US,US-CA,LA\n\
                    1.2.3.0/24,USA,US-CA,LA\n\
                    1.2.3.0/24,US,US-CA\n\
                    146.72.0.0/31,DE,DE-BE,Berlin\n";
        let (list, stats) = parse_csv_lossy(text);
        assert_eq!(list.len(), 2);
        assert_eq!(stats.rows_ok, 2);
        assert_eq!(stats.rows_skipped, 3);
        assert_eq!(stats.errors.len(), 3);
        assert_eq!(
            stats.errors.iter().map(|e| e.line()).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn lossy_on_clean_input_matches_strict() {
        let text = "172.224.0.0/27,US,US-CA,\n2a02:26f7::/64,DE,DE-BE,Berlin\n";
        let strict = parse_csv(text).unwrap();
        let (lossy, stats) = parse_csv_lossy(text);
        assert_eq!(strict.entries(), lossy.entries());
        assert_eq!(stats.rows_skipped, 0);
        assert!(stats.errors.is_empty());
    }

    #[test]
    fn error_retention_is_capped() {
        let garbage = "x\n".repeat(100);
        let (list, stats) = parse_csv_lossy(&garbage);
        assert!(list.is_empty());
        assert_eq!(stats.rows_skipped, 100);
        assert_eq!(stats.errors.len(), MAX_RETAINED_ERRORS);
    }

    #[test]
    fn five_fields_rejected() {
        assert!(matches!(
            parse_csv("1.2.3.0/24,US,US-CA,LA,extra"),
            Err(EgressParseError::BadRow(1))
        ));
    }
}
