//! A MaxMind-GeoLite2-style geolocation database.
//!
//! §4.2 of the paper checks the egress addresses against MaxMind and finds
//! the database has *adopted Apple's egress mapping* for most subnets —
//! i.e. it reports the represented client location, not the relay's
//! physical location. [`GeoDb::from_egress_list`] models exactly that
//! adoption; the egress analysis then demonstrates why such a database
//! cannot be used to locate relay nodes.

use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use tectonic_net::{DeltaOverlay, FrozenLpm, PrefixTrie};

use crate::country::CountryCode;
use crate::egress::EgressList;

/// A geolocation result.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Location {
    /// Country code.
    pub cc: CountryCode,
    /// Region identifier.
    pub region: String,
    /// City, when known.
    pub city: Option<String>,
}

/// A longest-prefix-match geolocation database.
///
/// The trie is the ingest-side structure; [`freeze`](GeoDb::freeze) compiles
/// it into a [`FrozenLpm`] for the query-heavy analyses. Inserting after a
/// freeze keeps the snapshot live: the mapping lands in a [`DeltaOverlay`]
/// consulted after the frozen walk (and is folded into the compiled table
/// once enough patches accumulate), so lookups are always correct —
/// freezing is purely a fast path.
#[derive(Debug, Default)]
pub struct GeoDb {
    trie: PrefixTrie<Location>,
    frozen: Option<FrozenLpm<Location>>,
    delta: DeltaOverlay<Location>,
}

impl GeoDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped prefixes.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// `true` when no prefix is mapped.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Inserts a mapping. A live compiled snapshot is patched through the
    /// delta overlay rather than dropped.
    pub fn insert(&mut self, net: impl Into<tectonic_net::IpNet>, loc: Location) {
        let net = net.into();
        if let Some(frozen) = self.frozen.as_mut() {
            self.delta.announce(net, loc.clone());
            if self.delta.should_compact(frozen.len()) {
                frozen.refreeze_subtree(&self.delta);
                self.delta.clear();
            }
        }
        self.trie.insert(net, loc);
    }

    /// Compiles the current mappings for steady-state lookups.
    pub fn freeze(&mut self) {
        self.frozen = Some(self.trie.freeze());
        self.delta.clear();
    }

    /// `true` when a compiled snapshot is live.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Builds the database by adopting an egress list's represented
    /// locations — the behaviour the paper observed in GeoLite2.
    pub fn from_egress_list(list: &EgressList) -> GeoDb {
        let mut db = GeoDb::new();
        for e in list.entries() {
            db.insert(
                e.subnet,
                Location {
                    cc: e.cc,
                    region: e.region.clone(),
                    city: e.city.clone(),
                },
            );
        }
        db.freeze();
        db
    }

    /// Looks up an address.
    pub fn lookup(&self, addr: IpAddr) -> Option<&Location> {
        match &self.frozen {
            Some(lpm) => self.delta.longest_match(lpm, addr).map(|(_, loc)| loc),
            None => self.trie.longest_match(addr).map(|(_, loc)| loc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egress::EgressEntry;
    use tectonic_net::IpNet;

    fn sample_list() -> EgressList {
        EgressList::from_entries(vec![
            EgressEntry {
                subnet: "172.224.0.0/27".parse().unwrap(),
                cc: CountryCode::US,
                region: "US-CA".into(),
                city: Some("US-City-0001".into()),
            },
            EgressEntry {
                subnet: "172.224.0.32/27".parse().unwrap(),
                cc: CountryCode::DE,
                region: "DE-R01".into(),
                city: None,
            },
            EgressEntry {
                subnet: "2a02:26f7::/64".parse().unwrap(),
                cc: CountryCode::US,
                region: "US-NY".into(),
                city: Some("US-City-0002".into()),
            },
        ])
    }

    #[test]
    fn adopts_egress_mapping() {
        let db = GeoDb::from_egress_list(&sample_list());
        assert_eq!(db.len(), 3);
        let loc = db.lookup("172.224.0.5".parse().unwrap()).unwrap();
        assert_eq!(loc.cc, CountryCode::US);
        assert_eq!(loc.city.as_deref(), Some("US-City-0001"));
        let loc = db.lookup("172.224.0.40".parse().unwrap()).unwrap();
        assert_eq!(loc.cc, CountryCode::DE);
        assert_eq!(loc.city, None);
        let loc6 = db.lookup("2a02:26f7::1234".parse().unwrap()).unwrap();
        assert_eq!(loc6.region, "US-NY");
    }

    #[test]
    fn miss_outside_mapped_space() {
        let db = GeoDb::from_egress_list(&sample_list());
        assert!(db.lookup("8.8.8.8".parse().unwrap()).is_none());
        assert!(db.lookup("2001:db8::1".parse().unwrap()).is_none());
    }

    #[test]
    fn insert_after_freeze_patches_and_stays_correct() {
        let mut db = GeoDb::from_egress_list(&sample_list());
        assert!(db.is_frozen());
        db.insert(
            "172.224.0.0/24".parse::<IpNet>().unwrap(),
            Location {
                cc: CountryCode::literal("GB"),
                region: "GB-R00".into(),
                city: None,
            },
        );
        // The compiled snapshot survives: the insert went through the
        // delta overlay instead of invalidating.
        assert!(db.is_frozen());
        // More-specific /27 from the egress list still wins...
        let loc = db.lookup("172.224.0.5".parse().unwrap()).unwrap();
        assert_eq!(loc.cc, CountryCode::US);
        // ...and the new covering /24 answers the gap between the /27s.
        let loc = db.lookup("172.224.0.200".parse().unwrap()).unwrap();
        assert_eq!(loc.cc, CountryCode::literal("GB"));
        // Re-freezing gives the same answers from the compiled table.
        db.freeze();
        assert!(db.is_frozen());
        assert_eq!(
            db.lookup("172.224.0.200".parse().unwrap()).unwrap().cc,
            CountryCode::literal("GB")
        );
        assert_eq!(
            db.lookup("172.224.0.40".parse().unwrap()).unwrap().cc,
            CountryCode::DE
        );
    }

    #[test]
    fn manual_insert_longest_match() {
        let mut db = GeoDb::new();
        db.insert(
            "10.0.0.0/8".parse::<IpNet>().unwrap(),
            Location {
                cc: CountryCode::US,
                region: "US-R00".into(),
                city: None,
            },
        );
        db.insert(
            "10.1.0.0/16".parse::<IpNet>().unwrap(),
            Location {
                cc: CountryCode::DE,
                region: "DE-R00".into(),
                city: None,
            },
        );
        assert_eq!(
            db.lookup("10.1.2.3".parse().unwrap()).unwrap().cc,
            CountryCode::DE
        );
        assert_eq!(
            db.lookup("10.9.9.9".parse().unwrap()).unwrap().cc,
            CountryCode::US
        );
        assert!(!db.is_empty());
    }
}
