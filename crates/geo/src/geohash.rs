//! Geohash encoding and decoding.
//!
//! iCloud Private Relay communicates the client's approximate location to
//! the egress layer as a geohash derived from IP geolocation (§2, §6). The
//! correlation analysis reasons about what an egress operator learns from
//! that geohash, so the standard base-32 geohash is implemented here.

/// The geohash base-32 alphabet (no a, i, l, o).
const ALPHABET: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Encodes `(lat, lon)` to a geohash of `precision` characters.
///
/// `lat` is clamped to ±90, `lon` to ±180; `precision` to 1..=12.
///
/// ```
/// // Munich, the authors' vantage point.
/// let hash = tectonic_geo::geohash::encode(48.137, 11.575, 6);
/// assert!(hash.starts_with("u28"));
/// ```
pub fn encode(lat: f64, lon: f64, precision: usize) -> String {
    let lat = lat.clamp(-90.0, 90.0);
    let lon = lon.clamp(-180.0, 180.0);
    let precision = precision.clamp(1, 12);
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let mut hash = String::with_capacity(precision);
    let mut bits = 0u8;
    let mut bit_count = 0;
    let mut even = true; // even bit = longitude
    while hash.len() < precision {
        if even {
            let mid = (lon_lo + lon_hi) / 2.0;
            if lon >= mid {
                bits = (bits << 1) | 1;
                lon_lo = mid;
            } else {
                bits <<= 1;
                lon_hi = mid;
            }
        } else {
            let mid = (lat_lo + lat_hi) / 2.0;
            if lat >= mid {
                bits = (bits << 1) | 1;
                lat_lo = mid;
            } else {
                bits <<= 1;
                lat_hi = mid;
            }
        }
        even = !even;
        bit_count += 1;
        if bit_count == 5 {
            // Five bits can only address the 32-entry alphabet; the
            // fallback keeps the encoder total without an index panic.
            hash.push(*ALPHABET.get(bits as usize).unwrap_or(&b'0') as char);
            bits = 0;
            bit_count = 0;
        }
    }
    hash
}

/// A decoded geohash cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeohashCell {
    /// Cell-centre latitude.
    pub lat: f64,
    /// Cell-centre longitude.
    pub lon: f64,
    /// Half-height of the cell in degrees latitude.
    pub lat_err: f64,
    /// Half-width of the cell in degrees longitude.
    pub lon_err: f64,
}

/// Decodes a geohash into its cell. Returns `None` on invalid characters or
/// an empty string.
pub fn decode(hash: &str) -> Option<GeohashCell> {
    if hash.is_empty() {
        return None;
    }
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lon_lo, mut lon_hi) = (-180.0f64, 180.0f64);
    let mut even = true;
    for ch in hash.bytes() {
        let ch = ch.to_ascii_lowercase();
        let value = ALPHABET.iter().position(|c| *c == ch)? as u8;
        for shift in (0..5).rev() {
            let bit = (value >> shift) & 1;
            if even {
                let mid = (lon_lo + lon_hi) / 2.0;
                if bit == 1 {
                    lon_lo = mid;
                } else {
                    lon_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if bit == 1 {
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
            even = !even;
        }
    }
    Some(GeohashCell {
        lat: (lat_lo + lat_hi) / 2.0,
        lon: (lon_lo + lon_hi) / 2.0,
        lat_err: (lat_hi - lat_lo) / 2.0,
        lon_err: (lon_hi - lon_lo) / 2.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Classic reference point: 57.64911, 10.40744 → "u4pruydqqvj".
        assert_eq!(encode(57.64911, 10.40744, 11), "u4pruydqqvj");
        // Null island.
        assert_eq!(encode(0.0, 0.0, 5), "s0000");
        // Munich (the authors' vantage point) starts with "u28".
        assert!(encode(48.137, 11.575, 6).starts_with("u28"));
    }

    #[test]
    fn decode_recovers_point_within_cell() {
        let h = encode(37.7749, -122.4194, 8);
        let cell = decode(&h).unwrap();
        assert!((cell.lat - 37.7749).abs() <= cell.lat_err);
        assert!((cell.lon + 122.4194).abs() <= cell.lon_err);
        assert!(cell.lat_err < 0.0005);
    }

    #[test]
    fn precision_grows_monotonically() {
        let mut prev_err = f64::MAX;
        for p in 1..=12 {
            let cell = decode(&encode(48.1, 11.5, p)).unwrap();
            assert!(cell.lat_err < prev_err);
            prev_err = cell.lat_err;
        }
    }

    #[test]
    fn prefix_property() {
        // A longer hash of the same point starts with the shorter hash.
        let short = encode(-33.86, 151.21, 4);
        let long = encode(-33.86, 151.21, 9);
        assert!(long.starts_with(&short));
    }

    #[test]
    fn decode_rejects_invalid() {
        assert!(decode("").is_none());
        assert!(decode("abc!").is_none());
        assert!(decode("aaa").is_none()); // 'a' not in the alphabet
    }

    #[test]
    fn clamps_out_of_range_inputs() {
        let a = encode(95.0, 0.0, 6);
        let b = encode(90.0, 0.0, 6);
        assert_eq!(a, b);
        let c = encode(0.0, 200.0, 6);
        let d = encode(0.0, 180.0, 6);
        assert_eq!(c, d);
        // Precision clamps instead of panicking.
        assert_eq!(encode(1.0, 1.0, 0).len(), 1);
        assert_eq!(encode(1.0, 1.0, 99).len(), 12);
    }

    #[test]
    fn case_insensitive_decode() {
        let cell_l = decode("u4pruy").unwrap();
        let cell_u = decode("U4PRUY").unwrap();
        assert_eq!(cell_l, cell_u);
    }
}
