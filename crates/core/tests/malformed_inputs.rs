//! Malformed-input regression tests: hostile or corrupt external data must
//! degrade into skip counts on the reports, never abort a run.
//!
//! These pin the PR's two acceptance fixtures: a truncated DNS reply and a
//! corrupt `egress-ip-ranges.csv` row.

use tectonic_core::ecs_scan::EcsScanner;
use tectonic_core::egress_analysis::EgressAnalysis;
use tectonic_core::report::{render_table3, render_table4};
use tectonic_dns::server::{NameServer, QueryContext, ServerReply};
use tectonic_geo::egress::EgressList;
use tectonic_net::{Epoch, SimClock};
use tectonic_relay::{Deployment, DeploymentConfig, Domain};

/// Forwards to a real authoritative server but truncates every reply to its
/// first `keep` bytes — a lossy middlebox chopping UDP payloads.
struct TruncatingServer<S> {
    inner: S,
    keep: usize,
}

impl<S: NameServer> NameServer for TruncatingServer<S> {
    fn handle_query(&self, wire: &[u8], ctx: &QueryContext) -> ServerReply {
        match self.inner.handle_query(wire, ctx) {
            ServerReply::Response(mut bytes) => {
                bytes.truncate(self.keep);
                ServerReply::Response(bytes)
            }
            ServerReply::Dropped => ServerReply::Dropped,
        }
    }
}

#[test]
fn truncated_replies_are_counted_not_fatal() {
    let d = Deployment::build(7, DeploymentConfig::scaled(4096));
    // 6 bytes is past the message ID but inside the fixed header: every
    // reply decodes as Truncated.
    let auth = TruncatingServer {
        inner: d.auth_server_unlimited(),
        keep: 6,
    };
    let scanner = EcsScanner::default();
    let mut clock = SimClock::new(Epoch::Apr2022.start());
    let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
    assert!(
        report.queries_sent > 0,
        "the scan must still run to completion"
    );
    assert!(
        report.decode_errors > 0,
        "truncated replies must be counted on the report"
    );
    assert_eq!(report.decode_errors, report.queries_sent);
    assert_eq!(report.total(), 0, "no address may be invented from garbage");
}

#[test]
fn corrupt_egress_rows_skip_and_count_without_aborting_tables() {
    let d = Deployment::build(7, DeploymentConfig::scaled(4096));
    let mut text = d.egress_list.to_csv();
    // Splice four corrupt rows in among the good ones: wrong field count
    // (short and long), an unparseable subnet, and free-form junk.
    text.push_str("17.100.0.0/24,US,US-CA\n");
    text.push_str("17.100.1.0/24,US,US-CA,Cupertino,extra\n");
    text.push_str("not-a-subnet,US,US-CA,Cupertino\n");
    text.push_str("<html>503 Service Unavailable</html>\n");
    let (list, stats) = EgressList::parse_csv_lossy(&text);
    assert_eq!(
        stats.rows_skipped, 4,
        "exactly the corrupt rows are dropped"
    );
    assert_eq!(stats.rows_ok, list.len());
    assert!(!stats.errors.is_empty(), "skipped rows retain their errors");
    assert!(!list.is_empty(), "the good rows all survive");

    // Tables 3 and 4 still render from the lossy list — the paper artefact
    // degrades gracefully instead of aborting.
    let analysis = EgressAnalysis::new(&list, &d.rib);
    let t3 = render_table3(&analysis.table3());
    let t4 = render_table4(&analysis.table4());
    assert!(t3.contains("Table 3"), "table 3 renders: {t3:?}");
    assert!(t4.contains("Table 4"), "table 4 renders: {t4:?}");
}
