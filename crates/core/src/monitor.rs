//! Longitudinal scan monitoring (§6 future work: "How does the system
//! evolve, and where is it available?").
//!
//! The authors committed to regular re-scans published at
//! `relay-networks.github.io`. This module is the tooling for that: diff
//! two scan snapshots (added/removed addresses, per-AS deltas, churn) and
//! fold a sequence of scans into an evolution timeline.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, Epoch};

use crate::ecs_scan::EcsScanReport;

/// Differences between two scan snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanDiff {
    /// Addresses present only in the newer scan.
    pub added: BTreeSet<Ipv4Addr>,
    /// Addresses present only in the older scan.
    pub removed: BTreeSet<Ipv4Addr>,
    /// Addresses present in both.
    pub stable: usize,
    /// `removed / old_total` — how much of the old fleet vanished.
    pub churn_rate: f64,
    /// `(new_total - old_total) / old_total`.
    pub growth_rate: f64,
    /// Per-AS `(old, new)` counts.
    pub by_as: Vec<(Asn, usize, usize)>,
}

impl ScanDiff {
    /// Diffs `new` against `old`.
    pub fn between(old: &EcsScanReport, new: &EcsScanReport) -> ScanDiff {
        let added: BTreeSet<Ipv4Addr> = new
            .discovered
            .difference(&old.discovered)
            .copied()
            .collect();
        let removed: BTreeSet<Ipv4Addr> = old
            .discovered
            .difference(&new.discovered)
            .copied()
            .collect();
        let stable = old.discovered.intersection(&new.discovered).count();
        let old_total = old.total().max(1) as f64;
        let mut asns: BTreeSet<Asn> = old.by_ingress_as.keys().copied().collect();
        asns.extend(new.by_ingress_as.keys().copied());
        let by_as = asns
            .into_iter()
            .map(|asn| (asn, old.count_for(asn), new.count_for(asn)))
            .collect();
        let churn_rate = removed.len() as f64 / old_total;
        ScanDiff {
            added,
            removed,
            stable,
            churn_rate,
            growth_rate: (new.total() as f64 - old.total() as f64) / old_total,
            by_as,
        }
    }
}

/// One point of the evolution timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionPoint {
    /// The scan epoch.
    pub epoch: Epoch,
    /// Total addresses.
    pub total: usize,
    /// Per-AS counts.
    pub by_as: Vec<(Asn, usize)>,
    /// Diff against the previous point (`None` for the first).
    pub diff: Option<ScanDiff>,
}

/// Folds a chronological scan sequence into a timeline.
pub fn evolution(scans: &[(Epoch, EcsScanReport)]) -> Vec<EvolutionPoint> {
    let mut out = Vec::with_capacity(scans.len());
    for (i, (epoch, scan)) in scans.iter().enumerate() {
        let diff = if i > 0 {
            Some(ScanDiff::between(&scans[i - 1].1, scan))
        } else {
            None
        };
        out.push(EvolutionPoint {
            epoch: *epoch,
            total: scan.total(),
            by_as: Asn::INGRESS_OPERATORS
                .iter()
                .map(|asn| (*asn, scan.count_for(*asn)))
                .collect(),
            diff,
        });
    }
    out
}

/// Renders the timeline.
pub fn render_evolution(points: &[EvolutionPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Ingress fleet evolution");
    let _ = writeln!(
        out,
        "{:<6} | {:>6} | {:>7} {:>7} | {:>6} {:>7} {:>7}",
        "epoch", "total", "Apple", "Akamai", "added", "removed", "churn"
    );
    for p in points {
        let apple = p
            .by_as
            .iter()
            .find(|(a, _)| *a == Asn::APPLE)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let akamai = p
            .by_as
            .iter()
            .find(|(a, _)| *a == Asn::AKAMAI_PR)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        match &p.diff {
            Some(d) => {
                let _ = writeln!(
                    out,
                    "{:<6} | {:>6} | {:>7} {:>7} | {:>6} {:>7} {:>6.1}%",
                    p.epoch.label(),
                    p.total,
                    apple,
                    akamai,
                    d.added.len(),
                    d.removed.len(),
                    d.churn_rate * 100.0
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<6} | {:>6} | {:>7} {:>7} | {:>6} {:>7} {:>7}",
                    p.epoch.label(),
                    p.total,
                    apple,
                    akamai,
                    "-",
                    "-",
                    "-"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecs_scan::EcsScanner;
    use tectonic_net::SimClock;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    fn scans() -> Vec<(Epoch, EcsScanReport)> {
        let d = Deployment::build(21, DeploymentConfig::scaled(512));
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        Epoch::SCANS
            .iter()
            .map(|epoch| {
                let mut clock = SimClock::new(epoch.start());
                (
                    *epoch,
                    scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock),
                )
            })
            .collect()
    }

    #[test]
    fn diff_partitions_addresses() {
        let scans = scans();
        let diff = ScanDiff::between(&scans[0].1, &scans[3].1);
        assert_eq!(
            diff.stable + diff.removed.len(),
            scans[0].1.total(),
            "old = stable + removed"
        );
        assert_eq!(
            diff.stable + diff.added.len(),
            scans[3].1.total(),
            "new = stable + added"
        );
        // Fleets grow as prefix windows: low churn, positive growth.
        assert!(diff.growth_rate > 0.2, "growth {:.3}", diff.growth_rate);
        assert!(diff.churn_rate < 0.1, "churn {:.3}", diff.churn_rate);
    }

    #[test]
    fn per_as_deltas_match_totals() {
        let scans = scans();
        let diff = ScanDiff::between(&scans[0].1, &scans[3].1);
        let old_sum: usize = diff.by_as.iter().map(|(_, o, _)| o).sum();
        let new_sum: usize = diff.by_as.iter().map(|(_, _, n)| n).sum();
        assert_eq!(old_sum, scans[0].1.total());
        assert_eq!(new_sum, scans[3].1.total());
        // Akamai grows; Apple roughly steady (Table 1's pattern).
        let akamai = diff
            .by_as
            .iter()
            .find(|(a, _, _)| *a == Asn::AKAMAI_PR)
            .unwrap();
        assert!(akamai.2 > akamai.1);
    }

    #[test]
    fn evolution_timeline_is_chronological() {
        let scans = scans();
        let points = evolution(&scans);
        assert_eq!(points.len(), 4);
        assert!(points[0].diff.is_none());
        for p in &points[1..] {
            assert!(p.diff.is_some());
        }
        // Totals never shrink drastically in the observation window.
        for pair in points.windows(2) {
            assert!(pair[1].total as f64 > pair[0].total as f64 * 0.95);
        }
        let text = render_evolution(&points);
        assert!(text.contains("Jan"));
        assert!(text.contains("Apr"));
    }

    #[test]
    fn identical_scans_diff_to_zero() {
        let scans = scans();
        let diff = ScanDiff::between(&scans[2].1, &scans[2].1);
        assert!(diff.added.is_empty());
        assert!(diff.removed.is_empty());
        assert_eq!(diff.churn_rate, 0.0);
        assert_eq!(diff.growth_rate, 0.0);
    }
}
