//! QUIC probing of ingress nodes (§3, R7).
//!
//! Sends both probe variants against the ingress behaviour model and
//! tallies the outcomes — the paper's two observations: standard Initials
//! time out, forced negotiation reveals QUIC v1 + drafts 29–27.

use serde::{Deserialize, Serialize};
use tectonic_quic::{ProbeOutcome, QuicProber};
use tectonic_relay::Deployment;

/// Aggregated probing outcomes across sampled ingress nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuicProbeReport {
    /// Ingress addresses probed.
    pub probed: usize,
    /// Standard-Initial probes that received no answer.
    pub standard_timeouts: usize,
    /// Probes whose datagrams never reached the ingress at all (injected
    /// network blackhole, not the ingress's deliberate Initial-drop
    /// policy). Always zero outside fault-injection runs.
    pub blackholed: usize,
    /// Forced-negotiation probes answered with Version Negotiation.
    pub negotiations: usize,
    /// The version sets observed, deduplicated (expected: exactly one —
    /// v1 + drafts 29–27).
    pub version_sets: Vec<Vec<u32>>,
}

impl QuicProbeReport {
    /// Probes every Akamai PR and Apple QUIC-domain ingress node.
    ///
    /// The simulated fleet shares one behaviour object, but the probe loop
    /// mirrors the real scan's per-address structure so per-node
    /// divergence would be caught.
    pub fn probe(deployment: &Deployment, sample: usize) -> QuicProbeReport {
        QuicProbeReport::probe_with(deployment, sample, &mut || false)
    }

    /// Like [`probe`](QuicProbeReport::probe), but asks `blackholed`
    /// before each probe whether the network eats this exchange outright
    /// (fault injection). A blackholed probe counts as a standard-Initial
    /// timeout — indistinguishable on the wire from the ingress's own
    /// silent drop — and never reaches the negotiation step.
    pub fn probe_with(
        deployment: &Deployment,
        sample: usize,
        blackholed: &mut dyn FnMut() -> bool,
    ) -> QuicProbeReport {
        let behavior = deployment.fleets.quic_behavior();
        let prober = QuicProber;
        let mut report = QuicProbeReport {
            probed: 0,
            standard_timeouts: 0,
            blackholed: 0,
            negotiations: 0,
            version_sets: Vec::new(),
        };
        for _ in 0..sample.max(1) {
            report.probed += 1;
            if blackholed() {
                report.blackholed += 1;
                report.standard_timeouts += 1;
                continue;
            }
            let (standard, negotiated) = prober.probe_ingress(behavior);
            if standard == ProbeOutcome::Timeout {
                report.standard_timeouts += 1;
            }
            if let ProbeOutcome::VersionNegotiation(versions) = negotiated {
                report.negotiations += 1;
                if !report.version_sets.contains(&versions) {
                    report.version_sets.push(versions);
                }
            }
        }
        report
    }

    /// Whether the observations match the paper exactly.
    pub fn matches_paper(&self) -> bool {
        self.standard_timeouts == self.probed
            && self.negotiations == self.probed
            && self.version_sets.len() == 1
            && self.version_sets[0] == tectonic_quic::INGRESS_SUPPORTED_VERSIONS.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_relay::DeploymentConfig;

    #[test]
    fn probe_reproduces_paper_observation() {
        let d = Deployment::build(88, DeploymentConfig::scaled(2048));
        let report = QuicProbeReport::probe(&d, 50);
        assert_eq!(report.probed, 50);
        assert_eq!(report.standard_timeouts, 50);
        assert_eq!(report.negotiations, 50);
        assert!(report.matches_paper());
        // The advertised set is v1 + drafts 29..27.
        assert_eq!(report.version_sets[0].len(), 4);
        assert_eq!(report.version_sets[0][0], tectonic_quic::VERSION_V1);
    }

    #[test]
    fn zero_sample_clamps_to_one() {
        let d = Deployment::build(88, DeploymentConfig::scaled(2048));
        let report = QuicProbeReport::probe(&d, 0);
        assert_eq!(report.probed, 1);
    }
}
