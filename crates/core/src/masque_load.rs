//! Traffic-scale load testing of the CONNECT-UDP data plane (§4).
//!
//! The paper measured iCloud Private Relay's egress behaviour with
//! five-minute curl polls over 48 h. This module reruns those findings as
//! a *load test*: thousands of concurrent relay sessions — each a token
//! admission at the ingress, a CONNECT open at the egress, a datagram
//! exchange and a close — driven either serially ([`run_serial`]) or
//! through the sharded discrete-event engine ([`run_engine`]). Both paths
//! produce a byte-identical [`StormReport`], which is the determinism
//! contract the equivalence tests pin: same seed ⇒ same per-session
//! metrics at any worker count.
//!
//! Sharding: client `c` lives on shard `c % shards`; each session's egress
//! lives on a shard derived from `(operator, geohash)`, so ingress→egress
//! datagrams are genuine cross-shard sends riding the engine's lookahead
//! window. Setting the network hop equal to the engine lookahead makes the
//! engine's conservative delivery clamp (`max(at, now + lookahead)`) agree
//! exactly with the serial path's `arrival = send + hop` arithmetic.
//!
//! Faults: every client→egress datagram crosses a [`DatagramChannel`].
//! The trait keeps this crate free of a `simnet` dependency — the chaos
//! pipeline (which has one) adapts `FaultedChannel` behind it, while
//! [`PerfectChannel`] runs the loss-free load test. Datagram payloads are
//! fixed-shape sealed records, so whatever a faulty channel does to the
//! bytes is detectably invalid at the egress and lands in a counter:
//! `sent == forwarded + channel drops` and `forwarded == delivered +
//! session drops` reconcile exactly.

use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use tectonic_engine::{Engine, EngineConfig, ShardCtx, ShardModel};
use tectonic_geo::country::{country_info, CountryCode};
use tectonic_geo::geohash;
use tectonic_net::{Asn, SimDuration, SimRng, SimTime};
use tectonic_relay::masque::{build_connect, Transport};
use tectonic_relay::session::{
    frame_datagram, open_payload, seal_payload, unframe_datagram, DatagramOutcome, EgressNode,
    IngressNode, SessionReport,
};
use tectonic_relay::{Deployment, EgressSelector};

/// Geohash precision advertised to the egress (matches `relay::masque`).
const GEOHASH_PRECISION: usize = 4;

/// Applies channel effects to one client→egress datagram.
///
/// Implementations must be deterministic per `(shard, call sequence)`:
/// both drivers call `transfer` for the same shard in the same order, and
/// the byte-identical-report guarantee extends only to channels honouring
/// that. `now` is the datagram's send time (burst/outage windows key on
/// it); `src` is the sending client.
pub trait DatagramChannel: Sync {
    /// The wire as the egress receives it, or `None` when lost in flight.
    fn transfer(&self, shard: usize, src: IpAddr, now: SimTime, wire: &[u8]) -> Option<Vec<u8>>;
}

/// The loss-free channel: every datagram arrives untouched.
pub struct PerfectChannel;

impl DatagramChannel for PerfectChannel {
    fn transfer(&self, _shard: usize, _src: IpAddr, _now: SimTime, wire: &[u8]) -> Option<Vec<u8>> {
        Some(wire.to_vec())
    }
}

/// Shape of one session storm.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// Number of client agent pairs (each runs Safari + curl in parallel).
    pub clients: u32,
    /// Consecutive request rounds per client.
    pub rounds: u32,
    /// Datagrams each session sends before closing.
    pub datagrams_per_session: u32,
    /// Per-user daily token budget at the ingress.
    pub per_day_tokens: u32,
    /// Storm start (keep it away from a 3 h operator-stickiness boundary
    /// when asserting operator stability).
    pub start: SimTime,
    /// Per-client kick offset (keeps per-shard event times distinct).
    pub stagger: SimDuration,
    /// Gap between a client's consecutive rounds.
    pub round_spacing: SimDuration,
    /// Gap between a session's datagrams (also sets session lifetime).
    pub datagram_gap: SimDuration,
    /// One-way ingress→egress network hop; [`run_engine`] uses it as the
    /// engine lookahead so both drivers agree on arrival times.
    pub hop: SimDuration,
    /// Shard count — fixes the partition (and the per-shard channel call
    /// sequences), so it is part of the scenario, not a tuning knob.
    pub shards: usize,
    /// Seed for client keys and per-session draws.
    pub seed: u64,
}

impl StormConfig {
    /// A storm sized for tests: `clients × rounds × 2` sessions.
    pub fn sized(clients: u32, rounds: u32, seed: u64) -> StormConfig {
        StormConfig {
            clients,
            rounds,
            datagrams_per_session: 4,
            per_day_tokens: u32::MAX,
            start: SimTime::from_ymd(2022, 5, 10),
            stagger: SimDuration::from_millis(1),
            round_spacing: SimDuration::from_secs(5),
            datagram_gap: SimDuration::from_millis(500),
            hop: SimDuration::from_millis(10),
            shards: 8,
            seed,
        }
    }

    /// Total sessions attempted (before token rejection).
    pub fn attempted_sessions(&self) -> u64 {
        u64::from(self.clients) * u64::from(self.rounds) * 2
    }

    fn kick_time(&self, client: u32) -> SimTime {
        self.start + self.stagger.times(u64::from(client))
    }

    fn session_id(&self, client: u32, round: u32, agent: u32) -> u64 {
        (u64::from(client) * u64::from(self.rounds) + u64::from(round)) * 2 + u64::from(agent) + 1
    }

    fn chain_id(&self, client: u32, agent: u32) -> u64 {
        u64::from(client) * 2 + u64::from(agent) + 1
    }

    /// Inverts [`StormConfig::session_id`].
    fn split_session_id(&self, sid: u64) -> (u32, u32, u32) {
        let z = sid - 1;
        let agent = (z % 2) as u32;
        let cr = z / 2;
        let round = (cr % u64::from(self.rounds.max(1))) as u32;
        let client = (cr / u64::from(self.rounds.max(1))) as u32;
        (client, round, agent)
    }
}

/// One pre-derived client: everything both drivers need, computed once so
/// neither consumes shared randomness during the run.
#[derive(Clone, Debug)]
struct ClientSpec {
    /// Stable selector key (stands in for the blinded client identity).
    key: u64,
    /// The client's source address.
    addr: IpAddr,
    /// The client's country.
    cc: CountryCode,
    /// The geohash cell advertised in the CONNECT.
    geohash: String,
    /// Every 16th client sits behind a UDP-hostile network (§2 fallback).
    udp_blocked: bool,
}

fn client_specs(deployment: &Deployment, cfg: &StormConfig) -> Vec<ClientSpec> {
    let ases = deployment.world.ases();
    (0..cfg.clients)
        .map(|c| {
            let spread = ases.len().max(1);
            let ase = &ases[c as usize % spread];
            let (lat, lon) = country_info(ase.cc)
                .map(|i| (i.lat, i.lon))
                .unwrap_or((0.0, 0.0));
            ClientSpec {
                key: SimRng::new(cfg.seed)
                    .fork_indexed("storm-client", u64::from(c))
                    .next_u64_raw(),
                addr: IpAddr::V4(ase.host_addr(u64::from(c) / spread as u64)),
                cc: ase.cc,
                geohash: geohash::encode(lat, lon, GEOHASH_PRECISION),
                udp_blocked: c % 16 == 15,
            }
        })
        .collect()
}

fn fnv(seed: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = seed ^ 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// The shard a session's egress lives on: keyed by `(operator, geohash)`,
/// so one cell's sessions share an egress node (and its rotation chains).
fn egress_shard(operator: Asn, cell: &str, shards: usize) -> usize {
    let h = fnv(
        fnv(0, operator.value().to_be_bytes()),
        cell.bytes().collect::<Vec<u8>>(),
    );
    (h % shards.max(1) as u64) as usize
}

fn ingress_addr(shard: usize) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(
        172,
        64,
        (shard >> 8) as u8,
        (shard & 0xFF) as u8,
    ))
}

fn agent_target(agent: u32) -> &'static str {
    if agent == 0 {
        "observer.scan.example:443"
    } else {
        "ipecho.net:80"
    }
}

/// Events routed through the engine (and mirrored by the serial driver).
enum StormEvent {
    /// Start client `c`: admit its sessions and emit every timed send.
    Kick(u32),
    /// A CONNECT arriving at the egress shard (reliable stream framing —
    /// QUIC retransmits it, so it does not cross the lossy channel).
    Open {
        sid: u64,
        chain: u64,
        operator: Asn,
        wire: Vec<u8>,
        transport: Transport,
    },
    /// A tunnelled datagram arriving at the egress (post-channel bytes).
    Packet { sid: u64, wire: Vec<u8> },
    /// Session close arriving at the egress (reliable framing again).
    Close { sid: u64 },
    /// An echo reply arriving back at the client's shard.
    Reply { sid: u64, wire: Vec<u8> },
}

/// Per-shard results folded into the [`StormReport`].
struct ShardOut {
    reports: Vec<SessionReport>,
    tokens_issued: u64,
    token_rejections: u64,
    no_operator: u64,
    datagrams_sent: u64,
    datagrams_forwarded: u64,
    replies_received: u64,
    strays: u64,
}

/// One engine shard: hosts the ingress (with its issuer ledger) for its
/// resident clients and the egress node for its share of cells.
struct StormShard<'a> {
    cfg: &'a StormConfig,
    specs: &'a [ClientSpec],
    selector: Arc<EgressSelector>,
    channel: &'a dyn DatagramChannel,
    shard: usize,
    ingress: IngressNode,
    egress: EgressNode,
    no_operator: u64,
    datagrams_sent: u64,
    datagrams_forwarded: u64,
    replies_received: u64,
}

impl StormShard<'_> {
    /// Emits every send for one client. All arrival times are pure
    /// arithmetic over the kick time, which is what lets the serial driver
    /// reproduce them without an event queue.
    fn kick(&mut self, client: u32, now: SimTime, ctx: &mut ShardCtx<StormEvent>) {
        let cfg = self.cfg;
        let Some(spec) = self.specs.get(client as usize) else {
            return;
        };
        let transport = if spec.udp_blocked {
            Transport::TcpFallback
        } else {
            Transport::Quic
        };
        for round in 0..cfg.rounds {
            let t_open = now + cfg.round_spacing.times(u64::from(round));
            let Some(operator) = self.selector.operator_for(spec.key, spec.cc, t_open) else {
                self.no_operator += 2;
                continue;
            };
            let dest = egress_shard(operator, &spec.geohash, ctx.shard_count());
            for agent in 0..2u32 {
                if self.ingress.admit(u64::from(client), t_open).is_err() {
                    continue;
                }
                let sid = cfg.session_id(client, round, agent);
                ctx.send(
                    dest,
                    t_open + cfg.hop,
                    StormEvent::Open {
                        sid,
                        chain: cfg.chain_id(client, agent),
                        operator,
                        wire: build_connect(agent_target(agent), &spec.geohash),
                        transport,
                    },
                );
                for k in 0..cfg.datagrams_per_session {
                    let t_send = t_open + cfg.datagram_gap.times(u64::from(k) + 1);
                    let wire = frame_datagram(&seal_payload(sid, k), transport);
                    self.datagrams_sent += 1;
                    if let Some(wire) = self.channel.transfer(self.shard, spec.addr, t_send, &wire)
                    {
                        self.datagrams_forwarded += 1;
                        ctx.send(dest, t_send + cfg.hop, StormEvent::Packet { sid, wire });
                    }
                }
                let t_close = t_open
                    + cfg
                        .datagram_gap
                        .times(u64::from(cfg.datagrams_per_session) + 1);
                ctx.send(dest, t_close + cfg.hop, StormEvent::Close { sid });
            }
        }
    }

    fn reply_valid(&self, sid: u64, wire: &[u8]) -> bool {
        let (client, _, _) = self.cfg.split_session_id(sid);
        let transport = match self.specs.get(client as usize) {
            Some(spec) if spec.udp_blocked => Transport::TcpFallback,
            Some(_) => Transport::Quic,
            None => return false,
        };
        unframe_datagram(wire, transport)
            .and_then(|p| open_payload(&p))
            .is_some_and(|(echo_sid, _)| echo_sid == sid)
    }
}

impl ShardModel for StormShard<'_> {
    type Event = StormEvent;
    type Out = ShardOut;

    fn handle(&mut self, now: SimTime, event: StormEvent, ctx: &mut ShardCtx<StormEvent>) {
        match event {
            StormEvent::Kick(client) => self.kick(client, now, ctx),
            StormEvent::Open {
                sid,
                chain,
                operator,
                wire,
                transport,
            } => {
                // CONNECTs ride the reliable stream; a parse failure here
                // would be a harness bug, and shows up as a missing report.
                let _ = self
                    .egress
                    .open(sid, chain, operator, &wire, transport, now);
            }
            StormEvent::Packet { sid, wire } => {
                if let DatagramOutcome::Reply(reply) = self.egress.datagram(sid, &wire) {
                    let (client, _, _) = self.cfg.split_session_id(sid);
                    let dest = client as usize % ctx.shard_count();
                    ctx.send(
                        dest,
                        now + self.cfg.hop,
                        StormEvent::Reply { sid, wire: reply },
                    );
                }
            }
            StormEvent::Close { sid } => {
                let _ = self.egress.close(sid, now);
            }
            StormEvent::Reply { sid, wire } => {
                if self.reply_valid(sid, &wire) {
                    self.replies_received += 1;
                }
            }
        }
    }

    fn finish(self) -> ShardOut {
        let strays = self.egress.strays;
        ShardOut {
            reports: self.egress.into_reports(),
            tokens_issued: self.ingress.accepted,
            token_rejections: self.ingress.rejected,
            no_operator: self.no_operator,
            datagrams_sent: self.datagrams_sent,
            datagrams_forwarded: self.datagrams_forwarded,
            replies_received: self.replies_received,
            strays,
        }
    }
}

/// The merged result of one storm — identical bytes from both drivers.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct StormReport {
    /// Client count (report-side key for decoding session ids).
    pub clients: u32,
    /// Rounds per client.
    pub rounds: u32,
    /// Every closed session, sorted by session id.
    pub sessions: Vec<SessionReport>,
    /// Tokens the ingress issued (accepted admissions).
    pub tokens_issued: u64,
    /// Admissions rejected by the daily budget.
    pub token_rejections: u64,
    /// Sessions skipped because no operator served the location.
    pub no_operator: u64,
    /// Datagrams clients injected into the channel.
    pub datagrams_sent: u64,
    /// Datagrams that survived the channel (arrived at the egress).
    pub datagrams_forwarded: u64,
    /// Datagrams the egress accepted as valid (sum of session
    /// `datagrams_in`).
    pub datagrams_delivered: u64,
    /// Datagrams that arrived damaged and were dropped at the egress (sum
    /// of session `drops`).
    pub session_drops: u64,
    /// Echo replies clients received and validated.
    pub replies_received: u64,
    /// Datagrams for already-closed or never-opened sessions.
    pub strays: u64,
    /// Peak simultaneously-open sessions across all egress shards.
    pub peak_concurrent: u64,
}

/// §4.3 rotation statistics derived from a [`StormReport`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RotationStats {
    /// Chains (client agents) with at least one session.
    pub chains: u64,
    /// Consecutive same-agent session pairs.
    pub consecutive_pairs: u64,
    /// Pairs whose egress address differed (§4.3: >66 % expected with the
    /// three-address cell pool).
    pub consecutive_rotated: u64,
    /// Pairs whose egress *operator* differed (§4.3: sticky ⇒ ~0 within a
    /// stickiness window).
    pub operator_changes: u64,
    /// Same-client same-round Safari/curl pairs.
    pub parallel_pairs: u64,
    /// Parallel pairs that got distinct addresses.
    pub parallel_distinct: u64,
}

impl RotationStats {
    /// Fraction of consecutive pairs that rotated the address.
    pub fn consecutive_rate(&self) -> f64 {
        if self.consecutive_pairs == 0 {
            return 0.0;
        }
        self.consecutive_rotated as f64 / self.consecutive_pairs as f64
    }

    /// Fraction of parallel pairs with distinct addresses.
    pub fn parallel_rate(&self) -> f64 {
        if self.parallel_pairs == 0 {
            return 0.0;
        }
        self.parallel_distinct as f64 / self.parallel_pairs as f64
    }
}

impl StormReport {
    /// Derives the §4.3 rotation/stickiness statistics.
    pub fn rotation_stats(&self) -> RotationStats {
        let cfg_rounds = u64::from(self.rounds.max(1));
        let mut chains: BTreeMap<u64, Vec<&SessionReport>> = BTreeMap::new();
        for s in &self.sessions {
            chains.entry(s.chain).or_default().push(s);
        }
        let mut stats = RotationStats {
            chains: chains.len() as u64,
            consecutive_pairs: 0,
            consecutive_rotated: 0,
            operator_changes: 0,
            parallel_pairs: 0,
            parallel_distinct: 0,
        };
        for sessions in chains.values() {
            for pair in sessions.windows(2) {
                stats.consecutive_pairs += 1;
                if pair[0].addr != pair[1].addr {
                    stats.consecutive_rotated += 1;
                }
                if pair[0].operator != pair[1].operator {
                    stats.operator_changes += 1;
                }
            }
        }
        // Parallel pairs: sid of agent 0 is odd (2·(c·rounds+r)+1), its
        // partner is sid+1.
        let by_sid: BTreeMap<u64, &SessionReport> =
            self.sessions.iter().map(|s| (s.session_id, s)).collect();
        for (sid, a) in &by_sid {
            if (sid - 1) % 2 != 0 {
                continue;
            }
            let _ = cfg_rounds;
            if let Some(b) = by_sid.get(&(sid + 1)) {
                stats.parallel_pairs += 1;
                if a.addr != b.addr {
                    stats.parallel_distinct += 1;
                }
            }
        }
        stats
    }

    /// Sum of per-session rotation flags (cross-check against
    /// [`RotationStats::consecutive_rotated`]).
    pub fn counter_rotations(&self) -> u64 {
        self.sessions.iter().map(|s| s.counters.rotations).sum()
    }

    /// Human-readable summary lines for chaos artifacts.
    pub fn render(&self) -> Vec<String> {
        let stats = self.rotation_stats();
        vec![
            format!(
                "masque storm: {} sessions ({} peak concurrent), {} tokens issued, {} rejected",
                self.sessions.len(),
                self.peak_concurrent,
                self.tokens_issued,
                self.token_rejections
            ),
            format!(
                "masque datagrams: {} sent, {} forwarded, {} delivered, {} dropped, {} replies",
                self.datagrams_sent,
                self.datagrams_forwarded,
                self.datagrams_delivered,
                self.session_drops,
                self.replies_received
            ),
            format!(
                "masque rotation: consecutive {:.1}% ({}/{}), parallel distinct {:.1}% ({}/{}), operator changes {}",
                100.0 * stats.consecutive_rate(),
                stats.consecutive_rotated,
                stats.consecutive_pairs,
                100.0 * stats.parallel_rate(),
                stats.parallel_distinct,
                stats.parallel_pairs,
                stats.operator_changes
            ),
        ]
    }
}

fn merge(cfg: &StormConfig, outs: Vec<ShardOut>) -> StormReport {
    let mut report = StormReport {
        clients: cfg.clients,
        rounds: cfg.rounds,
        sessions: Vec::new(),
        tokens_issued: 0,
        token_rejections: 0,
        no_operator: 0,
        datagrams_sent: 0,
        datagrams_forwarded: 0,
        datagrams_delivered: 0,
        session_drops: 0,
        replies_received: 0,
        strays: 0,
        peak_concurrent: 0,
    };
    for out in outs {
        report.sessions.extend(out.reports);
        report.tokens_issued += out.tokens_issued;
        report.token_rejections += out.token_rejections;
        report.no_operator += out.no_operator;
        report.datagrams_sent += out.datagrams_sent;
        report.datagrams_forwarded += out.datagrams_forwarded;
        report.replies_received += out.replies_received;
        report.strays += out.strays;
    }
    report.sessions.sort_by_key(|s| s.session_id);
    for s in &report.sessions {
        report.datagrams_delivered += s.counters.datagrams_in;
        report.session_drops += s.counters.drops;
    }
    // Peak concurrency: a sweep over (open, close) intervals; opens sort
    // before closes at equal times, so a back-to-back handover counts as
    // overlapping. Partition-independent by construction.
    let mut edges: Vec<(u64, i8)> = Vec::with_capacity(report.sessions.len() * 2);
    for s in &report.sessions {
        edges.push((s.counters.opened_at.as_millis(), 0));
        if let Some(closed) = s.counters.closed_at {
            edges.push((closed.as_millis(), 1));
        }
    }
    edges.sort_unstable();
    let mut live: i64 = 0;
    for (_, kind) in edges {
        if kind == 0 {
            live += 1;
            report.peak_concurrent = report.peak_concurrent.max(live as u64);
        } else {
            live -= 1;
        }
    }
    report
}

/// Runs the storm through the sharded engine with `workers` workers.
///
/// The report is byte-identical to [`run_serial`] with the same config and
/// an equivalent channel, at any worker count.
pub fn run_engine(
    deployment: &Deployment,
    cfg: &StormConfig,
    channel: &dyn DatagramChannel,
    workers: usize,
) -> StormReport {
    let engine = EngineConfig::new(cfg.shards, workers).with_lookahead(cfg.hop);
    let selector = deployment.egress_selector();
    let specs = client_specs(deployment, cfg);
    let models: Vec<StormShard<'_>> = (0..engine.shards)
        .map(|s| StormShard {
            cfg,
            specs: &specs,
            selector: selector.clone(),
            channel,
            shard: s,
            ingress: IngressNode::new(ingress_addr(s), cfg.per_day_tokens),
            egress: EgressNode::new(selector.clone(), cfg.seed ^ 0xE6E5_5010),
            no_operator: 0,
            datagrams_sent: 0,
            datagrams_forwarded: 0,
            replies_received: 0,
        })
        .collect();
    let mut eng = Engine::new(&engine, models, &SimRng::new(cfg.seed ^ 0x5702_34C1));
    for c in 0..cfg.clients {
        eng.seed(
            c as usize % cfg.shards.max(1),
            cfg.kick_time(c),
            StormEvent::Kick(c),
        );
    }
    merge(cfg, eng.run())
}

/// Runs the storm serially — no event queue, no threads — reproducing the
/// engine's per-shard state sequences by pure iteration order: clients in
/// index order touch their shard's ingress, channel and egress in exactly
/// the order the engine's time-sorted queues would.
pub fn run_serial(
    deployment: &Deployment,
    cfg: &StormConfig,
    channel: &dyn DatagramChannel,
) -> StormReport {
    let selector = deployment.egress_selector();
    let specs = client_specs(deployment, cfg);
    let shards = cfg.shards.max(1);
    let mut ingress: Vec<IngressNode> = (0..shards)
        .map(|s| IngressNode::new(ingress_addr(s), cfg.per_day_tokens))
        .collect();
    let mut egress: Vec<EgressNode> = (0..shards)
        .map(|_| EgressNode::new(selector.clone(), cfg.seed ^ 0xE6E5_5010))
        .collect();
    let mut no_operator = 0u64;
    let mut datagrams_sent = 0u64;
    let mut datagrams_forwarded = 0u64;
    let mut replies_received = 0u64;
    for (c, spec) in specs.iter().enumerate() {
        let client = c as u32;
        let shard = c % shards;
        let kick = cfg.kick_time(client);
        let transport = if spec.udp_blocked {
            Transport::TcpFallback
        } else {
            Transport::Quic
        };
        for round in 0..cfg.rounds {
            let t_open = kick + cfg.round_spacing.times(u64::from(round));
            let Some(operator) = selector.operator_for(spec.key, spec.cc, t_open) else {
                no_operator += 2;
                continue;
            };
            let dest = egress_shard(operator, &spec.geohash, shards);
            for agent in 0..2u32 {
                if ingress[shard].admit(u64::from(client), t_open).is_err() {
                    continue;
                }
                let sid = cfg.session_id(client, round, agent);
                let node = &mut egress[dest];
                let _ = node.open(
                    sid,
                    cfg.chain_id(client, agent),
                    operator,
                    &build_connect(agent_target(agent), &spec.geohash),
                    transport,
                    t_open + cfg.hop,
                );
                for k in 0..cfg.datagrams_per_session {
                    let t_send = t_open + cfg.datagram_gap.times(u64::from(k) + 1);
                    let wire = frame_datagram(&seal_payload(sid, k), transport);
                    datagrams_sent += 1;
                    let Some(wire) = channel.transfer(shard, spec.addr, t_send, &wire) else {
                        continue;
                    };
                    datagrams_forwarded += 1;
                    if let DatagramOutcome::Reply(reply) = node.datagram(sid, &wire) {
                        let ok = unframe_datagram(&reply, transport)
                            .and_then(|p| open_payload(&p))
                            .is_some_and(|(echo_sid, _)| echo_sid == sid);
                        if ok {
                            replies_received += 1;
                        }
                    }
                }
                let t_close = t_open
                    + cfg
                        .datagram_gap
                        .times(u64::from(cfg.datagrams_per_session) + 1);
                let _ = node.close(sid, t_close + cfg.hop);
            }
        }
    }
    let outs: Vec<ShardOut> = ingress
        .into_iter()
        .zip(egress)
        .enumerate()
        .map(|(s, (ing, eg))| {
            let strays = eg.strays;
            ShardOut {
                reports: eg.into_reports(),
                tokens_issued: ing.accepted,
                token_rejections: ing.rejected,
                no_operator: if s == 0 { no_operator } else { 0 },
                datagrams_sent: if s == 0 { datagrams_sent } else { 0 },
                datagrams_forwarded: if s == 0 { datagrams_forwarded } else { 0 },
                replies_received: if s == 0 { replies_received } else { 0 },
                strays,
            }
        })
        .collect();
    merge(cfg, outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_relay::DeploymentConfig;

    fn deployment() -> Deployment {
        Deployment::build(21, DeploymentConfig::scaled(512))
    }

    #[test]
    fn serial_and_engine_agree_byte_for_byte() {
        let d = deployment();
        let cfg = StormConfig::sized(48, 3, 0xA11CE);
        let serial = run_serial(&d, &cfg, &PerfectChannel);
        for workers in [1, 2, 4] {
            let engine = run_engine(&d, &cfg, &PerfectChannel, workers);
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&engine).unwrap(),
                "workers={workers}"
            );
        }
        assert_eq!(serial.sessions.len() as u64, cfg.attempted_sessions());
    }

    #[test]
    fn perfect_channel_conserves_every_datagram() {
        let d = deployment();
        let cfg = StormConfig::sized(32, 2, 7);
        let report = run_serial(&d, &cfg, &PerfectChannel);
        assert_eq!(report.datagrams_sent, report.datagrams_forwarded);
        assert_eq!(report.datagrams_forwarded, report.datagrams_delivered);
        assert_eq!(report.session_drops, 0);
        assert_eq!(report.replies_received, report.datagrams_delivered);
        assert_eq!(report.strays, 0);
        assert_eq!(report.token_rejections, 0);
        assert_eq!(report.tokens_issued, cfg.attempted_sessions());
        assert_eq!(
            report.datagrams_sent,
            cfg.attempted_sessions() * u64::from(cfg.datagrams_per_session)
        );
    }

    #[test]
    fn token_budget_caps_sessions_per_client() {
        let d = deployment();
        let mut cfg = StormConfig::sized(12, 3, 9);
        // 3 rounds × 2 agents = 6 attempts per client; budget 5 rejects
        // exactly the last attempt of every client.
        cfg.per_day_tokens = 5;
        let report = run_serial(&d, &cfg, &PerfectChannel);
        assert_eq!(report.token_rejections, u64::from(cfg.clients));
        assert_eq!(
            report.tokens_issued,
            cfg.attempted_sessions() - u64::from(cfg.clients)
        );
        assert_eq!(
            report.sessions.len() as u64,
            cfg.attempted_sessions() - u64::from(cfg.clients)
        );
    }

    #[test]
    fn rotation_stats_match_session_counters() {
        let d = deployment();
        let cfg = StormConfig::sized(64, 4, 3);
        let report = run_serial(&d, &cfg, &PerfectChannel);
        let stats = report.rotation_stats();
        assert_eq!(stats.chains, u64::from(cfg.clients) * 2);
        assert_eq!(
            stats.consecutive_pairs,
            u64::from(cfg.clients) * 2 * u64::from(cfg.rounds - 1)
        );
        // The per-session rotation counters and the report-level pairing
        // are two independent derivations of the same quantity.
        assert_eq!(stats.consecutive_rotated, report.counter_rotations());
        // Operator stickiness: zero changes inside a 3 h window.
        assert_eq!(stats.operator_changes, 0);
    }

    #[test]
    fn sessions_overlap_into_real_concurrency() {
        let d = deployment();
        let cfg = StormConfig::sized(40, 2, 5);
        let report = run_serial(&d, &cfg, &PerfectChannel);
        // 40 clients × 2 agents open within 40 ms of each other and stay
        // open for 2.5 s: all of a round's sessions overlap.
        assert!(
            report.peak_concurrent >= u64::from(cfg.clients) * 2,
            "peak {} < {}",
            report.peak_concurrent,
            cfg.clients * 2
        );
    }

    #[test]
    fn lossy_channel_accounting_reconciles() {
        /// Deterministically drops every third datagram and corrupts every
        /// seventh (post-drop) — content-independent so both drivers see
        /// the same sequence.
        struct Lossy {
            calls: std::sync::Mutex<Vec<u64>>,
        }
        impl DatagramChannel for Lossy {
            fn transfer(
                &self,
                shard: usize,
                _src: IpAddr,
                _now: SimTime,
                wire: &[u8],
            ) -> Option<Vec<u8>> {
                let mut calls = self.calls.lock().unwrap();
                let n = &mut calls[shard];
                *n += 1;
                if n.is_multiple_of(3) {
                    return None;
                }
                if n.is_multiple_of(7) {
                    let mut w = wire.to_vec();
                    if let Some(b) = w.get_mut(1) {
                        *b ^= 0xFF;
                    }
                    return Some(w);
                }
                Some(wire.to_vec())
            }
        }
        let d = deployment();
        let cfg = StormConfig::sized(32, 2, 11);
        let channel = || Lossy {
            calls: std::sync::Mutex::new(vec![0; cfg.shards]),
        };
        let serial = run_serial(&d, &cfg, &channel());
        let engine = run_engine(&d, &cfg, &channel(), 4);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&engine).unwrap()
        );
        // sent = forwarded + channel drops; forwarded = delivered + drops.
        assert!(serial.datagrams_forwarded < serial.datagrams_sent);
        assert!(serial.session_drops > 0);
        assert_eq!(
            serial.datagrams_forwarded,
            serial.datagrams_delivered + serial.session_drops
        );
        assert_eq!(serial.replies_received, serial.datagrams_delivered);
    }
}
