//! Through-relay scans (§4.3, Figure 3).
//!
//! Drives a simulated macOS device the way the authors drove theirs: a
//! Safari + curl request pair every round (five minutes for the operator
//! series, 30 seconds for the fine-grained rotation run), in both the
//! open-DNS and the fixed-DNS configuration. The observing web server's
//! log — egress operator and address per request — is the output.

use serde::{Deserialize, Serialize};
use tectonic_dns::server::NameServer;
use tectonic_net::{Asn, SimDuration, SimTime};
use tectonic_relay::client::{ClientRequest, Device};

/// Scan schedule configuration.
#[derive(Debug, Clone)]
pub struct RelayScanConfig {
    /// Interval between request rounds.
    pub interval: SimDuration,
    /// Total scan duration.
    pub duration: SimDuration,
}

impl RelayScanConfig {
    /// The Figure 3 schedule: one round every 5 minutes for a day.
    pub fn operator_series() -> RelayScanConfig {
        RelayScanConfig {
            interval: SimDuration::from_mins(5),
            duration: SimDuration::from_hours(24),
        }
    }

    /// The fine-grained rotation schedule: every 30 s for 48 h.
    pub fn rotation_series() -> RelayScanConfig {
        RelayScanConfig {
            interval: SimDuration::from_secs(30),
            duration: SimDuration::from_hours(48),
        }
    }

    /// Number of rounds in the schedule.
    pub fn rounds(&self) -> u64 {
        self.duration.as_millis() / self.interval.as_millis().max(1)
    }
}

/// One logged round of the scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanRound {
    /// Seconds since scan start (the Figure 3 x-axis).
    pub relative_secs: u64,
    /// The Safari request's observations.
    pub safari: LoggedRequest,
    /// The curl request's observations.
    pub curl: LoggedRequest,
}

/// What the observer server logged for one request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedRequest {
    /// Egress operator.
    pub operator: Asn,
    /// Egress address (as a string for serialisation stability).
    pub egress_addr: String,
    /// Egress subnet.
    pub egress_subnet: String,
}

impl LoggedRequest {
    fn from_request(r: &ClientRequest) -> LoggedRequest {
        LoggedRequest {
            operator: r.egress.operator,
            egress_addr: r.egress.addr.to_string(),
            egress_subnet: r.egress.subnet.to_string(),
        }
    }
}

/// The full scan series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelayScanSeries {
    /// All rounds in order.
    pub rounds: Vec<ScanRound>,
    /// Rounds that failed (DNS failure etc.).
    pub failures: u64,
}

impl RelayScanSeries {
    /// Runs the scan with `device` starting at `start`.
    pub fn run(
        device: &Device,
        auth: &dyn NameServer,
        config: &RelayScanConfig,
        start: SimTime,
    ) -> RelayScanSeries {
        let mut rounds = Vec::with_capacity(config.rounds() as usize);
        let mut failures = 0;
        for i in 0..config.rounds() {
            let now = start + SimDuration::from_millis(config.interval.as_millis() * i);
            match device.request_pair(auth, now) {
                Ok((safari, curl)) => rounds.push(ScanRound {
                    relative_secs: (now - start).as_secs(),
                    safari: LoggedRequest::from_request(&safari),
                    curl: LoggedRequest::from_request(&curl),
                }),
                Err(_) => failures += 1,
            }
        }
        RelayScanSeries { rounds, failures }
    }

    /// The Figure 3 series: `(relative_secs, operator)` per round, based on
    /// the curl request (the paper plots one series per scan).
    pub fn operator_series(&self) -> Vec<(u64, Asn)> {
        self.rounds
            .iter()
            .map(|r| (r.relative_secs, r.curl.operator))
            .collect()
    }

    /// Times at which the egress operator changed (Figure 3's marks).
    pub fn operator_changes(&self) -> Vec<u64> {
        self.rounds
            .windows(2)
            .filter(|w| w[0].curl.operator != w[1].curl.operator)
            .map(|w| w[1].relative_secs)
            .collect()
    }

    /// Distinct operators observed over the scan.
    pub fn operators_seen(&self) -> Vec<Asn> {
        let mut ops: Vec<Asn> = self.rounds.iter().map(|r| r.curl.operator).collect();
        ops.sort();
        ops.dedup();
        ops
    }

    /// Flattens the curl request log (for the rotation statistics).
    pub fn curl_requests(&self) -> Vec<&LoggedRequest> {
        self.rounds.iter().map(|r| &r.curl).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_geo::country::CountryCode;
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, DnsMode};

    fn series(mode: DnsMode) -> (Deployment, RelayScanSeries) {
        let d = Deployment::build(66, DeploymentConfig::scaled(512));
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::DE, mode);
        let s = RelayScanSeries::run(
            &device,
            &auth,
            &RelayScanConfig::operator_series(),
            Epoch::May2022.start(),
        );
        (d, s)
    }

    #[test]
    fn full_day_of_rounds() {
        let (_, s) = series(DnsMode::Open);
        assert_eq!(s.rounds.len(), 288);
        assert_eq!(s.failures, 0);
        assert_eq!(s.rounds[0].relative_secs, 0);
        assert_eq!(s.rounds[1].relative_secs, 300);
    }

    #[test]
    fn operator_changes_are_a_handful() {
        let (_, s) = series(DnsMode::Open);
        let changes = s.operator_changes();
        assert!(
            changes.len() <= 10,
            "too many operator changes: {}",
            changes.len()
        );
    }

    #[test]
    fn fixed_dns_also_runs() {
        let d = Deployment::build(66, DeploymentConfig::scaled(512));
        let forced = d.fleets.fleet_v4(
            Epoch::Apr2022,
            tectonic_relay::Domain::MaskQuic,
            Asn::AKAMAI_PR,
        )[0];
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::DE, DnsMode::Fixed(forced));
        let s = RelayScanSeries::run(
            &device,
            &auth,
            &RelayScanConfig::operator_series(),
            Epoch::May2022.start(),
        );
        assert_eq!(s.rounds.len(), 288);
        assert_eq!(s.failures, 0);
    }

    #[test]
    fn observed_operators_are_egress_operators() {
        let (_, s) = series(DnsMode::Open);
        for op in s.operators_seen() {
            assert!(Asn::EGRESS_OPERATORS.contains(&op), "{op} not an egress AS");
        }
    }

    #[test]
    fn schedules_have_paper_shape() {
        assert_eq!(RelayScanConfig::operator_series().rounds(), 288);
        assert_eq!(RelayScanConfig::rotation_series().rounds(), 5760);
    }

    #[test]
    fn series_round_trips_through_json() {
        let (_, s) = series(DnsMode::Open);
        let json = serde_json::to_string(&s).unwrap();
        let back: RelayScanSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
