//! Through-relay scans (§4.3, Figure 3).
//!
//! Drives a simulated macOS device the way the authors drove theirs: a
//! Safari + curl request pair every round (five minutes for the operator
//! series, 30 seconds for the fine-grained rotation run), in both the
//! open-DNS and the fixed-DNS configuration. The observing web server's
//! log — egress operator and address per request — is the output.

use serde::{Deserialize, Serialize};
use tectonic_dns::server::NameServer;
use tectonic_engine::{Engine, EngineConfig, ShardCtx, ShardModel};
use tectonic_net::{Asn, SimDuration, SimRng, SimTime};
use tectonic_relay::client::{ClientRequest, Device};

/// Scan schedule configuration.
#[derive(Debug, Clone)]
pub struct RelayScanConfig {
    /// Interval between request rounds.
    pub interval: SimDuration,
    /// Total scan duration.
    pub duration: SimDuration,
}

impl RelayScanConfig {
    /// The Figure 3 schedule: one round every 5 minutes for a day.
    pub fn operator_series() -> RelayScanConfig {
        RelayScanConfig {
            interval: SimDuration::from_mins(5),
            duration: SimDuration::from_hours(24),
        }
    }

    /// The fine-grained rotation schedule: every 30 s for 48 h.
    pub fn rotation_series() -> RelayScanConfig {
        RelayScanConfig {
            interval: SimDuration::from_secs(30),
            duration: SimDuration::from_hours(48),
        }
    }

    /// Number of rounds in the schedule.
    pub fn rounds(&self) -> u64 {
        self.duration.as_millis() / self.interval.as_millis().max(1)
    }
}

/// One logged round of the scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanRound {
    /// Seconds since scan start (the Figure 3 x-axis).
    pub relative_secs: u64,
    /// The Safari request's observations.
    pub safari: LoggedRequest,
    /// The curl request's observations.
    pub curl: LoggedRequest,
}

/// What the observer server logged for one request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedRequest {
    /// Egress operator.
    pub operator: Asn,
    /// Egress address (as a string for serialisation stability).
    pub egress_addr: String,
    /// Egress subnet.
    pub egress_subnet: String,
}

impl LoggedRequest {
    fn from_request(r: &ClientRequest) -> LoggedRequest {
        LoggedRequest {
            operator: r.egress.operator,
            egress_addr: r.egress.addr.to_string(),
            egress_subnet: r.egress.subnet.to_string(),
        }
    }
}

/// The full scan series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelayScanSeries {
    /// All rounds in order.
    pub rounds: Vec<ScanRound>,
    /// Rounds that failed (DNS failure etc.).
    pub failures: u64,
}

impl RelayScanSeries {
    /// Runs the scan with `device` starting at `start`.
    pub fn run(
        device: &Device,
        auth: &dyn NameServer,
        config: &RelayScanConfig,
        start: SimTime,
    ) -> RelayScanSeries {
        let mut rounds = Vec::with_capacity(config.rounds() as usize);
        let mut failures = 0;
        for i in 0..config.rounds() {
            let now = start + SimDuration::from_millis(config.interval.as_millis() * i);
            match device.request_pair(auth, now) {
                Ok((safari, curl)) => rounds.push(ScanRound {
                    relative_secs: (now - start).as_secs(),
                    safari: LoggedRequest::from_request(&safari),
                    curl: LoggedRequest::from_request(&curl),
                }),
                Err(_) => failures += 1,
            }
        }
        RelayScanSeries { rounds, failures }
    }

    /// Runs the scan on the sharded discrete-event engine.
    ///
    /// Rounds are dealt to shards in contiguous index ranges (so the
    /// merged log stays in round order) and each round is one scheduled
    /// event at its legacy wall-clock instant. Connection ids are assigned
    /// per round — round `i` uses `first_connection_id + 2i + 1` (Safari)
    /// and `+ 2i + 2` (curl) — so for a failure-free series on a fresh
    /// device (pass `first_connection_id = 0`) the output is byte-equal to
    /// [`RelayScanSeries::run`]; a caller continuing an existing device
    /// passes the number of connections it has already made.
    ///
    /// `servers` is indexed `shard % servers.len()`, like
    /// [`crate::ecs_scan::EcsScanner::scan_engine_sharded`]. Rounds are
    /// time-staggered, so a conservative lookahead would serialise the
    /// shards; since rounds share no cross-shard events, the engine runs
    /// with a lookahead covering the whole schedule, letting every shard
    /// process its range in one window.
    pub fn run_engine(
        device: &Device,
        servers: &[&(dyn NameServer + Sync)],
        config: &RelayScanConfig,
        start: SimTime,
        first_connection_id: u64,
        engine: &EngineConfig,
    ) -> RelayScanSeries {
        let Some(&first_server) = servers.first() else {
            return RelayScanSeries {
                rounds: Vec::new(),
                failures: 0,
            };
        };
        let rounds = config.rounds();
        let shards = engine.shards.max(1) as u64;
        let per_shard = rounds.div_ceil(shards.max(1)).max(1);
        let models: Vec<RoundShard<'_>> = (0..shards)
            .map(|s| RoundShard {
                device,
                auth: servers
                    .get((s as usize) % servers.len())
                    .copied()
                    .unwrap_or(first_server),
                start,
                first_connection_id,
                rounds: Vec::new(),
                failures: 0,
            })
            .collect();
        // No cross-shard events: one window must span the whole schedule.
        let config_wide = EngineConfig {
            lookahead: config.duration + config.interval,
            ..engine.clone()
        };
        let mut eng = Engine::new(&config_wide, models, &SimRng::new(0x5CA9));
        for i in 0..rounds {
            let shard = (i / per_shard).min(shards - 1) as usize;
            let at = start + SimDuration::from_millis(config.interval.as_millis() * i);
            eng.seed(shard, at, i);
        }
        let mut merged = RelayScanSeries {
            rounds: Vec::new(),
            failures: 0,
        };
        for (rounds, failures) in eng.run() {
            merged.rounds.extend(rounds);
            merged.failures += failures;
        }
        merged
    }

    /// The Figure 3 series: `(relative_secs, operator)` per round, based on
    /// the curl request (the paper plots one series per scan).
    pub fn operator_series(&self) -> Vec<(u64, Asn)> {
        self.rounds
            .iter()
            .map(|r| (r.relative_secs, r.curl.operator))
            .collect()
    }

    /// Times at which the egress operator changed (Figure 3's marks).
    pub fn operator_changes(&self) -> Vec<u64> {
        self.rounds
            .windows(2)
            .filter(|w| w[0].curl.operator != w[1].curl.operator)
            .map(|w| w[1].relative_secs)
            .collect()
    }

    /// Distinct operators observed over the scan.
    pub fn operators_seen(&self) -> Vec<Asn> {
        let mut ops: Vec<Asn> = self.rounds.iter().map(|r| r.curl.operator).collect();
        ops.sort();
        ops.dedup();
        ops
    }

    /// Flattens the curl request log (for the rotation statistics).
    pub fn curl_requests(&self) -> Vec<&LoggedRequest> {
        self.rounds.iter().map(|r| &r.curl).collect()
    }
}

/// One engine shard of the relay scan: a contiguous range of rounds, each
/// an event carrying its round index.
struct RoundShard<'a> {
    device: &'a Device,
    auth: &'a (dyn NameServer + Sync),
    start: SimTime,
    first_connection_id: u64,
    rounds: Vec<ScanRound>,
    failures: u64,
}

impl ShardModel for RoundShard<'_> {
    type Event = u64;
    type Out = (Vec<ScanRound>, u64);

    fn handle(&mut self, now: SimTime, round: u64, _ctx: &mut ShardCtx<u64>) {
        let safari_id = self.first_connection_id + 2 * round + 1;
        let curl_id = safari_id + 1;
        match self
            .device
            .request_pair_with_ids(self.auth, now, safari_id, curl_id)
        {
            Ok((safari, curl)) => self.rounds.push(ScanRound {
                relative_secs: (now - self.start).as_secs(),
                safari: LoggedRequest::from_request(&safari),
                curl: LoggedRequest::from_request(&curl),
            }),
            Err(_) => self.failures += 1,
        }
    }

    fn finish(self) -> Self::Out {
        (self.rounds, self.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_geo::country::CountryCode;
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, DnsMode};

    fn series(mode: DnsMode) -> (Deployment, RelayScanSeries) {
        let d = Deployment::build(66, DeploymentConfig::scaled(512));
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::DE, mode);
        let s = RelayScanSeries::run(
            &device,
            &auth,
            &RelayScanConfig::operator_series(),
            Epoch::May2022.start(),
        );
        (d, s)
    }

    #[test]
    fn full_day_of_rounds() {
        let (_, s) = series(DnsMode::Open);
        assert_eq!(s.rounds.len(), 288);
        assert_eq!(s.failures, 0);
        assert_eq!(s.rounds[0].relative_secs, 0);
        assert_eq!(s.rounds[1].relative_secs, 300);
    }

    #[test]
    fn operator_changes_are_a_handful() {
        let (_, s) = series(DnsMode::Open);
        let changes = s.operator_changes();
        assert!(
            changes.len() <= 10,
            "too many operator changes: {}",
            changes.len()
        );
    }

    #[test]
    fn fixed_dns_also_runs() {
        let d = Deployment::build(66, DeploymentConfig::scaled(512));
        let forced = d.fleets.fleet_v4(
            Epoch::Apr2022,
            tectonic_relay::Domain::MaskQuic,
            Asn::AKAMAI_PR,
        )[0];
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::DE, DnsMode::Fixed(forced));
        let s = RelayScanSeries::run(
            &device,
            &auth,
            &RelayScanConfig::operator_series(),
            Epoch::May2022.start(),
        );
        assert_eq!(s.rounds.len(), 288);
        assert_eq!(s.failures, 0);
    }

    /// Pins the relay series byte-for-byte across the `SimRng::fork` audit
    /// in `Deployment::build` / `Deployment::mask_zone`. All four fork
    /// sites were judged serial-only and kept on label forks
    /// (`lintkit: allow(rng-fork-order)` at each site); these goldens prove
    /// the audit changed nothing, and will catch any future fork →
    /// fork_indexed migration that silently rewrites the derived streams.
    #[test]
    fn relay_series_pinned_across_fork_audit() {
        let (_, s) = series(DnsMode::Open);
        assert_eq!(s.rounds.len(), 288);
        assert_eq!(s.failures, 0);
        let first = &s.rounds[0];
        assert_eq!(first.safari.operator, Asn(20940));
        assert_eq!(first.safari.egress_addr, "23.32.0.12");
        assert_eq!(first.safari.egress_subnet, "23.32.0.12/32");
        assert_eq!(first.curl.operator, Asn(20940));
        assert_eq!(first.curl.egress_addr, "23.32.0.12");
        let last = &s.rounds[287];
        assert_eq!(last.relative_secs, 86_100);
        assert_eq!(last.safari.operator, Asn(20940));
        assert_eq!(last.safari.egress_addr, "23.32.0.12");
        // Whole-series digests: any reordered or re-derived RNG stream
        // moves at least one of these.
        let op_sum: u64 = s
            .rounds
            .iter()
            .map(|r| r.safari.operator.0 as u64 + r.curl.operator.0 as u64)
            .sum();
        let addr_len_sum: u64 = s
            .rounds
            .iter()
            .map(|r| r.safari.egress_addr.len() as u64 + r.curl.egress_addr.len() as u64)
            .sum();
        assert_eq!(op_sum, 17_742_384);
        assert_eq!(addr_len_sum, 6_264);
        assert_eq!(s.operator_changes().len(), 5);
    }

    #[test]
    fn observed_operators_are_egress_operators() {
        let (_, s) = series(DnsMode::Open);
        for op in s.operators_seen() {
            assert!(Asn::EGRESS_OPERATORS.contains(&op), "{op} not an egress AS");
        }
    }

    #[test]
    fn schedules_have_paper_shape() {
        assert_eq!(RelayScanConfig::operator_series().rounds(), 288);
        assert_eq!(RelayScanConfig::rotation_series().rounds(), 5760);
    }

    #[test]
    fn engine_series_matches_legacy_and_is_worker_invariant() {
        let (d, legacy) = series(DnsMode::Open);
        // Fresh device per run: the legacy series consumed the original
        // device's connection counter.
        for (shards, workers) in [(1, 1), (6, 1), (6, 3), (6, 8)] {
            let device = d.device_in_country(CountryCode::DE, DnsMode::Open);
            let auth = d.auth_server_unlimited();
            let s = RelayScanSeries::run_engine(
                &device,
                &[&auth],
                &RelayScanConfig::operator_series(),
                Epoch::May2022.start(),
                0,
                &EngineConfig::new(shards, workers),
            );
            assert_eq!(s, legacy, "shards={shards} workers={workers}");
        }
    }

    #[test]
    fn engine_series_connection_id_base_continues_a_device() {
        let d = Deployment::build(66, DeploymentConfig::scaled(512));
        let auth = d.auth_server_unlimited();
        let config = RelayScanConfig::operator_series();
        // Legacy: one device runs two back-to-back series on its counter.
        let device = d.device_in_country(CountryCode::DE, DnsMode::Open);
        let first = RelayScanSeries::run(&device, &auth, &config, Epoch::May2022.start());
        let second_start = Epoch::May2022.start() + config.duration;
        let second = RelayScanSeries::run(&device, &auth, &config, second_start);
        // Engine: a fresh device, second series continuing at the first's
        // connection count (two ids per completed round).
        let fresh = d.device_in_country(CountryCode::DE, DnsMode::Open);
        let engine_first = RelayScanSeries::run_engine(
            &fresh,
            &[&auth],
            &config,
            Epoch::May2022.start(),
            0,
            &EngineConfig::new(4, 2),
        );
        let engine_second = RelayScanSeries::run_engine(
            &fresh,
            &[&auth],
            &config,
            second_start,
            2 * config.rounds(),
            &EngineConfig::new(4, 2),
        );
        assert_eq!(engine_first, first);
        assert_eq!(engine_second, second);
    }

    #[test]
    fn series_round_trips_through_json() {
        let (_, s) = series(DnsMode::Open);
        let json = serde_json::to_string(&s).unwrap();
        let back: RelayScanSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
