//! Passive-measurement and IDS impact analysis (§6's "Passive Measurements
//! and iCloud Private Relay" discussion).
//!
//! Two perspectives the paper says must adapt:
//!
//! * **ISP / access network** — relay traffic hides its destination; the
//!   only handle left is the published ingress dataset.
//!   [`PassiveMonitor`] classifies observed flows against that dataset and
//!   reports how much traffic becomes unattributable.
//! * **server-side IDS** — one client session arrives from several egress
//!   addresses that rotate per connection; naive per-IP session stitching
//!   fragments (the Imperva issue the paper cites).
//!   [`ids_fragmentation`] quantifies that: how many source addresses a
//!   single user's request train appears to come from.

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use tectonic_dns::server::NameServer;
use tectonic_net::{SimDuration, SimTime};
use tectonic_relay::client::{Device, RequestAgent};

/// A flow record as an ISP-level monitor sees it: source, destination,
/// bytes — no payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Client-side address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Flow volume (arbitrary units).
    pub bytes: u64,
}

/// The ISP-side classification result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassiveReport {
    /// Flows inspected.
    pub flows: usize,
    /// Flows whose destination is a known ingress relay.
    pub relay_flows: usize,
    /// Bytes to relay ingresses.
    pub relay_bytes: u64,
    /// Total bytes.
    pub total_bytes: u64,
    /// Distinct ingress addresses seen as destinations.
    pub distinct_ingresses: usize,
}

impl PassiveReport {
    /// Share of traffic whose true destination is hidden by the relay.
    pub fn hidden_share(&self) -> f64 {
        self.relay_bytes as f64 / self.total_bytes.max(1) as f64
    }
}

/// An ISP-level passive monitor armed with the published ingress dataset.
#[derive(Debug, Default)]
pub struct PassiveMonitor {
    ingresses: BTreeSet<IpAddr>,
}

impl PassiveMonitor {
    /// Builds the monitor from an ingress address dataset (e.g. an ECS
    /// scan's `discovered` set).
    pub fn new(ingresses: impl IntoIterator<Item = IpAddr>) -> PassiveMonitor {
        PassiveMonitor {
            ingresses: ingresses.into_iter().collect(),
        }
    }

    /// Whether one flow goes to the relay network.
    pub fn is_relay_flow(&self, flow: &FlowRecord) -> bool {
        self.ingresses.contains(&flow.dst)
    }

    /// Classifies a flow log.
    pub fn classify(&self, flows: &[FlowRecord]) -> PassiveReport {
        let mut relay_flows = 0usize;
        let mut relay_bytes = 0u64;
        let mut total_bytes = 0u64;
        let mut distinct: BTreeSet<IpAddr> = BTreeSet::new();
        for flow in flows {
            total_bytes += flow.bytes;
            if self.is_relay_flow(flow) {
                relay_flows += 1;
                relay_bytes += flow.bytes;
                distinct.insert(flow.dst);
            }
        }
        PassiveReport {
            flows: flows.len(),
            relay_flows,
            relay_bytes,
            total_bytes,
            distinct_ingresses: distinct.len(),
        }
    }
}

/// The server-side IDS view of one user's request train.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdsReport {
    /// Requests the user actually made.
    pub requests: usize,
    /// Source addresses the server observed them from.
    pub observed_sources: usize,
    /// Fragments produced by naive per-IP session stitching.
    pub sessions_by_ip: usize,
    /// Largest run of consecutive requests sharing one address.
    pub longest_stable_run: usize,
}

/// Drives `requests` through the relay from one device and measures how a
/// per-IP session stitcher fragments them.
pub fn ids_fragmentation(
    device: &Device,
    auth: &dyn NameServer,
    start: SimTime,
    requests: usize,
    interval: SimDuration,
) -> IdsReport {
    let mut sources: Vec<IpAddr> = Vec::with_capacity(requests);
    for i in 0..requests {
        let now = start + SimDuration::from_millis(interval.as_millis() * i as u64);
        if let Ok(req) = device.request(RequestAgent::Safari, auth, now) {
            sources.push(req.egress.addr);
        }
    }
    let observed: BTreeSet<&IpAddr> = sources.iter().collect();
    // Naive per-IP stitching: a new "session" whenever the address differs
    // from the previous request's.
    let mut sessions = if sources.is_empty() { 0 } else { 1 };
    let mut longest = 0usize;
    let mut run = 0usize;
    let mut prev: Option<&IpAddr> = None;
    for src in &sources {
        if prev == Some(src) {
            run += 1;
        } else {
            if prev.is_some() {
                sessions += 1;
            }
            longest = longest.max(run);
            run = 1;
        }
        prev = Some(src);
    }
    longest = longest.max(run);
    IdsReport {
        requests: sources.len(),
        observed_sources: observed.len(),
        sessions_by_ip: sessions,
        longest_stable_run: longest,
    }
}

/// Per-ingress traffic concentration an ISP would have to provision for
/// (§6: "ISPs need to evaluate their paths towards the ingress addresses").
pub fn ingress_traffic_shares(
    flows: &[FlowRecord],
    monitor: &PassiveMonitor,
) -> Vec<(IpAddr, f64)> {
    let mut per_ingress: BTreeMap<IpAddr, u64> = BTreeMap::new();
    let mut relay_total = 0u64;
    for flow in flows {
        if monitor.is_relay_flow(flow) {
            *per_ingress.entry(flow.dst).or_insert(0) += flow.bytes;
            relay_total += flow.bytes;
        }
    }
    let mut shares: Vec<(IpAddr, f64)> = per_ingress
        .into_iter()
        .map(|(addr, bytes)| (addr, bytes as f64 / relay_total.max(1) as f64))
        .collect();
    shares.sort_by(|a, b| b.1.total_cmp(&a.1));
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecs_scan::EcsScanner;
    use tectonic_geo::country::CountryCode;
    use tectonic_net::{Epoch, SimClock};
    use tectonic_relay::{Deployment, DeploymentConfig, DnsMode, Domain};

    fn setup() -> (Deployment, PassiveMonitor) {
        let d = Deployment::build(31, DeploymentConfig::scaled(512));
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let scan = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
        let monitor = PassiveMonitor::new(scan.discovered.iter().map(|a| IpAddr::V4(*a)));
        (d, monitor)
    }

    #[test]
    fn isp_detects_relay_flows_via_dataset() {
        let (d, monitor) = setup();
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::US, DnsMode::Open);
        // Mix relay flows with ordinary web flows.
        let mut flows = Vec::new();
        for i in 0..30 {
            let now = Epoch::May2022.start() + SimDuration::from_secs(30 * i);
            let req = device.request(RequestAgent::Curl, &auth, now).unwrap();
            flows.push(FlowRecord {
                src: IpAddr::V4(device.addr()),
                dst: req.ingress,
                bytes: 1000,
            });
            flows.push(FlowRecord {
                src: IpAddr::V4(device.addr()),
                dst: "93.184.216.34".parse().unwrap(),
                bytes: 500,
            });
        }
        let report = monitor.classify(&flows);
        assert_eq!(report.flows, 60);
        assert_eq!(report.relay_flows, 30, "every relay flow detected");
        assert!((report.hidden_share() - 2.0 / 3.0).abs() < 1e-9);
        assert!(report.distinct_ingresses >= 1);
    }

    #[test]
    fn ordinary_traffic_is_never_misclassified() {
        let (_, monitor) = setup();
        let flows = vec![
            FlowRecord {
                src: "10.0.0.1".parse().unwrap(),
                dst: "93.184.216.34".parse().unwrap(),
                bytes: 100,
            },
            FlowRecord {
                src: "10.0.0.1".parse().unwrap(),
                dst: "8.8.8.8".parse().unwrap(),
                bytes: 100,
            },
        ];
        let report = monitor.classify(&flows);
        assert_eq!(report.relay_flows, 0);
        assert_eq!(report.hidden_share(), 0.0);
    }

    #[test]
    fn ids_sees_fragmented_sessions() {
        let (d, _) = setup();
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::US, DnsMode::Open);
        let report = ids_fragmentation(
            &device,
            &auth,
            Epoch::May2022.start(),
            100,
            SimDuration::from_secs(30),
        );
        assert_eq!(report.requests, 100);
        // One user, several apparent sources, many fragmented sessions —
        // the paper's "new client request pattern" (Imperva issue).
        assert!(report.observed_sources >= 3, "{}", report.observed_sources);
        assert!(
            report.sessions_by_ip > report.requests / 2,
            "stitching produced only {} sessions",
            report.sessions_by_ip
        );
        assert!(report.longest_stable_run < 20);
    }

    #[test]
    fn ingress_share_analysis_sums_to_one() {
        let (d, monitor) = setup();
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::DE, DnsMode::Open);
        let mut flows = Vec::new();
        for i in 0..40 {
            let now = Epoch::May2022.start() + SimDuration::from_secs(60 * i);
            let req = device.request(RequestAgent::Curl, &auth, now).unwrap();
            flows.push(FlowRecord {
                src: IpAddr::V4(device.addr()),
                dst: req.ingress,
                bytes: 100 + i,
            });
        }
        let shares = ingress_traffic_shares(&flows, &monitor);
        assert!(!shares.is_empty());
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for pair in shares.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
