//! Egress-list analyses (§4.2): Tables 3–4, Figures 2/4/5.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};
use tectonic_bgp::Rib;
use tectonic_net::{Asn, IpNet};

use tectonic_geo::city::CityUniverse;
use tectonic_geo::country::CountryCode;
use tectonic_geo::egress::EgressList;
use tectonic_geo::mmdb::GeoDb;

/// One Table 3 row (per egress operator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Operator AS.
    pub asn: Asn,
    /// IPv4 subnets.
    pub v4_subnets: usize,
    /// Distinct routed BGP prefixes covering the IPv4 subnets.
    pub v4_bgp_prefixes: usize,
    /// Total IPv4 addresses across the subnets.
    pub v4_addresses: u64,
    /// IPv6 subnets.
    pub v6_subnets: usize,
    /// Distinct routed BGP prefixes covering the IPv6 subnets.
    pub v6_bgp_prefixes: usize,
    /// Countries covered (either family).
    pub countries: usize,
}

/// Table 3 — egress subnets per operating AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
}

/// One Table 4 row (covered cities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Operator AS.
    pub asn: Asn,
    /// Cities covered by any subnet.
    pub cities: usize,
    /// Cities covered by IPv4 subnets.
    pub cities_v4: usize,
    /// Cities covered by IPv6 subnets.
    pub cities_v6: usize,
}

/// Table 4 — city coverage per operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// Rows in the paper's order.
    pub rows: Vec<Table4Row>,
}

/// One point of the Figure 2/5 maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude.
    pub lat: f64,
    /// Longitude.
    pub lon: f64,
    /// Operator the subnet belongs to.
    pub asn: Asn,
    /// IPv4 (`false` = IPv6).
    pub v4: bool,
}

/// A CDF series for Figure 4: entity index (sorted by subnet count) vs
/// cumulative share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdfSeries {
    /// Operator the series belongs to.
    pub asn: Asn,
    /// Cumulative shares, one per entity in descending-count order.
    pub cumulative: Vec<f64>,
}

/// The combined egress analysis over one list snapshot.
#[derive(Debug)]
pub struct EgressAnalysis<'a> {
    list: &'a EgressList,
    /// Subnet → (covering BGP prefix, operator) attribution via the RIB.
    /// Computed once up front so no analysis method has to re-query the
    /// routing table — `table3` in particular reuses the stored prefix.
    attribution: Vec<Option<(IpNet, Asn)>>,
}

impl<'a> EgressAnalysis<'a> {
    /// Prepares the analysis (attributes every subnet once).
    pub fn new(list: &'a EgressList, rib: &Rib) -> EgressAnalysis<'a> {
        let attribution = list
            .entries()
            .iter()
            .map(|e| rib.lookup_net(&e.subnet))
            .collect();
        EgressAnalysis { list, attribution }
    }

    fn operators(&self) -> [Asn; 4] {
        [Asn::AKAMAI_PR, Asn::AKAMAI_EG, Asn::CLOUDFLARE, Asn::FASTLY]
    }

    fn entries_of(&self, asn: Asn) -> impl Iterator<Item = &tectonic_geo::egress::EgressEntry> {
        self.list
            .entries()
            .iter()
            .zip(&self.attribution)
            .filter(move |(_, a)| matches!(a, Some((_, origin)) if *origin == asn))
            .map(|(e, _)| e)
    }

    /// Builds Table 3.
    pub fn table3(&self) -> Table3 {
        let rows = self
            .operators()
            .iter()
            .map(|asn| {
                let mut v4_subnets = 0usize;
                let mut v4_addresses = 0u64;
                let mut v6_subnets = 0usize;
                let mut v4_prefixes: BTreeSet<String> = BTreeSet::new();
                let mut v6_prefixes: BTreeSet<String> = BTreeSet::new();
                let mut countries: BTreeSet<CountryCode> = BTreeSet::new();
                for (e, attr) in self.list.entries().iter().zip(&self.attribution) {
                    let Some((prefix, origin)) = attr else {
                        continue;
                    };
                    if origin != asn {
                        continue;
                    }
                    countries.insert(e.cc);
                    match &e.subnet {
                        IpNet::V4(n) => {
                            v4_subnets += 1;
                            v4_addresses += n.addr_count();
                            v4_prefixes.insert(prefix.to_string());
                        }
                        IpNet::V6(_) => {
                            v6_subnets += 1;
                            v6_prefixes.insert(prefix.to_string());
                        }
                    }
                }
                Table3Row {
                    asn: *asn,
                    v4_subnets,
                    v4_bgp_prefixes: v4_prefixes.len(),
                    v4_addresses,
                    v6_subnets,
                    v6_bgp_prefixes: v6_prefixes.len(),
                    countries: countries.len(),
                }
            })
            .collect();
        Table3 { rows }
    }

    /// Builds Table 4.
    pub fn table4(&self) -> Table4 {
        let rows = self
            .operators()
            .iter()
            .map(|asn| {
                let mut all: BTreeSet<&str> = BTreeSet::new();
                let mut v4: BTreeSet<&str> = BTreeSet::new();
                let mut v6: BTreeSet<&str> = BTreeSet::new();
                for e in self.entries_of(*asn) {
                    if let Some(city) = e.city.as_deref() {
                        all.insert(city);
                        if e.subnet.is_v4() {
                            v4.insert(city);
                        } else {
                            v6.insert(city);
                        }
                    }
                }
                Table4Row {
                    asn: *asn,
                    cities: all.len(),
                    cities_v4: v4.len(),
                    cities_v6: v6.len(),
                }
            })
            .collect();
        Table4 { rows }
    }

    /// Country-share distribution across the whole list: `(cc, share)`
    /// sorted descending (the 58 % US / 3.6 % DE headline).
    pub fn country_shares(&self) -> Vec<(CountryCode, f64)> {
        let mut counts: BTreeMap<CountryCode, usize> = BTreeMap::new();
        for e in self.list.entries() {
            *counts.entry(e.cc).or_insert(0) += 1;
        }
        let total = self.list.len().max(1) as f64;
        let mut shares: Vec<(CountryCode, f64)> = counts
            .into_iter()
            .map(|(cc, c)| (cc, c as f64 / total))
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        shares
    }

    /// Number of countries with fewer than `threshold` subnets (the paper:
    /// 123 countries below 50).
    pub fn countries_below(&self, threshold: usize) -> usize {
        let mut counts: BTreeMap<CountryCode, usize> = BTreeMap::new();
        for e in self.list.entries() {
            *counts.entry(e.cc).or_insert(0) += 1;
        }
        counts.values().filter(|c| **c < threshold).count()
    }

    /// Share of rows with a blank city (paper: 1.6 %).
    pub fn blank_city_share(&self) -> f64 {
        let blank = self
            .list
            .entries()
            .iter()
            .filter(|e| e.city.is_none())
            .count();
        blank as f64 / self.list.len().max(1) as f64
    }

    /// Countries covered by exactly one operator (paper: 11, all
    /// Cloudflare).
    pub fn uniquely_covered_countries(&self) -> Vec<(CountryCode, Asn)> {
        let mut coverage: BTreeMap<CountryCode, BTreeSet<Asn>> = BTreeMap::new();
        for (e, attr) in self.list.entries().iter().zip(&self.attribution) {
            if let Some((_, asn)) = attr {
                coverage.entry(e.cc).or_default().insert(*asn);
            }
        }
        coverage
            .into_iter()
            .filter(|(_, ops)| ops.len() == 1)
            .filter_map(|(cc, ops)| ops.iter().next().map(|asn| (cc, *asn)))
            .collect()
    }

    /// Figure 2/5 data: one point per subnet with a located city.
    pub fn geo_points(&self, universe: &CityUniverse) -> Vec<GeoPoint> {
        let by_name: HashMap<&str, (f64, f64)> = universe
            .cities()
            .iter()
            .map(|c| (c.name.as_str(), (c.lat, c.lon)))
            .collect();
        self.list
            .entries()
            .iter()
            .zip(&self.attribution)
            .filter_map(|(e, attr)| {
                let (_, asn) = (*attr)?;
                let city = e.city.as_deref()?;
                let (lat, lon) = by_name.get(city)?;
                Some(GeoPoint {
                    lat: *lat,
                    lon: *lon,
                    asn,
                    v4: e.subnet.is_v4(),
                })
            })
            .collect()
    }

    /// Figure 4 CDFs: cumulative subnet share over entities (cities or
    /// countries) sorted by descending subnet count, per operator.
    pub fn cdf(&self, by_city: bool, v4: bool) -> Vec<CdfSeries> {
        self.operators()
            .iter()
            .map(|asn| {
                let mut counts: BTreeMap<String, usize> = BTreeMap::new();
                for e in self.entries_of(*asn).filter(|e| e.subnet.is_v4() == v4) {
                    let key = if by_city {
                        match e.city.as_deref() {
                            Some(c) => c.to_string(),
                            None => continue,
                        }
                    } else {
                        e.cc.to_string()
                    };
                    *counts.entry(key).or_insert(0) += 1;
                }
                let mut sorted: Vec<usize> = counts.into_values().collect();
                sorted.sort_unstable_by(|a, b| b.cmp(a));
                let total: usize = sorted.iter().sum();
                let mut acc = 0.0;
                let cumulative = sorted
                    .iter()
                    .map(|c| {
                        acc += *c as f64 / total.max(1) as f64;
                        acc
                    })
                    .collect();
                CdfSeries {
                    asn: *asn,
                    cumulative,
                }
            })
            .collect()
    }

    /// §4.2's PoP comparison: countries the egress list *represents* for
    /// `asn` that are absent from the operator's physical PoP footprint —
    /// the Saint-Kitts-and-Nevis finding. A non-empty result proves the
    /// published location describes the client, not the relay.
    pub fn phantom_locations(&self, asn: Asn, pop_countries: &[CountryCode]) -> Vec<CountryCode> {
        let pops: BTreeSet<&CountryCode> = pop_countries.iter().collect();
        let covered: BTreeSet<CountryCode> = self.entries_of(asn).map(|e| e.cc).collect();
        covered
            .into_iter()
            .filter(|cc| !pops.contains(cc))
            .collect()
    }

    /// The MaxMind check (§4.2): fraction of egress subnets whose GeoDb
    /// lookup equals the list's own mapping — evidence that the database
    /// adopted Apple's list and therefore cannot locate the relays.
    pub fn mmdb_adoption_share(&self, db: &GeoDb) -> f64 {
        let mut matches = 0usize;
        let mut total = 0usize;
        for e in self.list.entries() {
            total += 1;
            if let Some(loc) = db.lookup(e.subnet.network()) {
                if loc.cc == e.cc && loc.city == e.city {
                    matches += 1;
                }
            }
        }
        matches as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_relay::{Deployment, DeploymentConfig};

    fn deployment() -> Deployment {
        Deployment::build(55, DeploymentConfig::scaled(16))
    }

    #[test]
    fn table3_shape_matches_paper() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        let t3 = analysis.table3();
        let row = |asn: Asn| t3.rows.iter().find(|r| r.asn == asn).unwrap();
        let cf = row(Asn::CLOUDFLARE);
        // Cloudflare: most IPv4 subnets, one address each (/32s).
        assert_eq!(cf.v4_addresses, cf.v4_subnets as u64);
        assert!(cf.v4_subnets > row(Asn::AKAMAI_PR).v4_subnets);
        // Fastly: exactly two addresses per subnet (/31s).
        let fastly = row(Asn::FASTLY);
        assert_eq!(fastly.v4_addresses, 2 * fastly.v4_subnets as u64);
        // AkamaiPR: most IPv4 addresses despite fewer subnets than CF.
        let akpr = row(Asn::AKAMAI_PR);
        assert!(akpr.v4_addresses > cf.v4_addresses);
        // AkamaiEG: a single BGP prefix for both families.
        let akeg = row(Asn::AKAMAI_EG);
        assert_eq!(akeg.v4_bgp_prefixes, 1);
        assert_eq!(akeg.v6_bgp_prefixes, 1);
        // AkamaiPR provides the most IPv6 subnets.
        assert!(akpr.v6_subnets > cf.v6_subnets);
        assert!(akpr.v6_subnets > fastly.v6_subnets);
        // Country coverage: CF > AkPR ≥ Fastly > AkEG.
        assert!(cf.countries > akpr.countries);
        assert!(akpr.countries > akeg.countries);
    }

    #[test]
    fn table4_shape_matches_paper() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        let t4 = analysis.table4();
        let row = |asn: Asn| t4.rows.iter().find(|r| r.asn == asn).unwrap();
        // AkamaiPR covers the most cities overall (driven by IPv6).
        let akpr = row(Asn::AKAMAI_PR);
        let fastly = row(Asn::FASTLY);
        assert!(akpr.cities > fastly.cities);
        assert!(akpr.cities_v6 > akpr.cities_v4);
        // Fastly's v4 and v6 coverage is (nearly) identical — same city
        // pool for both families.
        let ratio = fastly.cities_v4 as f64 / fastly.cities_v6.max(1) as f64;
        assert!((0.7..1.4).contains(&ratio), "fastly v4/v6 ratio {ratio:.2}");
    }

    #[test]
    fn us_share_and_long_tail() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        let shares = analysis.country_shares();
        assert_eq!(shares[0].0, CountryCode::US);
        assert!(
            (0.5..0.66).contains(&shares[0].1),
            "US share {:.3}",
            shares[0].1
        );
        // DE in the top few, far behind the US.
        let de = shares
            .iter()
            .find(|(cc, _)| *cc == CountryCode::DE)
            .expect("DE present");
        assert!(de.1 < 0.10);
        // Long tail: many countries under 50 subnets.
        assert!(analysis.countries_below(50) > 80);
    }

    #[test]
    fn blank_city_share_near_paper() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        let share = analysis.blank_city_share();
        assert!((0.008..0.03).contains(&share), "blank share {share:.4}");
    }

    #[test]
    fn unique_coverage_is_cloudflare() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        for (cc, asn) in analysis.uniquely_covered_countries() {
            assert_eq!(asn, Asn::CLOUDFLARE, "{cc} uniquely covered by {asn}");
        }
    }

    #[test]
    fn geo_points_cover_all_operators() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        let points = analysis.geo_points(&d.universe);
        assert!(!points.is_empty());
        for asn in [Asn::AKAMAI_PR, Asn::AKAMAI_EG, Asn::CLOUDFLARE, Asn::FASTLY] {
            assert!(points.iter().any(|p| p.asn == asn), "no points for {asn}");
        }
        for p in &points {
            assert!((-90.0..=90.0).contains(&p.lat));
            assert!((-180.0..=180.0).contains(&p.lon));
        }
    }

    #[test]
    fn cdfs_are_monotone_and_end_at_one() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        for by_city in [true, false] {
            for v4 in [true, false] {
                for series in analysis.cdf(by_city, v4) {
                    let c = &series.cumulative;
                    if c.is_empty() {
                        continue;
                    }
                    for w in c.windows(2) {
                        assert!(w[1] >= w[0] - 1e-12);
                    }
                    assert!((c.last().unwrap() - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn phantom_locations_expose_represented_not_physical() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        let pops = tectonic_geo::country::pop_countries(130);
        let phantoms = analysis.phantom_locations(Asn::AKAMAI_PR, &pops);
        // AkamaiPR represents 236 countries but has PoPs in ~130: dozens of
        // represented countries have no physical presence.
        assert!(
            phantoms.len() > 50,
            "only {} phantom locations",
            phantoms.len()
        );
        // Every phantom really is covered by the egress list.
        for cc in phantoms.iter().take(10) {
            assert!(d.egress_list.entries().iter().any(|e| e.cc == *cc));
        }
        // With the full country set as PoPs, nothing is phantom.
        let all: Vec<_> = tectonic_geo::country::all_countries()
            .iter()
            .map(|c| c.code)
            .collect();
        assert!(analysis.phantom_locations(Asn::AKAMAI_PR, &all).is_empty());
    }

    #[test]
    fn mmdb_adoption_is_total_when_built_from_list() {
        let d = deployment();
        let analysis = EgressAnalysis::new(&d.egress_list, &d.rib);
        let db = GeoDb::from_egress_list(&d.egress_list);
        let share = analysis.mmdb_adoption_share(&db);
        assert!(share > 0.99, "adoption share {share:.4}");
    }
}
