//! The ECS enumeration scanner (§3, §4.1).
//!
//! Iterates the routed IPv4 space in /24 steps, attaching each subnet as an
//! EDNS0 Client Subnet option to A queries for the mask domains, and
//! collects every ingress address the authoritative servers reveal. The
//! scanner implements the paper's two ethics optimisations (§7):
//!
//! * **routed-space filter** — only subnets covered by a BGP announcement
//!   are queried,
//! * **scope honouring** — when a response declares a scope shorter than
//!   /24, no other subnet inside that scope is queried.
//!
//! Rate limiting by the server appears as dropped queries; the scanner
//! backs off and retries, which is what stretches the full scan to tens of
//! simulated hours (the paper reports ~40 h).

use std::collections::{BTreeMap, BTreeSet};
use std::net::{IpAddr, Ipv4Addr};

use bytes::BytesMut;
use serde::{Deserialize, Serialize};
use tectonic_bgp::{LookupMemo, Rib};
use tectonic_dns::server::{NameServer, QueryContext, ReplyOutcome, ServerReply};
use tectonic_dns::{
    decode_message, encode_message, DomainName, EcsOption, Message, MessageEncoder, PatchedQuery,
    QType, QueryTemplate, Rcode,
};
use tectonic_net::{Asn, IpNet, Ipv4Net, PrefixTrie, SimClock, SimDuration, SimTime};

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct EcsScanConfig {
    /// Source address the scanner queries from.
    pub source: Ipv4Addr,
    /// Honour server-returned ECS scopes shorter than /24 (§7).
    pub respect_scopes: bool,
    /// Skip address space with no covering BGP announcement (§7).
    pub skip_unrouted: bool,
    /// Back-off applied when a query is dropped by rate limiting.
    pub retry_backoff: SimDuration,
    /// Give up on a subnet after this many rate-limit retries.
    pub max_retries: u32,
    /// Fixed per-query pacing (simulated network + processing time).
    pub query_pacing: SimDuration,
    /// Use the pre-encoded query template + scratch-buffer reply path.
    ///
    /// The fast path is byte-identical to the general encoder (verified at
    /// template construction, see [`QueryTemplate`]); this switch exists for
    /// the ablation benchmark and as an escape hatch.
    pub use_fast_path: bool,
}

impl Default for EcsScanConfig {
    fn default() -> Self {
        EcsScanConfig {
            source: Ipv4Addr::new(138, 246, 253, 10), // TUM-like scan host
            respect_scopes: true,
            skip_unrouted: true,
            retry_backoff: SimDuration::from_millis(13),
            max_retries: 32,
            query_pacing: SimDuration::from_millis(12),
            use_fast_path: true,
        }
    }
}

/// Per-client-AS serving counts observed by the scan (Table 2 input).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsServing {
    /// /24 subnets answered from Apple's fleet.
    pub apple_subnets: u64,
    /// /24 subnets answered from Akamai PR's fleet.
    pub akamai_subnets: u64,
}

impl AsServing {
    /// The serving category this AS falls into, if it was seen at all.
    pub fn category(&self) -> Option<ServingCategory> {
        match (self.apple_subnets > 0, self.akamai_subnets > 0) {
            (true, true) => Some(ServingCategory::Both),
            (true, false) => Some(ServingCategory::AppleOnly),
            (false, true) => Some(ServingCategory::AkamaiOnly),
            (false, false) => None,
        }
    }
}

/// Observed serving categories (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServingCategory {
    /// Served exclusively by Akamai PR.
    AkamaiOnly,
    /// Served exclusively by Apple.
    AppleOnly,
    /// Served by both operators.
    Both,
}

/// The outcome of one ECS scan of one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcsScanReport {
    /// The scanned domain.
    pub domain: DomainName,
    /// Every distinct ingress address uncovered.
    pub discovered: BTreeSet<Ipv4Addr>,
    /// Discovered addresses grouped by origin AS (RIB attribution).
    pub by_ingress_as: BTreeMap<Asn, BTreeSet<Ipv4Addr>>,
    /// Per-client-AS serving counts.
    pub per_client_as: BTreeMap<Asn, AsServing>,
    /// Distinct routed BGP prefixes containing discovered addresses.
    pub ingress_prefixes: BTreeSet<String>,
    /// Client /24 subnets served per discovered address (scope-credited) —
    /// the input to the ingress-load analysis (§6 future work: "does the
    /// system have bottlenecks?").
    pub subnets_served: BTreeMap<Ipv4Addr, u64>,
    /// Queries actually sent (after skipping).
    pub queries_sent: u64,
    /// Subnets skipped thanks to scope honouring.
    pub skipped_by_scope: u64,
    /// Subnets skipped as unrouted.
    pub skipped_unrouted: u64,
    /// Dropped replies observed (rate limiting or injected loss). Every
    /// drop is either retried (`retries`) or abandons its subnet
    /// (`exhausted`): `rate_limited == retries + exhausted` always holds.
    pub rate_limited: u64,
    /// Drops that were answered with a backed-off retry.
    pub retries: u64,
    /// Subnets abandoned after the retry budget ran out — each counted
    /// exactly once, on the drop that exhausted the budget.
    pub exhausted: u64,
    /// Replies that failed DNS wire decoding (truncated or garbage bytes).
    /// Such records are skipped and counted — one malformed reply must
    /// never abort a multi-hour scan.
    pub decode_errors: u64,
    /// Simulated wall-clock duration of the scan.
    pub duration: SimDuration,
}

impl EcsScanReport {
    /// Ingress address count for one operator.
    pub fn count_for(&self, asn: Asn) -> usize {
        self.by_ingress_as.get(&asn).map(BTreeSet::len).unwrap_or(0)
    }

    /// Total distinct addresses.
    pub fn total(&self) -> usize {
        self.discovered.len()
    }
}

/// Outcome of the IPv6 ECS feasibility probe (§3's negative result).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct V6FeasibilityReport {
    /// AAAA probes sent.
    pub queries: u64,
    /// ECS scopes observed in responses (the paper: only 0).
    pub distinct_scopes: Vec<u8>,
    /// Distinct AAAA addresses seen across the probes.
    pub distinct_addresses: usize,
    /// Whether subnet-scoped enumeration would work (the paper: no).
    pub enumeration_feasible: bool,
}

/// The ECS enumeration scanner.
#[derive(Debug, Clone, Default)]
pub struct EcsScanner {
    config: EcsScanConfig,
}

/// Per-scan (or per-worker) reusable buffers and memo state.
///
/// Holding these across the whole subnet loop is what makes the hot path
/// allocation-free: each query is patched in place in a pre-encoded
/// template, the reply lands in a reused buffer, a reply's answers are
/// attributed with one batched RIB lookup, and the client-AS lookups for
/// consecutive subnets hit a one-entry memo.
struct ScanScratch {
    /// The next query's ID (wraps; seeded to match the historical scanner).
    query_id: u16,
    /// Pre-encoded query with patchable ID and subnet bytes. `None` when
    /// the fast path is disabled or the template failed its self-check, in
    /// which case every query takes the general encoder below.
    patched: Option<PatchedQuery>,
    /// General-path encoder and its output buffer (also the fallback).
    encoder: MessageEncoder,
    query_buf: BytesMut,
    /// Reply buffer the server encodes into.
    reply: BytesMut,
    /// Ingress-address batch for one reply's answers, attributed with a
    /// single [`Rib::lookup_batch`] call per burst.
    addr_batch: Vec<IpAddr>,
    /// Attribution results for `addr_batch` (reused across replies).
    batch_out: Vec<Option<(IpNet, Asn)>>,
    /// Memo for client-AS lookups — subnets arrive in ascending order, so
    /// consecutive /24s almost always share the announced client prefix.
    client_memo: LookupMemo,
}

impl ScanScratch {
    fn new(config: &EcsScanConfig, domain: &DomainName) -> ScanScratch {
        let patched = config
            .use_fast_path
            .then(|| QueryTemplate::new_v4_24(domain, QType::A))
            .flatten()
            .map(|t| t.instantiate());
        ScanScratch {
            query_id: 1,
            patched,
            encoder: MessageEncoder::new(),
            query_buf: BytesMut::new(),
            reply: BytesMut::new(),
            addr_batch: Vec::new(),
            batch_out: Vec::new(),
            client_memo: LookupMemo::new(),
        }
    }
}

impl EcsScanner {
    /// A scanner with the given configuration.
    pub fn new(config: EcsScanConfig) -> EcsScanner {
        EcsScanner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EcsScanConfig {
        &self.config
    }

    /// Enumerates the candidate /24 subnets: every /24 of every announced
    /// IPv4 prefix (deduplicated, in address order). With `skip_unrouted`
    /// disabled, the entire unicast space is returned instead.
    pub fn candidate_subnets(&self, rib: &Rib) -> Vec<Ipv4Net> {
        if self.config.skip_unrouted {
            let mut subnets = Vec::new();
            let mut prefixes: Vec<Ipv4Net> = rib
                .iter()
                .filter_map(|(net, _)| net.as_v4().copied())
                .collect();
            prefixes.sort();
            // Drop prefixes nested inside an earlier (shorter) one so each
            // /24 appears once.
            let mut last: Option<Ipv4Net> = None;
            for p in prefixes {
                if let Some(l) = last {
                    if l.contains_net(&p) {
                        continue;
                    }
                }
                last = Some(p);
                if p.len() > 24 {
                    subnets.push(Ipv4Net::slash24_of(p.network()));
                } else if let Ok(subs) = p.subnets(24) {
                    subnets.extend(subs);
                }
            }
            subnets.dedup();
            subnets
        } else {
            // 1.0.0.0 through 223.255.255.0 — the unicast space.
            let all = Ipv4Net::literal("0.0.0.0/0");
            all.subnets(24)
                .into_iter()
                .flatten()
                .filter(|s| {
                    let first_octet = s.network().octets()[0];
                    (1..=223).contains(&first_octet)
                })
                .collect()
        }
    }

    /// Runs a full scan of `domain` against `auth`, advancing `clock`.
    pub fn scan(
        &self,
        domain: DomainName,
        auth: &dyn NameServer,
        rib: &Rib,
        clock: &mut SimClock,
    ) -> EcsScanReport {
        let subnets = self.candidate_subnets(rib);
        self.scan_subnets(domain, &subnets, auth, rib, clock)
    }

    /// Sends one ECS query (with retries on rate-limit drops).
    ///
    /// On the fast path the query is the scratch template with five bytes
    /// patched; otherwise it is rebuilt through the reusable encoder. The
    /// reply is written into the scratch buffer via
    /// [`NameServer::handle_query_into`] — the steady state allocates only
    /// inside message *decoding*.
    fn query_subnet(
        &self,
        domain: &DomainName,
        subnet: Ipv4Net,
        auth: &dyn NameServer,
        clock: &mut SimClock,
        scratch: &mut ScanScratch,
        report: &mut EcsScanReport,
    ) -> Option<Message> {
        let mut attempts = 0;
        loop {
            scratch.query_id = scratch.query_id.wrapping_add(1);
            let id = scratch.query_id;
            let wire: &[u8] = match &mut scratch.patched {
                Some(patched) => patched.patch(id, subnet),
                None => {
                    let mut query = Message::query(id, domain.clone(), QType::A);
                    query.ensure_edns().set_ecs(EcsOption::for_v4_net(subnet));
                    scratch.encoder.encode_into(&query, &mut scratch.query_buf);
                    &scratch.query_buf
                }
            };
            let ctx = QueryContext {
                src: IpAddr::V4(self.config.source),
                now: clock.now(),
            };
            report.queries_sent += 1;
            clock.advance(self.config.query_pacing);
            match auth.handle_query_into(wire, &ctx, &mut scratch.reply) {
                ReplyOutcome::Written => match decode_message(&scratch.reply) {
                    Ok(response) => return Some(response),
                    Err(_) => {
                        report.decode_errors += 1;
                        return None;
                    }
                },
                ReplyOutcome::Dropped => {
                    report.rate_limited += 1;
                    attempts += 1;
                    if attempts > self.config.max_retries {
                        report.exhausted += 1;
                        return None;
                    }
                    report.retries += 1;
                    clock.advance(self.config.retry_backoff);
                }
            }
        }
    }

    /// Attempts ECS enumeration over IPv6 (AAAA queries) and reports why
    /// it cannot work — the paper's §3 negative result: the name server
    /// answers every AAAA query with ECS scope 0, declaring the response
    /// valid for the whole address space, so a scope-honouring scanner
    /// stops after a handful of probes.
    pub fn probe_v6_feasibility(
        &self,
        domain: DomainName,
        auth: &dyn NameServer,
        sample_subnets: &[Ipv4Net],
        clock: &mut SimClock,
    ) -> V6FeasibilityReport {
        let mut scopes = BTreeSet::new();
        let mut answers = BTreeSet::new();
        let mut queries = 0u64;
        let mut query_id = 0u16;
        let mut report_stub = EcsScanReport {
            domain: domain.clone(),
            discovered: BTreeSet::new(),
            by_ingress_as: BTreeMap::new(),
            per_client_as: BTreeMap::new(),
            ingress_prefixes: BTreeSet::new(),
            subnets_served: BTreeMap::new(),
            queries_sent: 0,
            skipped_by_scope: 0,
            skipped_unrouted: 0,
            rate_limited: 0,
            retries: 0,
            exhausted: 0,
            decode_errors: 0,
            duration: SimDuration::ZERO,
        };
        for subnet in sample_subnets {
            query_id = query_id.wrapping_add(1);
            let mut query = Message::query(query_id, domain.clone(), QType::AAAA);
            query.ensure_edns().set_ecs(EcsOption::for_v4_net(*subnet));
            let ctx = QueryContext {
                src: IpAddr::V4(self.config.source),
                now: clock.now(),
            };
            queries += 1;
            clock.advance(self.config.query_pacing);
            if let ServerReply::Response(bytes) = auth.handle_query(&encode_message(&query), &ctx) {
                if let Ok(response) = decode_message(&bytes) {
                    if let Some(ecs) = response.edns.as_ref().and_then(|o| o.ecs()) {
                        scopes.insert(ecs.scope_len);
                    }
                    answers.extend(response.aaaa_answers());
                }
            }
        }
        let _ = report_stub.queries_sent;
        report_stub.queries_sent = queries;
        V6FeasibilityReport {
            queries,
            distinct_scopes: scopes.iter().copied().collect(),
            distinct_addresses: answers.len(),
            enumeration_feasible: scopes.iter().any(|s| *s > 0),
        }
    }

    /// Runs the scan sharded across `workers` source addresses using
    /// scoped threads (the parallel-scan ablation). Each worker
    /// gets its own source address (`source + k`) and clock; the reported
    /// duration is the slowest worker's.
    pub fn scan_parallel(
        &self,
        domain: DomainName,
        auth: &(dyn NameServer + Sync),
        rib: &Rib,
        start: SimTime,
        workers: usize,
    ) -> EcsScanReport {
        let workers = workers.max(1);
        let subnets = self.candidate_subnets(rib);
        let shards: Vec<Vec<Ipv4Net>> = (0..workers)
            .map(|w| subnets.iter().skip(w).step_by(workers).copied().collect())
            .collect();
        let reports: Vec<EcsScanReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(w, shard)| {
                    let mut config = self.config.clone();
                    let base = u32::from(config.source);
                    config.source = Ipv4Addr::from(base + w as u32);
                    // Scope honouring needs a global view; per-worker scopes
                    // are still correct, just less effective.
                    let domain = domain.clone();
                    scope.spawn(move || {
                        let scanner = EcsScanner::new(config);
                        let mut clock = SimClock::new(start);
                        scanner.scan_subnets(domain, shard, auth, rib, &mut clock)
                    })
                })
                .collect();
            handles
                .into_iter()
                // lintkit: allow(no-panic) -- join fails only if a worker panicked; nothing to recover
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        // Merge.
        let mut merged = EcsScanReport {
            domain,
            discovered: BTreeSet::new(),
            by_ingress_as: BTreeMap::new(),
            per_client_as: BTreeMap::new(),
            ingress_prefixes: BTreeSet::new(),
            subnets_served: BTreeMap::new(),
            queries_sent: 0,
            skipped_by_scope: 0,
            skipped_unrouted: 0,
            rate_limited: 0,
            retries: 0,
            exhausted: 0,
            decode_errors: 0,
            duration: SimDuration::ZERO,
        };
        for r in reports {
            merged.discovered.extend(r.discovered.iter().copied());
            for (asn, addrs) in r.by_ingress_as {
                merged
                    .by_ingress_as
                    .entry(asn)
                    .or_default()
                    .extend(addrs.iter().copied());
            }
            for (asn, serving) in r.per_client_as {
                let e = merged.per_client_as.entry(asn).or_default();
                e.apple_subnets += serving.apple_subnets;
                e.akamai_subnets += serving.akamai_subnets;
            }
            merged.ingress_prefixes.extend(r.ingress_prefixes);
            for (addr, served) in r.subnets_served {
                *merged.subnets_served.entry(addr).or_insert(0) += served;
            }
            merged.queries_sent += r.queries_sent;
            merged.skipped_by_scope += r.skipped_by_scope;
            merged.skipped_unrouted += r.skipped_unrouted;
            merged.rate_limited += r.rate_limited;
            merged.retries += r.retries;
            merged.exhausted += r.exhausted;
            merged.decode_errors += r.decode_errors;
            merged.duration = merged.duration.max(r.duration);
        }
        merged
    }

    /// Scans an explicit subnet list.
    ///
    /// Used by the parallel workers, and by benchmarks that need a
    /// fixed-size scan kernel independent of the deployment scale.
    pub fn scan_subnets(
        &self,
        domain: DomainName,
        subnets: &[Ipv4Net],
        auth: &dyn NameServer,
        rib: &Rib,
        clock: &mut SimClock,
    ) -> EcsScanReport {
        let start = clock.now();
        let mut report = EcsScanReport {
            domain: domain.clone(),
            discovered: BTreeSet::new(),
            by_ingress_as: BTreeMap::new(),
            per_client_as: BTreeMap::new(),
            ingress_prefixes: BTreeSet::new(),
            subnets_served: BTreeMap::new(),
            queries_sent: 0,
            skipped_by_scope: 0,
            skipped_unrouted: 0,
            rate_limited: 0,
            retries: 0,
            exhausted: 0,
            decode_errors: 0,
            duration: SimDuration::ZERO,
        };
        let mut known_scopes: PrefixTrie<()> = PrefixTrie::new();
        let mut scratch = ScanScratch::new(&self.config, &domain);
        for subnet in subnets {
            if self.config.respect_scopes
                && known_scopes
                    .longest_match(IpAddr::V4(subnet.network()))
                    .is_some()
            {
                report.skipped_by_scope += 1;
                continue;
            }
            let Some(response) =
                self.query_subnet(&domain, *subnet, auth, clock, &mut scratch, &mut report)
            else {
                continue;
            };
            if response.rcode != Rcode::NoError {
                continue;
            }
            if let Some(scope) = response
                .edns
                .as_ref()
                .and_then(|o| o.ecs())
                .map(|e| e.scope_len)
            {
                if self.config.respect_scopes && scope < 24 {
                    if let Ok(scope_net) = Ipv4Net::new(subnet.network(), scope) {
                        known_scopes.insert(scope_net, ());
                    }
                }
            }
            let answers = response.a_answers();
            let mut seen_ops: BTreeSet<Asn> = BTreeSet::new();
            let scope_credit = {
                let scope = response
                    .edns
                    .as_ref()
                    .and_then(|o| o.ecs())
                    .map(|e| e.scope_len)
                    .unwrap_or(24);
                if self.config.respect_scopes && scope < 24 {
                    1u64 << (24 - scope.min(24))
                } else {
                    1
                }
            };
            scratch.addr_batch.clear();
            scratch
                .addr_batch
                .extend(answers.iter().map(|a| IpAddr::V4(*a)));
            rib.lookup_batch(&scratch.addr_batch, &mut scratch.batch_out);
            for (addr, hit) in answers.iter().zip(&scratch.batch_out) {
                report.discovered.insert(*addr);
                *report.subnets_served.entry(*addr).or_insert(0) += scope_credit;
                if let Some((prefix, asn)) = hit {
                    report.by_ingress_as.entry(*asn).or_default().insert(*addr);
                    report.ingress_prefixes.insert(prefix.to_string());
                    seen_ops.insert(*asn);
                }
            }
            if let Some((_, client_asn)) =
                rib.lookup_memoized(IpAddr::V4(subnet.network()), &mut scratch.client_memo)
            {
                if !Asn::INGRESS_OPERATORS.contains(&client_asn)
                    && !Asn::EGRESS_OPERATORS.contains(&client_asn)
                {
                    // A scope wider than /24 makes this one answer stand for
                    // every /24 inside it — credit them all, since the
                    // scanner will skip them (the paper reports Table 2 at
                    // full /24 granularity).
                    let scope = response
                        .edns
                        .as_ref()
                        .and_then(|o| o.ecs())
                        .map(|e| e.scope_len)
                        .unwrap_or(24);
                    let credit = if self.config.respect_scopes && scope < 24 {
                        1u64 << (24 - scope.min(24))
                    } else {
                        1
                    };
                    let entry = report.per_client_as.entry(client_asn).or_default();
                    for op in seen_ops {
                        match op {
                            Asn::APPLE => entry.apple_subnets += credit,
                            Asn::AKAMAI_PR => entry.akamai_subnets += credit,
                            _ => {}
                        }
                    }
                }
            }
        }
        report.duration = clock.now() - start;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    fn deployment() -> Deployment {
        Deployment::build(21, DeploymentConfig::scaled(1024))
    }

    fn run_scan(d: &Deployment, domain: Domain, epoch: Epoch) -> EcsScanReport {
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(epoch.start());
        scanner.scan(domain.name(), &auth, &d.rib, &mut clock)
    }

    #[test]
    fn scan_discovers_both_operators() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        assert!(report.count_for(Asn::APPLE) > 0, "no Apple ingresses");
        assert!(report.count_for(Asn::AKAMAI_PR) > 0, "no Akamai ingresses");
        assert_eq!(
            report.total(),
            report.count_for(Asn::APPLE) + report.count_for(Asn::AKAMAI_PR)
        );
        // Everything discovered must actually be an ingress address.
        for addr in &report.discovered {
            assert!(d.fleets.is_ingress(IpAddr::V4(*addr)), "{addr}");
        }
    }

    #[test]
    fn akamai_dominates_address_count() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        let akamai = report.count_for(Asn::AKAMAI_PR) as f64;
        let total = report.total() as f64;
        assert!(
            akamai / total > 0.6,
            "AkamaiPR share {:.3} too low",
            akamai / total
        );
    }

    #[test]
    fn scope_honouring_reduces_queries() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let rib = &d.rib;
        let mut with = EcsScanner::default();
        with.config.respect_scopes = true;
        let mut without = EcsScanner::default();
        without.config.respect_scopes = false;
        let mut clock_a = SimClock::new(Epoch::Apr2022.start());
        let ra = with.scan(Domain::MaskQuic.name(), &auth, rib, &mut clock_a);
        let mut clock_b = SimClock::new(Epoch::Apr2022.start());
        let rb = without.scan(Domain::MaskQuic.name(), &auth, rib, &mut clock_b);
        assert!(
            ra.queries_sent < rb.queries_sent,
            "{} !< {}",
            ra.queries_sent,
            rb.queries_sent
        );
        assert!(ra.skipped_by_scope > 0);
        // The discovered sets still agree on operators (scope skipping is
        // sound: skipped subnets share answers with their covering scope).
        assert!(
            rb.discovered.is_superset(&ra.discovered) || ra.discovered.is_superset(&rb.discovered)
        );
    }

    #[test]
    fn fallback_scan_in_feb_is_all_apple() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskH2, Epoch::Feb2022);
        assert!(report.count_for(Asn::APPLE) > 0);
        assert_eq!(
            report.count_for(Asn::AKAMAI_PR),
            0,
            "AkamaiPR fallback in Feb"
        );
    }

    #[test]
    fn growth_between_epochs() {
        let d = deployment();
        let jan = run_scan(&d, Domain::MaskQuic, Epoch::Jan2022);
        let apr = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        assert!(
            apr.total() > jan.total(),
            "no growth: {} -> {}",
            jan.total(),
            apr.total()
        );
    }

    #[test]
    fn per_client_as_counts_populate() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        assert!(!report.per_client_as.is_empty());
        // Every client AS in the report is a world AS.
        for asn in report.per_client_as.keys() {
            assert!(d.world.by_asn(*asn).is_some(), "{asn} not in world");
        }
    }

    #[test]
    fn rate_limited_scan_takes_longer() {
        let d = deployment();
        let rib = &d.rib;
        let scanner = EcsScanner::default();
        let auth_fast = d.auth_server_unlimited();
        let mut clock_fast = SimClock::new(Epoch::Apr2022.start());
        let fast = scanner.scan(Domain::MaskQuic.name(), &auth_fast, rib, &mut clock_fast);
        let auth_slow = d.auth_server();
        let mut clock_slow = SimClock::new(Epoch::Apr2022.start());
        let slow = scanner.scan(Domain::MaskQuic.name(), &auth_slow, rib, &mut clock_slow);
        assert!(slow.rate_limited > 0, "rate limiter never triggered");
        assert!(slow.duration > fast.duration);
        // Rate limiting must not lose addresses.
        assert_eq!(slow.discovered, fast.discovered);
    }

    #[test]
    fn unrouted_space_skipped() {
        let d = deployment();
        let scanner = EcsScanner::default();
        let candidates = scanner.candidate_subnets(&d.rib);
        // All candidates are routed.
        for subnet in candidates.iter().step_by(97) {
            assert!(d.rib.is_routed(IpAddr::V4(subnet.network())));
        }
        // Far fewer than the full unicast space.
        assert!(candidates.len() < 14_000_000);
    }

    #[test]
    fn fast_path_matches_general_path() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let mut fast = EcsScanner::default();
        fast.config.use_fast_path = true;
        let mut general = EcsScanner::default();
        general.config.use_fast_path = false;
        let mut clock_f = SimClock::new(Epoch::Apr2022.start());
        let rf = fast.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock_f);
        let mut clock_g = SimClock::new(Epoch::Apr2022.start());
        let rg = general.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock_g);
        // Full-report equality: identical discovery, attribution, counters
        // and simulated timing — the fast path is an optimisation, not a
        // behaviour change.
        assert_eq!(rf, rg);
        assert!(rf.total() > 0, "scan found nothing — test is vacuous");
    }

    #[test]
    fn fast_path_matches_general_path_under_rate_limiting() {
        let d = deployment();
        let mut fast = EcsScanner::default();
        fast.config.use_fast_path = true;
        let mut general = EcsScanner::default();
        general.config.use_fast_path = false;
        // Fresh servers: the rate limiter's token bucket is stateful, so a
        // shared instance would hand the second scan a drained bucket.
        let auth_f = d.auth_server();
        let mut clock_f = SimClock::new(Epoch::Apr2022.start());
        let rf = fast.scan(Domain::MaskQuic.name(), &auth_f, &d.rib, &mut clock_f);
        let auth_g = d.auth_server();
        let mut clock_g = SimClock::new(Epoch::Apr2022.start());
        let rg = general.scan(Domain::MaskQuic.name(), &auth_g, &d.rib, &mut clock_g);
        assert_eq!(rf, rg);
        assert!(rf.rate_limited > 0, "rate limiter never triggered");
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let seq = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
        let par = scanner.scan_parallel(
            Domain::MaskQuic.name(),
            &auth,
            &d.rib,
            Epoch::Apr2022.start(),
            4,
        );
        assert_eq!(par.discovered, seq.discovered);
        assert_eq!(par.by_ingress_as, seq.by_ingress_as);
    }
}

#[cfg(test)]
mod v6_tests {
    use super::*;
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    #[test]
    fn v6_enumeration_is_infeasible() {
        let d = Deployment::build(21, DeploymentConfig::scaled(1024));
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let samples: Vec<Ipv4Net> = scanner
            .candidate_subnets(&d.rib)
            .into_iter()
            .step_by(199)
            .take(64)
            .collect();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report =
            scanner.probe_v6_feasibility(Domain::MaskQuic.name(), &auth, &samples, &mut clock);
        assert_eq!(report.queries, 64);
        assert_eq!(report.distinct_scopes, vec![0], "AAAA scope must be 0");
        assert!(!report.enumeration_feasible);
        // The probe still sees *some* addresses — just cannot attribute
        // subnets to them, hence the fall-back to RIPE Atlas.
        assert!(report.distinct_addresses > 0);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use tectonic_dns::server::{NameServer, QueryContext, ServerReply};
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    /// A server that drops every query — the pathological rate limiter.
    struct BlackHole;

    impl NameServer for BlackHole {
        fn handle_query(&self, _wire: &[u8], _ctx: &QueryContext) -> ServerReply {
            ServerReply::Dropped
        }
    }

    #[test]
    fn scanner_gives_up_instead_of_hanging() {
        let d = Deployment::build(1, DeploymentConfig::scaled(4096));
        let scanner = EcsScanner::new(EcsScanConfig {
            max_retries: 3,
            ..EcsScanConfig::default()
        });
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report = scanner.scan(Domain::MaskQuic.name(), &BlackHole, &d.rib, &mut clock);
        assert_eq!(report.total(), 0);
        assert!(report.rate_limited > 0);
        // Every query was dropped: the drop ledger covers them all.
        assert_eq!(report.queries_sent, report.rate_limited);
        assert!(report.per_client_as.is_empty());
    }

    #[test]
    fn exhausted_budget_counts_each_candidate_exactly_once() {
        let d = Deployment::build(1, DeploymentConfig::scaled(4096));
        let budget = 3u64;
        let scanner = EcsScanner::new(EcsScanConfig {
            max_retries: budget as u32,
            ..EcsScanConfig::default()
        });
        let candidates = scanner.candidate_subnets(&d.rib).len() as u64;
        assert!(candidates > 0);
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report = scanner.scan(Domain::MaskQuic.name(), &BlackHole, &d.rib, &mut clock);
        // Against a drop-everything server each candidate spends its whole
        // retry budget and is then abandoned exactly once — no
        // double-counting between the retry and exhaustion ledgers.
        assert_eq!(report.retries, budget * candidates);
        assert_eq!(report.exhausted, candidates);
        assert_eq!(report.rate_limited, report.retries + report.exhausted);
        assert_eq!(report.queries_sent, report.rate_limited);
        assert_eq!(report.queries_sent, (budget + 1) * candidates);
    }

    /// A server that answers garbage bytes.
    struct GarbageServer;

    impl NameServer for GarbageServer {
        fn handle_query(&self, _wire: &[u8], _ctx: &QueryContext) -> ServerReply {
            ServerReply::Response(vec![0xde, 0xad, 0xbe])
        }
    }

    #[test]
    fn scanner_survives_garbage_responses() {
        let d = Deployment::build(1, DeploymentConfig::scaled(4096));
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report = scanner.scan(Domain::MaskQuic.name(), &GarbageServer, &d.rib, &mut clock);
        assert_eq!(report.total(), 0, "garbage must not become addresses");
        assert!(report.queries_sent > 0);
        assert!(report.decode_errors > 0, "undecodable replies are counted");
    }
}
