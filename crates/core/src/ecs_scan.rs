//! The ECS enumeration scanner (§3, §4.1).
//!
//! Iterates the routed IPv4 space in /24 steps, attaching each subnet as an
//! EDNS0 Client Subnet option to A queries for the mask domains, and
//! collects every ingress address the authoritative servers reveal. The
//! scanner implements the paper's two ethics optimisations (§7):
//!
//! * **routed-space filter** — only subnets covered by a BGP announcement
//!   are queried,
//! * **scope honouring** — when a response declares a scope shorter than
//!   /24, no other subnet inside that scope is queried.
//!
//! Rate limiting by the server appears as dropped queries; the scanner
//! backs off and retries, which is what stretches the full scan to tens of
//! simulated hours (the paper reports ~40 h).

use std::collections::{BTreeMap, BTreeSet};
use std::net::{IpAddr, Ipv4Addr};

use bytes::BytesMut;
use serde::{Deserialize, Serialize};
use tectonic_bgp::{LookupMemo, Rib};
use tectonic_dns::server::{NameServer, QueryContext, ReplyOutcome, ServerReply};
use tectonic_dns::{
    decode_message, encode_message, DomainName, EcsOption, Message, MessageEncoder, PatchedQuery,
    QType, QueryTemplate, Rcode,
};
use tectonic_engine::{Engine, EngineConfig, ShardCtx, ShardModel};
use tectonic_net::{
    Asn, BatchScratch, IpNet, Ipv4Net, PrefixTrie, SimClock, SimDuration, SimRng, SimTime,
};

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct EcsScanConfig {
    /// Source address the scanner queries from.
    pub source: Ipv4Addr,
    /// Honour server-returned ECS scopes shorter than /24 (§7).
    pub respect_scopes: bool,
    /// Skip address space with no covering BGP announcement (§7).
    pub skip_unrouted: bool,
    /// Back-off applied when a query is dropped by rate limiting.
    pub retry_backoff: SimDuration,
    /// Give up on a subnet after this many rate-limit retries.
    pub max_retries: u32,
    /// Fixed per-query pacing (simulated network + processing time).
    pub query_pacing: SimDuration,
    /// Use the pre-encoded query template + scratch-buffer reply path.
    ///
    /// The fast path is byte-identical to the general encoder (verified at
    /// template construction, see [`QueryTemplate`]); this switch exists for
    /// the ablation benchmark and as an escape hatch.
    pub use_fast_path: bool,
}

impl Default for EcsScanConfig {
    fn default() -> Self {
        EcsScanConfig {
            source: Ipv4Addr::new(138, 246, 253, 10), // TUM-like scan host
            respect_scopes: true,
            skip_unrouted: true,
            retry_backoff: SimDuration::from_millis(13),
            max_retries: 32,
            query_pacing: SimDuration::from_millis(12),
            use_fast_path: true,
        }
    }
}

/// Per-client-AS serving counts observed by the scan (Table 2 input).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsServing {
    /// /24 subnets answered from Apple's fleet.
    pub apple_subnets: u64,
    /// /24 subnets answered from Akamai PR's fleet.
    pub akamai_subnets: u64,
}

impl AsServing {
    /// The serving category this AS falls into, if it was seen at all.
    pub fn category(&self) -> Option<ServingCategory> {
        match (self.apple_subnets > 0, self.akamai_subnets > 0) {
            (true, true) => Some(ServingCategory::Both),
            (true, false) => Some(ServingCategory::AppleOnly),
            (false, true) => Some(ServingCategory::AkamaiOnly),
            (false, false) => None,
        }
    }
}

/// Observed serving categories (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServingCategory {
    /// Served exclusively by Akamai PR.
    AkamaiOnly,
    /// Served exclusively by Apple.
    AppleOnly,
    /// Served by both operators.
    Both,
}

/// The outcome of one ECS scan of one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcsScanReport {
    /// The scanned domain.
    pub domain: DomainName,
    /// Every distinct ingress address uncovered.
    pub discovered: BTreeSet<Ipv4Addr>,
    /// Discovered addresses grouped by origin AS (RIB attribution).
    pub by_ingress_as: BTreeMap<Asn, BTreeSet<Ipv4Addr>>,
    /// Per-client-AS serving counts.
    pub per_client_as: BTreeMap<Asn, AsServing>,
    /// Distinct routed BGP prefixes containing discovered addresses.
    pub ingress_prefixes: BTreeSet<String>,
    /// Client /24 subnets served per discovered address (scope-credited) —
    /// the input to the ingress-load analysis (§6 future work: "does the
    /// system have bottlenecks?").
    pub subnets_served: BTreeMap<Ipv4Addr, u64>,
    /// Queries actually sent (after skipping).
    pub queries_sent: u64,
    /// Subnets skipped thanks to scope honouring.
    pub skipped_by_scope: u64,
    /// Subnets skipped as unrouted.
    pub skipped_unrouted: u64,
    /// Dropped replies observed (rate limiting or injected loss). Every
    /// drop is either retried (`retries`) or abandons its subnet
    /// (`exhausted`): `rate_limited == retries + exhausted` always holds.
    pub rate_limited: u64,
    /// Drops that were answered with a backed-off retry.
    pub retries: u64,
    /// Subnets abandoned after the retry budget ran out — each counted
    /// exactly once, on the drop that exhausted the budget.
    pub exhausted: u64,
    /// Replies that failed DNS wire decoding (truncated or garbage bytes).
    /// Such records are skipped and counted — one malformed reply must
    /// never abort a multi-hour scan.
    pub decode_errors: u64,
    /// Simulated wall-clock duration of the scan.
    ///
    /// For merged reports ([`EcsScanner::scan_parallel`],
    /// [`EcsScanner::scan_engine`]) this is the **slowest worker's**
    /// duration: shards run concurrently over the same simulated window, so
    /// the scan is finished when the last shard is. All other fields merge
    /// as unions (sets) or sums (counters), which makes `duration` the one
    /// field where a sharded report can legitimately differ from the serial
    /// scan's.
    pub duration: SimDuration,
}

impl EcsScanReport {
    /// An all-zero report for `domain`.
    fn empty(domain: DomainName) -> EcsScanReport {
        EcsScanReport {
            domain,
            discovered: BTreeSet::new(),
            by_ingress_as: BTreeMap::new(),
            per_client_as: BTreeMap::new(),
            ingress_prefixes: BTreeSet::new(),
            subnets_served: BTreeMap::new(),
            queries_sent: 0,
            skipped_by_scope: 0,
            skipped_unrouted: 0,
            rate_limited: 0,
            retries: 0,
            exhausted: 0,
            decode_errors: 0,
            duration: SimDuration::ZERO,
        }
    }

    /// Folds `other` into `self`: sets union, counters sum, `duration`
    /// takes the maximum (see the field docs — the merged scan is as slow
    /// as its slowest worker).
    fn absorb(&mut self, other: EcsScanReport) {
        self.discovered.extend(other.discovered.iter().copied());
        for (asn, addrs) in other.by_ingress_as {
            self.by_ingress_as
                .entry(asn)
                .or_default()
                .extend(addrs.iter().copied());
        }
        for (asn, serving) in other.per_client_as {
            let e = self.per_client_as.entry(asn).or_default();
            e.apple_subnets += serving.apple_subnets;
            e.akamai_subnets += serving.akamai_subnets;
        }
        self.ingress_prefixes.extend(other.ingress_prefixes);
        for (addr, served) in other.subnets_served {
            *self.subnets_served.entry(addr).or_insert(0) += served;
        }
        self.queries_sent += other.queries_sent;
        self.skipped_by_scope += other.skipped_by_scope;
        self.skipped_unrouted += other.skipped_unrouted;
        self.rate_limited += other.rate_limited;
        self.retries += other.retries;
        self.exhausted += other.exhausted;
        self.decode_errors += other.decode_errors;
        self.duration = self.duration.max(other.duration);
    }

    /// Merges per-worker reports in shard-index order.
    fn merged(domain: DomainName, reports: impl IntoIterator<Item = EcsScanReport>) -> Self {
        let mut merged = EcsScanReport::empty(domain);
        for r in reports {
            merged.absorb(r);
        }
        merged
    }

    /// Ingress address count for one operator.
    pub fn count_for(&self, asn: Asn) -> usize {
        self.by_ingress_as.get(&asn).map(BTreeSet::len).unwrap_or(0)
    }

    /// Total distinct addresses.
    pub fn total(&self) -> usize {
        self.discovered.len()
    }
}

/// Outcome of the IPv6 ECS feasibility probe (§3's negative result).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct V6FeasibilityReport {
    /// AAAA probes sent.
    pub queries: u64,
    /// ECS scopes observed in responses (the paper: only 0).
    pub distinct_scopes: Vec<u8>,
    /// Distinct AAAA addresses seen across the probes.
    pub distinct_addresses: usize,
    /// Whether subnet-scoped enumeration would work (the paper: no).
    pub enumeration_feasible: bool,
}

/// The ECS enumeration scanner.
#[derive(Debug, Clone, Default)]
pub struct EcsScanner {
    config: EcsScanConfig,
}

/// Per-scan (or per-worker) reusable buffers and memo state.
///
/// Holding these across the whole subnet loop is what makes the hot path
/// allocation-free: each query is patched in place in a pre-encoded
/// template, the reply lands in a reused buffer, a reply's answers are
/// attributed with one batched RIB lookup, and the client-AS lookups for
/// consecutive subnets hit a one-entry memo.
struct ScanScratch {
    /// The next query's ID (wraps; seeded to match the historical scanner).
    query_id: u16,
    /// Pre-encoded query with patchable ID and subnet bytes. `None` when
    /// the fast path is disabled or the template failed its self-check, in
    /// which case every query takes the general encoder below.
    patched: Option<PatchedQuery>,
    /// General-path encoder and its output buffer (also the fallback).
    encoder: MessageEncoder,
    query_buf: BytesMut,
    /// Reply buffer the server encodes into.
    reply: BytesMut,
    /// Ingress-address batch for one reply's answers, attributed with a
    /// single [`Rib::lookup_batch`] call per burst.
    addr_batch: Vec<IpAddr>,
    /// Attribution results for `addr_batch` (reused across replies).
    batch_out: Vec<Option<(IpNet, Asn)>>,
    /// Walk state for the RIB's batch lookup, reused so the frozen-path
    /// attribution never allocates per burst.
    lpm_scratch: BatchScratch,
    /// Memo for client-AS lookups — subnets arrive in ascending order, so
    /// consecutive /24s almost always share the announced client prefix.
    client_memo: LookupMemo,
}

/// What one ECS query attempt produced.
enum AttemptOutcome {
    /// A decodable DNS response (any rcode).
    Answered(Message),
    /// A reply that failed wire decoding.
    Undecodable,
    /// No reply — rate limiting or injected loss.
    Dropped,
}

impl ScanScratch {
    fn new(config: &EcsScanConfig, domain: &DomainName) -> ScanScratch {
        let patched = config
            .use_fast_path
            .then(|| QueryTemplate::new_v4_24(domain, QType::A))
            .flatten()
            .map(|t| t.instantiate());
        ScanScratch {
            query_id: 1,
            patched,
            encoder: MessageEncoder::new(),
            query_buf: BytesMut::new(),
            reply: BytesMut::new(),
            addr_batch: Vec::new(),
            batch_out: Vec::new(),
            lpm_scratch: BatchScratch::new(),
            client_memo: LookupMemo::new(),
        }
    }
}

impl EcsScanner {
    /// A scanner with the given configuration.
    pub fn new(config: EcsScanConfig) -> EcsScanner {
        EcsScanner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EcsScanConfig {
        &self.config
    }

    /// Enumerates the candidate /24 subnets: every /24 of every announced
    /// IPv4 prefix (deduplicated, in address order). With `skip_unrouted`
    /// disabled, the entire unicast space is returned instead.
    pub fn candidate_subnets(&self, rib: &Rib) -> Vec<Ipv4Net> {
        if self.config.skip_unrouted {
            let mut subnets = Vec::new();
            for p in EcsScanner::top_level_prefixes(rib) {
                if p.len() > 24 {
                    subnets.push(Ipv4Net::slash24_of(p.network()));
                } else if let Ok(subs) = p.subnets(24) {
                    subnets.extend(subs);
                }
            }
            subnets.dedup();
            subnets
        } else {
            // 1.0.0.0 through 223.255.255.0 — the unicast space.
            let all = Ipv4Net::literal("0.0.0.0/0");
            all.subnets(24)
                .into_iter()
                .flatten()
                .filter(|s| {
                    let first_octet = s.network().octets()[0];
                    (1..=223).contains(&first_octet)
                })
                .collect()
        }
    }

    /// Runs a full scan of `domain` against `auth`, advancing `clock`.
    pub fn scan(
        &self,
        domain: DomainName,
        auth: &dyn NameServer,
        rib: &Rib,
        clock: &mut SimClock,
    ) -> EcsScanReport {
        let subnets = self.candidate_subnets(rib);
        self.scan_subnets(domain, &subnets, auth, rib, clock)
    }

    /// Sends exactly one ECS query at simulated time `now` and classifies
    /// the reply. No clock or ledger side effects: both the serial retry
    /// loop and the event-driven engine shards build their timing and
    /// counters around this single-attempt kernel, which is what keeps the
    /// two paths byte-equivalent.
    ///
    /// On the fast path the query is the scratch template with five bytes
    /// patched; otherwise it is rebuilt through the reusable encoder. The
    /// reply is written into the scratch buffer via
    /// [`NameServer::handle_query_into`] — the steady state allocates only
    /// inside message *decoding*.
    fn attempt_query(
        &self,
        domain: &DomainName,
        subnet: Ipv4Net,
        auth: &dyn NameServer,
        now: SimTime,
        scratch: &mut ScanScratch,
    ) -> AttemptOutcome {
        scratch.query_id = scratch.query_id.wrapping_add(1);
        let id = scratch.query_id;
        let wire: &[u8] = match &mut scratch.patched {
            Some(patched) => patched.patch(id, subnet),
            None => {
                let mut query = Message::query(id, domain.clone(), QType::A);
                query.ensure_edns().set_ecs(EcsOption::for_v4_net(subnet));
                scratch.encoder.encode_into(&query, &mut scratch.query_buf);
                &scratch.query_buf
            }
        };
        let ctx = QueryContext {
            src: IpAddr::V4(self.config.source),
            now,
        };
        match auth.handle_query_into(wire, &ctx, &mut scratch.reply) {
            ReplyOutcome::Written => match decode_message(&scratch.reply) {
                Ok(response) => AttemptOutcome::Answered(response),
                Err(_) => AttemptOutcome::Undecodable,
            },
            ReplyOutcome::Dropped => AttemptOutcome::Dropped,
        }
    }

    /// Sends one ECS query with retries on rate-limit drops (serial path).
    fn query_subnet(
        &self,
        domain: &DomainName,
        subnet: Ipv4Net,
        auth: &dyn NameServer,
        clock: &mut SimClock,
        scratch: &mut ScanScratch,
        report: &mut EcsScanReport,
    ) -> Option<Message> {
        let mut attempts = 0;
        loop {
            let now = clock.now();
            report.queries_sent += 1;
            clock.advance(self.config.query_pacing);
            match self.attempt_query(domain, subnet, auth, now, scratch) {
                AttemptOutcome::Answered(response) => return Some(response),
                AttemptOutcome::Undecodable => {
                    report.decode_errors += 1;
                    return None;
                }
                AttemptOutcome::Dropped => {
                    report.rate_limited += 1;
                    attempts += 1;
                    if attempts > self.config.max_retries {
                        report.exhausted += 1;
                        return None;
                    }
                    report.retries += 1;
                    clock.advance(self.config.retry_backoff);
                }
            }
        }
    }

    /// Records one successful response into the report: scope bookkeeping,
    /// ingress attribution, and per-client-AS serving credit. Shared by the
    /// serial loop and the engine shards.
    ///
    /// Returns the scope net newly inserted into `known_scopes`, if any —
    /// the engine uses it to announce the scope to sibling shards.
    fn process_response(
        &self,
        subnet: Ipv4Net,
        response: &Message,
        rib: &Rib,
        scratch: &mut ScanScratch,
        known_scopes: &mut PrefixTrie<()>,
        report: &mut EcsScanReport,
    ) -> Option<Ipv4Net> {
        if response.rcode != Rcode::NoError {
            return None;
        }
        let mut inserted_scope = None;
        if let Some(scope) = response
            .edns
            .as_ref()
            .and_then(|o| o.ecs())
            .map(|e| e.scope_len)
        {
            if self.config.respect_scopes && scope < 24 {
                if let Ok(scope_net) = Ipv4Net::new(subnet.network(), scope) {
                    known_scopes.insert(scope_net, ());
                    inserted_scope = Some(scope_net);
                }
            }
        }
        let answers = response.a_answers();
        let mut seen_ops: BTreeSet<Asn> = BTreeSet::new();
        let scope_credit = {
            let scope = response
                .edns
                .as_ref()
                .and_then(|o| o.ecs())
                .map(|e| e.scope_len)
                .unwrap_or(24);
            if self.config.respect_scopes && scope < 24 {
                1u64 << (24 - scope.min(24))
            } else {
                1
            }
        };
        scratch.addr_batch.clear();
        scratch
            .addr_batch
            .extend(answers.iter().map(|a| IpAddr::V4(*a)));
        rib.lookup_batch_in(
            &mut scratch.lpm_scratch,
            &scratch.addr_batch,
            &mut scratch.batch_out,
        );
        for (addr, hit) in answers.iter().zip(&scratch.batch_out) {
            report.discovered.insert(*addr);
            *report.subnets_served.entry(*addr).or_insert(0) += scope_credit;
            if let Some((prefix, asn)) = hit {
                report.by_ingress_as.entry(*asn).or_default().insert(*addr);
                report.ingress_prefixes.insert(prefix.to_string());
                seen_ops.insert(*asn);
            }
        }
        if let Some((_, client_asn)) =
            rib.lookup_memoized(IpAddr::V4(subnet.network()), &mut scratch.client_memo)
        {
            if !Asn::INGRESS_OPERATORS.contains(&client_asn)
                && !Asn::EGRESS_OPERATORS.contains(&client_asn)
            {
                // A scope wider than /24 makes this one answer stand for
                // every /24 inside it — credit them all, since the
                // scanner will skip them (the paper reports Table 2 at
                // full /24 granularity).
                let entry = report.per_client_as.entry(client_asn).or_default();
                for op in seen_ops {
                    match op {
                        Asn::APPLE => entry.apple_subnets += scope_credit,
                        Asn::AKAMAI_PR => entry.akamai_subnets += scope_credit,
                        _ => {}
                    }
                }
            }
        }
        inserted_scope
    }

    /// Attempts ECS enumeration over IPv6 (AAAA queries) and reports why
    /// it cannot work — the paper's §3 negative result: the name server
    /// answers every AAAA query with ECS scope 0, declaring the response
    /// valid for the whole address space, so a scope-honouring scanner
    /// stops after a handful of probes.
    pub fn probe_v6_feasibility(
        &self,
        domain: DomainName,
        auth: &dyn NameServer,
        sample_subnets: &[Ipv4Net],
        clock: &mut SimClock,
    ) -> V6FeasibilityReport {
        let mut scopes = BTreeSet::new();
        let mut answers = BTreeSet::new();
        let mut queries = 0u64;
        let mut query_id = 0u16;
        let mut report_stub = EcsScanReport::empty(domain.clone());
        for subnet in sample_subnets {
            query_id = query_id.wrapping_add(1);
            let mut query = Message::query(query_id, domain.clone(), QType::AAAA);
            query.ensure_edns().set_ecs(EcsOption::for_v4_net(*subnet));
            let ctx = QueryContext {
                src: IpAddr::V4(self.config.source),
                now: clock.now(),
            };
            queries += 1;
            clock.advance(self.config.query_pacing);
            if let ServerReply::Response(bytes) = auth.handle_query(&encode_message(&query), &ctx) {
                if let Ok(response) = decode_message(&bytes) {
                    if let Some(ecs) = response.edns.as_ref().and_then(|o| o.ecs()) {
                        scopes.insert(ecs.scope_len);
                    }
                    answers.extend(response.aaaa_answers());
                }
            }
        }
        let _ = report_stub.queries_sent;
        report_stub.queries_sent = queries;
        V6FeasibilityReport {
            queries,
            distinct_scopes: scopes.iter().copied().collect(),
            distinct_addresses: answers.len(),
            enumeration_feasible: scopes.iter().any(|s| *s > 0),
        }
    }

    /// The source address shard `k` queries from: `source + k`, checked —
    /// a base near the top of the v4 space falls back to the base address
    /// itself (a shared rate-limit bucket is merely slower, never wrong)
    /// instead of wrapping past 255.255.255.255.
    fn shard_source(base: Ipv4Addr, shard: usize) -> Ipv4Addr {
        u32::try_from(shard)
            .ok()
            .and_then(|k| u32::from(base).checked_add(k))
            .map(Ipv4Addr::from)
            .unwrap_or(base)
    }

    /// Runs the scan sharded across `workers` source addresses using
    /// scoped threads (the legacy parallel-scan ablation — superseded by
    /// [`EcsScanner::scan_engine`]). Each worker gets its own source
    /// address (`source + k`, checked) and clock; the merged report's
    /// `duration` is the slowest worker's.
    ///
    /// Subnets are dealt round-robin, so a scope discovered by one worker
    /// is invisible to the others: scope honouring degrades to per-worker
    /// (still correct, just fewer skips). The engine scan fixes this by
    /// aligning shards with announcement boundaries and routing scope
    /// announcements as events.
    pub fn scan_parallel(
        &self,
        domain: DomainName,
        auth: &(dyn NameServer + Sync),
        rib: &Rib,
        start: SimTime,
        workers: usize,
    ) -> EcsScanReport {
        let workers = workers.max(1);
        let subnets = self.candidate_subnets(rib);
        let shards: Vec<Vec<Ipv4Net>> = (0..workers)
            .map(|w| subnets.iter().skip(w).step_by(workers).copied().collect())
            .collect();
        let reports: Vec<EcsScanReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(w, shard)| {
                    let mut config = self.config.clone();
                    config.source = EcsScanner::shard_source(config.source, w);
                    let domain = domain.clone();
                    scope.spawn(move || {
                        let scanner = EcsScanner::new(config);
                        let mut clock = SimClock::new(start);
                        scanner.scan_subnets(domain, shard, auth, rib, &mut clock)
                    })
                })
                .collect();
            handles
                .into_iter()
                // lintkit: allow(no-panic) -- join fails only if a worker panicked; nothing to recover
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        EcsScanReport::merged(domain, reports)
    }

    /// Scans an explicit subnet list.
    ///
    /// Used by the parallel workers, and by benchmarks that need a
    /// fixed-size scan kernel independent of the deployment scale.
    pub fn scan_subnets(
        &self,
        domain: DomainName,
        subnets: &[Ipv4Net],
        auth: &dyn NameServer,
        rib: &Rib,
        clock: &mut SimClock,
    ) -> EcsScanReport {
        let start = clock.now();
        let mut report = EcsScanReport::empty(domain.clone());
        let mut known_scopes: PrefixTrie<()> = PrefixTrie::new();
        let mut scratch = ScanScratch::new(&self.config, &domain);
        for subnet in subnets {
            if self.config.respect_scopes
                && known_scopes
                    .longest_match(IpAddr::V4(subnet.network()))
                    .is_some()
            {
                report.skipped_by_scope += 1;
                continue;
            }
            let Some(response) =
                self.query_subnet(&domain, *subnet, auth, clock, &mut scratch, &mut report)
            else {
                continue;
            };
            let _ = self.process_response(
                *subnet,
                &response,
                rib,
                &mut scratch,
                &mut known_scopes,
                &mut report,
            );
        }
        report.duration = clock.now() - start;
        report
    }

    /// The announced prefixes after nested-prefix elimination, sorted —
    /// the address-space partition the candidate /24 list is generated
    /// from, and therefore the natural shard-boundary domain.
    fn top_level_prefixes(rib: &Rib) -> Vec<Ipv4Net> {
        let mut prefixes: Vec<Ipv4Net> = rib
            .iter()
            .filter_map(|(net, _)| net.as_v4().copied())
            .collect();
        prefixes.sort();
        // Drop prefixes nested inside an earlier (shorter) one so each
        // /24 appears once.
        let mut top: Vec<Ipv4Net> = Vec::new();
        for p in prefixes {
            if let Some(l) = top.last() {
                if l.contains_net(&p) {
                    continue;
                }
            }
            top.push(p);
        }
        top
    }

    /// Runs a full scan of `domain` on the sharded discrete-event engine.
    ///
    /// Equivalent to [`EcsScanner::scan`] — field-for-field, except
    /// `duration`, which is the slowest shard's (see the field docs) and
    /// collapses to exact equality at `shards == 1`. The equivalence is
    /// structural, not statistical: shard boundaries are aligned with
    /// top-level announcement boundaries, and every ECS scope a server can
    /// return is contained in the top-level announced prefix of the subnet
    /// that elicited it, so each shard reproduces exactly the serial scan's
    /// skip decisions for its slice of the address space. Worker count
    /// never affects any output bit.
    ///
    /// All shards query through the one `auth`; use
    /// [`EcsScanner::scan_engine_sharded`] to give each shard its own
    /// server (per-shard rate-limit buckets, per-shard fault channels).
    pub fn scan_engine(
        &self,
        domain: DomainName,
        auth: &(dyn NameServer + Sync),
        rib: &Rib,
        start: SimTime,
        engine: &EngineConfig,
    ) -> EcsScanReport {
        self.scan_engine_sharded(domain, &[auth], rib, start, engine)
    }

    /// [`EcsScanner::scan_engine`] with explicit per-shard servers.
    ///
    /// `servers` is indexed by `shard % servers.len()`: pass one server to
    /// share it (it must tolerate concurrent queries), or `engine.shards`
    /// servers for fully independent per-shard state.
    pub fn scan_engine_sharded(
        &self,
        domain: DomainName,
        servers: &[&(dyn NameServer + Sync)],
        rib: &Rib,
        start: SimTime,
        engine: &EngineConfig,
    ) -> EcsScanReport {
        let subnets = self.candidate_subnets(rib);
        let prefixes = EcsScanner::top_level_prefixes(rib);
        self.run_engine_scan(domain, &subnets, &prefixes, servers, rib, start, engine)
    }

    /// Engine scan over an explicit subnet list (benchmarks, targeted
    /// sweeps). With no announcement structure to align shards to, the
    /// list is cut into plain contiguous slices; scopes that cross a cut
    /// travel as events, so skipping is deterministic for a fixed shard
    /// count but — unlike [`EcsScanner::scan_engine`] — may differ from
    /// the serial scan's (an in-flight shard can query a subnet before a
    /// sibling's scope announcement arrives).
    pub fn scan_subnets_engine(
        &self,
        domain: DomainName,
        subnets: &[Ipv4Net],
        servers: &[&(dyn NameServer + Sync)],
        rib: &Rib,
        start: SimTime,
        engine: &EngineConfig,
    ) -> EcsScanReport {
        self.run_engine_scan(domain, subnets, &[], servers, rib, start, engine)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_engine_scan(
        &self,
        domain: DomainName,
        subnets: &[Ipv4Net],
        prefixes: &[Ipv4Net],
        servers: &[&(dyn NameServer + Sync)],
        rib: &Rib,
        start: SimTime,
        engine: &EngineConfig,
    ) -> EcsScanReport {
        let Some(&first_server) = servers.first() else {
            return EcsScanReport::empty(domain);
        };
        let segments = shard_segments(subnets, prefixes, engine.shards);
        let models: Vec<ScanShard<'_>> = segments
            .iter()
            .enumerate()
            .map(|(i, seg)| {
                let mut config = self.config.clone();
                config.source = EcsScanner::shard_source(config.source, i);
                let scratch = ScanScratch::new(&config, &domain);
                ScanShard {
                    scanner: EcsScanner::new(config),
                    domain: domain.clone(),
                    auth: servers
                        .get(i % servers.len())
                        .copied()
                        .unwrap_or(first_server),
                    rib,
                    owned: prefixes.get(seg.prefixes.clone()).unwrap_or(&[]),
                    subnets: subnets.get(seg.subnets.clone()).unwrap_or(&[]),
                    idx: 0,
                    attempts: 0,
                    start,
                    scratch,
                    known_scopes: PrefixTrie::new(),
                    report: EcsScanReport::empty(domain.clone()),
                }
            })
            .collect();
        // The scan draws no shard randomness; the engine seed is fixed.
        let mut eng = Engine::new(engine, models, &SimRng::new(0xEC5));
        for (i, seg) in segments.iter().enumerate() {
            if !seg.subnets.is_empty() {
                eng.seed(i, start, ScanEvent::Attempt);
            }
        }
        EcsScanReport::merged(domain, eng.run())
    }
}

/// One shard's slice of the candidate list and of the top-level prefixes
/// whose /24s it owns.
struct ShardSegment {
    subnets: std::ops::Range<usize>,
    prefixes: std::ops::Range<usize>,
}

/// Cuts the candidate list into `shards` contiguous, balanced segments
/// whose boundaries never split a top-level announced prefix.
///
/// Candidate subnets are generated in address order from the sorted
/// top-level prefixes, so each prefix's /24s form one contiguous run; a
/// subnet not fully contained in any top-level prefix (the lone /24
/// emitted for a longer-than-/24 announcement) forms its own cuttable
/// singleton group. Cut points are chosen as the smallest group boundary
/// at or past each ideal `len * k / shards` split.
fn shard_segments(subnets: &[Ipv4Net], prefixes: &[Ipv4Net], shards: usize) -> Vec<ShardSegment> {
    let shards = shards.max(1);
    // Group boundaries: (subnet index, owner prefix index at that point).
    let mut boundaries: Vec<(usize, usize)> = Vec::new();
    let mut pi = 0usize;
    let mut last_owner = usize::MAX;
    for (i, s) in subnets.iter().enumerate() {
        while let Some(p) = prefixes.get(pi) {
            if p.contains_net(s) {
                break;
            }
            if p.network() <= s.network() {
                // This prefix's address range lies entirely before `s`
                // (top-level prefixes are disjoint and sorted).
                pi += 1;
            } else {
                break;
            }
        }
        let owner = match prefixes.get(pi) {
            Some(p) if p.contains_net(s) => pi,
            _ => usize::MAX, // uncontained: its own singleton group
        };
        if i == 0 || owner == usize::MAX || owner != last_owner {
            boundaries.push((i, owner));
        }
        last_owner = owner;
    }
    boundaries.push((subnets.len(), usize::MAX));

    let mut segments = Vec::with_capacity(shards);
    let mut cursor = 0usize; // index into `boundaries`
    for k in 1..=shards {
        let target = subnets.len() * k / shards;
        let lo = boundaries
            .get(cursor)
            .map(|(i, _)| *i)
            .unwrap_or(subnets.len());
        let mut end = cursor;
        while boundaries
            .get(end + 1)
            .is_some_and(|(i, _)| *i <= target || k == shards)
        {
            end += 1;
        }
        // `end` is now the last boundary at or before the target (or the
        // final boundary for the last shard).
        let hi = boundaries.get(end).map(|(i, _)| *i).unwrap_or(lo);
        let owners: Vec<usize> = boundaries
            .get(cursor..end)
            .unwrap_or(&[])
            .iter()
            .map(|(_, o)| *o)
            .filter(|o| *o != usize::MAX)
            .collect();
        let prange = match (owners.first(), owners.last()) {
            (Some(first), Some(last)) => *first..*last + 1,
            _ => 0..0,
        };
        segments.push(ShardSegment {
            subnets: lo..hi,
            prefixes: prange,
        });
        cursor = end;
    }
    segments
}

/// Events routed through the engine scan.
#[derive(Clone)]
enum ScanEvent {
    /// Advance this shard's cursor: skip covered subnets, then query one.
    Attempt,
    /// A sibling shard announced a server-returned ECS scope.
    Scope(Ipv4Net),
}

/// One engine shard: a scanner with a per-shard source address, a
/// contiguous slice of the candidate list, and a fully local stat sled
/// (report, scope trie, scratch buffers). The only cross-shard traffic is
/// [`ScanEvent::Scope`] announcements.
struct ScanShard<'a> {
    scanner: EcsScanner,
    domain: DomainName,
    auth: &'a (dyn NameServer + Sync),
    rib: &'a Rib,
    /// Top-level prefixes wholly owned by this shard: a scope contained in
    /// one of them cannot cover any sibling's subnet, so it is not
    /// announced.
    owned: &'a [Ipv4Net],
    subnets: &'a [Ipv4Net],
    idx: usize,
    attempts: u32,
    start: SimTime,
    scratch: ScanScratch,
    known_scopes: PrefixTrie<()>,
    report: EcsScanReport,
}

impl ScanShard<'_> {
    /// Schedules the next attempt, or closes the shard's ledger when the
    /// slice is exhausted. `at` is when the current query's pacing ends —
    /// mirroring the serial scan, whose duration runs to the end of the
    /// last query's pacing window (trailing scope-skips are free).
    fn advance(&mut self, at: SimTime, ctx: &mut ShardCtx<ScanEvent>) {
        if self.idx < self.subnets.len() {
            ctx.schedule(at, ScanEvent::Attempt);
        } else {
            self.report.duration = at - self.start;
        }
    }

    fn attempt(&mut self, now: SimTime, ctx: &mut ShardCtx<ScanEvent>) {
        // Skip scope-covered subnets at the cursor (same order, and — for
        // announcement-aligned shards — provably the same decisions as the
        // serial loop).
        while let Some(subnet) = self.subnets.get(self.idx) {
            if self.scanner.config.respect_scopes
                && self
                    .known_scopes
                    .longest_match(IpAddr::V4(subnet.network()))
                    .is_some()
            {
                self.report.skipped_by_scope += 1;
                self.idx += 1;
            } else {
                break;
            }
        }
        let Some(&subnet) = self.subnets.get(self.idx) else {
            self.report.duration = now - self.start;
            return;
        };
        self.report.queries_sent += 1;
        let next = now + self.scanner.config.query_pacing;
        match self
            .scanner
            .attempt_query(&self.domain, subnet, self.auth, now, &mut self.scratch)
        {
            AttemptOutcome::Answered(response) => {
                self.attempts = 0;
                self.idx += 1;
                let inserted = self.scanner.process_response(
                    subnet,
                    &response,
                    self.rib,
                    &mut self.scratch,
                    &mut self.known_scopes,
                    &mut self.report,
                );
                if let Some(scope_net) = inserted {
                    // Cross-shard state travels as events only: announce
                    // the scope unless it is contained in a prefix this
                    // shard wholly owns (then no sibling can be covered).
                    if !self.owned.iter().any(|p| p.contains_net(&scope_net)) {
                        ctx.broadcast(now, ScanEvent::Scope(scope_net));
                    }
                }
                self.advance(next, ctx);
            }
            AttemptOutcome::Undecodable => {
                self.report.decode_errors += 1;
                self.attempts = 0;
                self.idx += 1;
                self.advance(next, ctx);
            }
            AttemptOutcome::Dropped => {
                self.report.rate_limited += 1;
                self.attempts += 1;
                if self.attempts > self.scanner.config.max_retries {
                    self.report.exhausted += 1;
                    self.attempts = 0;
                    self.idx += 1;
                    self.advance(next, ctx);
                } else {
                    self.report.retries += 1;
                    ctx.schedule(next + self.scanner.config.retry_backoff, ScanEvent::Attempt);
                }
            }
        }
    }
}

impl ShardModel for ScanShard<'_> {
    type Event = ScanEvent;
    type Out = EcsScanReport;

    fn handle(&mut self, now: SimTime, event: ScanEvent, ctx: &mut ShardCtx<ScanEvent>) {
        match event {
            ScanEvent::Attempt => self.attempt(now, ctx),
            ScanEvent::Scope(net) => {
                if self.scanner.config.respect_scopes {
                    self.known_scopes.insert(net, ());
                }
            }
        }
    }

    fn finish(self) -> EcsScanReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    fn deployment() -> Deployment {
        Deployment::build(21, DeploymentConfig::scaled(1024))
    }

    fn run_scan(d: &Deployment, domain: Domain, epoch: Epoch) -> EcsScanReport {
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(epoch.start());
        scanner.scan(domain.name(), &auth, &d.rib, &mut clock)
    }

    #[test]
    fn scan_discovers_both_operators() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        assert!(report.count_for(Asn::APPLE) > 0, "no Apple ingresses");
        assert!(report.count_for(Asn::AKAMAI_PR) > 0, "no Akamai ingresses");
        assert_eq!(
            report.total(),
            report.count_for(Asn::APPLE) + report.count_for(Asn::AKAMAI_PR)
        );
        // Everything discovered must actually be an ingress address.
        for addr in &report.discovered {
            assert!(d.fleets.is_ingress(IpAddr::V4(*addr)), "{addr}");
        }
    }

    #[test]
    fn akamai_dominates_address_count() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        let akamai = report.count_for(Asn::AKAMAI_PR) as f64;
        let total = report.total() as f64;
        assert!(
            akamai / total > 0.6,
            "AkamaiPR share {:.3} too low",
            akamai / total
        );
    }

    #[test]
    fn scope_honouring_reduces_queries() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let rib = &d.rib;
        let mut with = EcsScanner::default();
        with.config.respect_scopes = true;
        let mut without = EcsScanner::default();
        without.config.respect_scopes = false;
        let mut clock_a = SimClock::new(Epoch::Apr2022.start());
        let ra = with.scan(Domain::MaskQuic.name(), &auth, rib, &mut clock_a);
        let mut clock_b = SimClock::new(Epoch::Apr2022.start());
        let rb = without.scan(Domain::MaskQuic.name(), &auth, rib, &mut clock_b);
        assert!(
            ra.queries_sent < rb.queries_sent,
            "{} !< {}",
            ra.queries_sent,
            rb.queries_sent
        );
        assert!(ra.skipped_by_scope > 0);
        // The discovered sets still agree on operators (scope skipping is
        // sound: skipped subnets share answers with their covering scope).
        assert!(
            rb.discovered.is_superset(&ra.discovered) || ra.discovered.is_superset(&rb.discovered)
        );
    }

    #[test]
    fn fallback_scan_in_feb_is_all_apple() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskH2, Epoch::Feb2022);
        assert!(report.count_for(Asn::APPLE) > 0);
        assert_eq!(
            report.count_for(Asn::AKAMAI_PR),
            0,
            "AkamaiPR fallback in Feb"
        );
    }

    #[test]
    fn growth_between_epochs() {
        let d = deployment();
        let jan = run_scan(&d, Domain::MaskQuic, Epoch::Jan2022);
        let apr = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        assert!(
            apr.total() > jan.total(),
            "no growth: {} -> {}",
            jan.total(),
            apr.total()
        );
    }

    #[test]
    fn per_client_as_counts_populate() {
        let d = deployment();
        let report = run_scan(&d, Domain::MaskQuic, Epoch::Apr2022);
        assert!(!report.per_client_as.is_empty());
        // Every client AS in the report is a world AS.
        for asn in report.per_client_as.keys() {
            assert!(d.world.by_asn(*asn).is_some(), "{asn} not in world");
        }
    }

    #[test]
    fn rate_limited_scan_takes_longer() {
        let d = deployment();
        let rib = &d.rib;
        let scanner = EcsScanner::default();
        let auth_fast = d.auth_server_unlimited();
        let mut clock_fast = SimClock::new(Epoch::Apr2022.start());
        let fast = scanner.scan(Domain::MaskQuic.name(), &auth_fast, rib, &mut clock_fast);
        let auth_slow = d.auth_server();
        let mut clock_slow = SimClock::new(Epoch::Apr2022.start());
        let slow = scanner.scan(Domain::MaskQuic.name(), &auth_slow, rib, &mut clock_slow);
        assert!(slow.rate_limited > 0, "rate limiter never triggered");
        assert!(slow.duration > fast.duration);
        // Rate limiting must not lose addresses.
        assert_eq!(slow.discovered, fast.discovered);
    }

    #[test]
    fn unrouted_space_skipped() {
        let d = deployment();
        let scanner = EcsScanner::default();
        let candidates = scanner.candidate_subnets(&d.rib);
        // All candidates are routed.
        for subnet in candidates.iter().step_by(97) {
            assert!(d.rib.is_routed(IpAddr::V4(subnet.network())));
        }
        // Far fewer than the full unicast space.
        assert!(candidates.len() < 14_000_000);
    }

    #[test]
    fn fast_path_matches_general_path() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let mut fast = EcsScanner::default();
        fast.config.use_fast_path = true;
        let mut general = EcsScanner::default();
        general.config.use_fast_path = false;
        let mut clock_f = SimClock::new(Epoch::Apr2022.start());
        let rf = fast.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock_f);
        let mut clock_g = SimClock::new(Epoch::Apr2022.start());
        let rg = general.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock_g);
        // Full-report equality: identical discovery, attribution, counters
        // and simulated timing — the fast path is an optimisation, not a
        // behaviour change.
        assert_eq!(rf, rg);
        assert!(rf.total() > 0, "scan found nothing — test is vacuous");
    }

    #[test]
    fn fast_path_matches_general_path_under_rate_limiting() {
        let d = deployment();
        let mut fast = EcsScanner::default();
        fast.config.use_fast_path = true;
        let mut general = EcsScanner::default();
        general.config.use_fast_path = false;
        // Fresh servers: the rate limiter's token bucket is stateful, so a
        // shared instance would hand the second scan a drained bucket.
        let auth_f = d.auth_server();
        let mut clock_f = SimClock::new(Epoch::Apr2022.start());
        let rf = fast.scan(Domain::MaskQuic.name(), &auth_f, &d.rib, &mut clock_f);
        let auth_g = d.auth_server();
        let mut clock_g = SimClock::new(Epoch::Apr2022.start());
        let rg = general.scan(Domain::MaskQuic.name(), &auth_g, &d.rib, &mut clock_g);
        assert_eq!(rf, rg);
        assert!(rf.rate_limited > 0, "rate limiter never triggered");
    }

    /// Field-by-field equality modulo `duration` (merged reports keep the
    /// slowest shard's duration; everything else must match exactly).
    fn assert_eq_modulo_duration(a: &EcsScanReport, b: &EcsScanReport) {
        let mut a = a.clone();
        let mut b = b.clone();
        a.duration = SimDuration::ZERO;
        b.duration = SimDuration::ZERO;
        assert_eq!(a, b);
    }

    #[test]
    fn engine_scan_matches_serial_exactly() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let serial = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
        // One shard: byte-identical, duration included.
        let one = scanner.scan_engine(
            Domain::MaskQuic.name(),
            &auth,
            &d.rib,
            Epoch::Apr2022.start(),
            &EngineConfig::new(1, 1),
        );
        assert_eq!(serial, one);
        assert!(serial.total() > 0 && serial.skipped_by_scope > 0);
        // Many shards: identical modulo duration (announcement-aligned
        // shards reproduce the serial skip decisions), for any workers.
        for workers in [1, 4, 8] {
            let sharded = scanner.scan_engine(
                Domain::MaskQuic.name(),
                &auth,
                &d.rib,
                Epoch::Apr2022.start(),
                &EngineConfig::new(8, workers),
            );
            assert_eq_modulo_duration(&serial, &sharded);
        }
    }

    #[test]
    fn engine_scan_is_worker_invariant_under_rate_limiting() {
        let d = deployment();
        let scanner = EcsScanner::default();
        let engine8 = |workers: usize| {
            // Fresh per-shard servers: the rate limiter's bucket is
            // stateful, so each run gets its own set.
            let auths: Vec<_> = (0..8).map(|_| d.auth_server()).collect();
            let refs: Vec<&(dyn NameServer + Sync)> = auths
                .iter()
                .map(|a| a as &(dyn NameServer + Sync))
                .collect();
            scanner.scan_engine_sharded(
                Domain::MaskQuic.name(),
                &refs,
                &d.rib,
                Epoch::Apr2022.start(),
                &EngineConfig::new(8, workers),
            )
        };
        let w1 = engine8(1);
        let w4 = engine8(4);
        assert_eq!(w1, w4, "worker count leaked into a rate-limited scan");
        assert!(w1.rate_limited > 0, "rate limiter never triggered");
    }

    #[test]
    fn explicit_list_engine_propagates_scopes_deterministically() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let subnets = scanner.candidate_subnets(&d.rib);
        let run = |workers: usize| {
            scanner.scan_subnets_engine(
                Domain::MaskQuic.name(),
                &subnets,
                &[&auth],
                &d.rib,
                Epoch::Apr2022.start(),
                &EngineConfig::new(8, workers),
            )
        };
        let w1 = run(1);
        let w4 = run(4);
        // Unaligned cuts: serial equality is not promised, determinism is.
        assert_eq!(w1, w4);
        // Scope events do land: local skipping plus announcements still
        // suppress a meaningful share of queries.
        assert!(w1.skipped_by_scope > 0);
        let serial_run = {
            let mut clock = SimClock::new(Epoch::Apr2022.start());
            scanner.scan_subnets(Domain::MaskQuic.name(), &subnets, &auth, &d.rib, &mut clock)
        };
        assert_eq!(w1.discovered, serial_run.discovered);
        assert_eq!(w1.by_ingress_as, serial_run.by_ingress_as);
    }

    #[test]
    fn shard_segments_align_with_prefix_boundaries() {
        let d = deployment();
        let scanner = EcsScanner::default();
        let subnets = scanner.candidate_subnets(&d.rib);
        let prefixes = EcsScanner::top_level_prefixes(&d.rib);
        for shards in [1, 3, 8, 64] {
            let segments = shard_segments(&subnets, &prefixes, shards);
            assert_eq!(segments.len(), shards);
            let mut covered = 0usize;
            for seg in &segments {
                assert_eq!(seg.subnets.start, covered, "segments not contiguous");
                covered = seg.subnets.end;
                // No top-level prefix may straddle a segment boundary: the
                // first subnet of a segment is never strictly inside the
                // same prefix as the last subnet of the previous one.
                if let (Some(first), Some(prev)) = (
                    subnets.get(seg.subnets.start),
                    seg.subnets
                        .start
                        .checked_sub(1)
                        .and_then(|i| subnets.get(i)),
                ) {
                    let shared = prefixes
                        .iter()
                        .find(|p| p.contains_net(first) && p.contains_net(prev));
                    assert!(shared.is_none(), "prefix {shared:?} straddles a cut");
                }
                // Owned prefixes really are owned: every subnet of an owned
                // prefix lies inside the segment.
                for p in prefixes.get(seg.prefixes.clone()).unwrap_or(&[]) {
                    for (i, s) in subnets.iter().enumerate() {
                        if p.contains_net(s) {
                            assert!(
                                seg.subnets.contains(&i),
                                "owned prefix {p} has subnet outside the segment"
                            );
                        }
                    }
                }
            }
            assert_eq!(covered, subnets.len());
        }
    }

    #[test]
    fn shard_source_is_checked() {
        let base = Ipv4Addr::new(255, 255, 255, 250);
        assert_eq!(
            EcsScanner::shard_source(base, 3),
            Ipv4Addr::new(255, 255, 255, 253)
        );
        // Would wrap past 255.255.255.255: falls back to the base.
        assert_eq!(EcsScanner::shard_source(base, 9), base);
        assert_eq!(EcsScanner::shard_source(base, usize::MAX), base);
        let low = Ipv4Addr::new(138, 246, 253, 10);
        assert_eq!(EcsScanner::shard_source(low, 0), low);
        assert_eq!(
            EcsScanner::shard_source(low, 255),
            Ipv4Addr::new(138, 246, 254, 9)
        );
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let d = deployment();
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let seq = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
        let par = scanner.scan_parallel(
            Domain::MaskQuic.name(),
            &auth,
            &d.rib,
            Epoch::Apr2022.start(),
            4,
        );
        assert_eq!(par.discovered, seq.discovered);
        assert_eq!(par.by_ingress_as, seq.by_ingress_as);
    }
}

#[cfg(test)]
mod v6_tests {
    use super::*;
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    #[test]
    fn v6_enumeration_is_infeasible() {
        let d = Deployment::build(21, DeploymentConfig::scaled(1024));
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let samples: Vec<Ipv4Net> = scanner
            .candidate_subnets(&d.rib)
            .into_iter()
            .step_by(199)
            .take(64)
            .collect();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report =
            scanner.probe_v6_feasibility(Domain::MaskQuic.name(), &auth, &samples, &mut clock);
        assert_eq!(report.queries, 64);
        assert_eq!(report.distinct_scopes, vec![0], "AAAA scope must be 0");
        assert!(!report.enumeration_feasible);
        // The probe still sees *some* addresses — just cannot attribute
        // subnets to them, hence the fall-back to RIPE Atlas.
        assert!(report.distinct_addresses > 0);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use tectonic_dns::server::{NameServer, QueryContext, ServerReply};
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    /// A server that drops every query — the pathological rate limiter.
    struct BlackHole;

    impl NameServer for BlackHole {
        fn handle_query(&self, _wire: &[u8], _ctx: &QueryContext) -> ServerReply {
            ServerReply::Dropped
        }
    }

    #[test]
    fn scanner_gives_up_instead_of_hanging() {
        let d = Deployment::build(1, DeploymentConfig::scaled(4096));
        let scanner = EcsScanner::new(EcsScanConfig {
            max_retries: 3,
            ..EcsScanConfig::default()
        });
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report = scanner.scan(Domain::MaskQuic.name(), &BlackHole, &d.rib, &mut clock);
        assert_eq!(report.total(), 0);
        assert!(report.rate_limited > 0);
        // Every query was dropped: the drop ledger covers them all.
        assert_eq!(report.queries_sent, report.rate_limited);
        assert!(report.per_client_as.is_empty());
    }

    #[test]
    fn exhausted_budget_counts_each_candidate_exactly_once() {
        let d = Deployment::build(1, DeploymentConfig::scaled(4096));
        let budget = 3u64;
        let scanner = EcsScanner::new(EcsScanConfig {
            max_retries: budget as u32,
            ..EcsScanConfig::default()
        });
        let candidates = scanner.candidate_subnets(&d.rib).len() as u64;
        assert!(candidates > 0);
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report = scanner.scan(Domain::MaskQuic.name(), &BlackHole, &d.rib, &mut clock);
        // Against a drop-everything server each candidate spends its whole
        // retry budget and is then abandoned exactly once — no
        // double-counting between the retry and exhaustion ledgers.
        assert_eq!(report.retries, budget * candidates);
        assert_eq!(report.exhausted, candidates);
        assert_eq!(report.rate_limited, report.retries + report.exhausted);
        assert_eq!(report.queries_sent, report.rate_limited);
        assert_eq!(report.queries_sent, (budget + 1) * candidates);
    }

    /// A server that answers garbage bytes.
    struct GarbageServer;

    impl NameServer for GarbageServer {
        fn handle_query(&self, _wire: &[u8], _ctx: &QueryContext) -> ServerReply {
            ServerReply::Response(vec![0xde, 0xad, 0xbe])
        }
    }

    #[test]
    fn scanner_survives_garbage_responses() {
        let d = Deployment::build(1, DeploymentConfig::scaled(4096));
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report = scanner.scan(Domain::MaskQuic.name(), &GarbageServer, &d.rib, &mut clock);
        assert_eq!(report.total(), 0, "garbage must not become addresses");
        assert!(report.queries_sent > 0);
        assert!(report.decode_errors > 0, "undecodable replies are counted");
    }
}
