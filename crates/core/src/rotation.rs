//! Egress address rotation statistics (§4.3, R4).
//!
//! Computed from a fine-grained through-relay scan: distinct addresses and
//! subnets observed, the consecutive-request change rate (the paper: >66 %
//! over 48 h at 30-second rounds, six addresses from four subnets), and
//! how often the parallel Safari/curl pair diverges.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::relay_scan::RelayScanSeries;

/// Rotation statistics over one scan series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RotationReport {
    /// Rounds analysed.
    pub rounds: usize,
    /// Distinct egress addresses observed (curl series).
    pub distinct_addresses: usize,
    /// Distinct egress subnets observed (curl series).
    pub distinct_subnets: usize,
    /// Share of consecutive rounds whose egress address changed.
    pub change_rate: f64,
    /// Share of rounds where Safari and curl observed different egress
    /// addresses.
    pub parallel_divergence: f64,
    /// Distinct operators observed.
    pub operators: usize,
}

impl RotationReport {
    /// Computes the statistics from a scan series.
    pub fn from_series(series: &RelayScanSeries) -> RotationReport {
        let curl = series.curl_requests();
        let addresses: BTreeSet<&str> = curl.iter().map(|r| r.egress_addr.as_str()).collect();
        let subnets: BTreeSet<&str> = curl.iter().map(|r| r.egress_subnet.as_str()).collect();
        let changes = curl
            .windows(2)
            .filter(|w| w[0].egress_addr != w[1].egress_addr)
            .count();
        let divergent = series
            .rounds
            .iter()
            .filter(|r| r.safari.egress_addr != r.curl.egress_addr)
            .count();
        RotationReport {
            rounds: series.rounds.len(),
            distinct_addresses: addresses.len(),
            distinct_subnets: subnets.len(),
            change_rate: changes as f64 / curl.len().saturating_sub(1).max(1) as f64,
            parallel_divergence: divergent as f64 / series.rounds.len().max(1) as f64,
            operators: series.operators_seen().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay_scan::RelayScanConfig;
    use tectonic_geo::country::CountryCode;
    use tectonic_net::Epoch;
    use tectonic_relay::{Deployment, DeploymentConfig, DnsMode};

    fn report() -> RotationReport {
        let d = Deployment::build(66, DeploymentConfig::scaled(128));
        let auth = d.auth_server_unlimited();
        let device = d.device_in_country(CountryCode::DE, DnsMode::Open);
        let series = crate::relay_scan::RelayScanSeries::run(
            &device,
            &auth,
            &RelayScanConfig::rotation_series(),
            Epoch::May2022.start(),
        );
        RotationReport::from_series(&series)
    }

    #[test]
    fn change_rate_exceeds_paper_threshold() {
        let r = report();
        assert_eq!(r.rounds, 5760);
        assert!(r.change_rate > 0.66, "change rate {:.3}", r.change_rate);
    }

    #[test]
    fn small_address_pool() {
        let r = report();
        // The paper saw 6 addresses from 4 subnets; the pool must stay
        // small (per-location pool), not an open-ended set.
        assert!(
            (3..=24).contains(&r.distinct_addresses),
            "addresses {}",
            r.distinct_addresses
        );
        assert!(r.distinct_subnets >= 2);
    }

    #[test]
    fn parallel_requests_diverge_frequently() {
        let r = report();
        assert!(
            r.parallel_divergence > 0.4,
            "divergence {:.3}",
            r.parallel_divergence
        );
    }

    #[test]
    fn empty_series_yields_zeroes() {
        let empty = RelayScanSeries {
            rounds: vec![],
            failures: 0,
        };
        let r = RotationReport::from_series(&empty);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.distinct_addresses, 0);
        assert_eq!(r.change_rate, 0.0);
    }
}
