//! Client-AS attribution and the APNIC-population join (Table 2).
//!
//! Groups the client ASes observed in an ECS scan by which ingress operator
//! serves them (Akamai-only / Apple-only / both), then joins each group
//! with the per-AS user populations — the paper's answer to "who actually
//! serves the users?". The scan report's per-address operator attribution
//! comes out of the RIB's compiled-LPM batch path (one
//! [`Rib::lookup_batch`](tectonic_bgp::Rib::lookup_batch) per reply burst),
//! which is result-identical to per-address longest-prefix matches.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tectonic_bgp::AsPopulation;

use crate::ecs_scan::{EcsScanReport, ServingCategory};

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The serving category.
    pub category: ServingCategory,
    /// Estimated users across the category's ASes.
    pub users: u64,
    /// Number of client ASes in the category.
    pub ases: usize,
    /// Number of answered /24 subnets in the category.
    pub slash24: u64,
    /// Apple's subnet share within the category (only meaningful for
    /// `Both`; the paper's footnote reports 76 %).
    pub apple_subnet_share: f64,
}

/// The full Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Rows in the paper's order: Akamai PR, Apple, Both.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Builds the table from a scan report and a population dataset.
    pub fn build(report: &EcsScanReport, aspop: &AsPopulation) -> Table2 {
        let mut grouped: BTreeMap<ServingCategory, (u64, usize, u64, u64)> = BTreeMap::new();
        for (asn, serving) in &report.per_client_as {
            let Some(category) = serving.category() else {
                continue;
            };
            let entry = grouped.entry(category).or_insert((0, 0, 0, 0));
            entry.0 += aspop.get(*asn);
            entry.1 += 1;
            entry.2 += serving.apple_subnets + serving.akamai_subnets;
            entry.3 += serving.apple_subnets;
        }
        let rows = [
            ServingCategory::AkamaiOnly,
            ServingCategory::AppleOnly,
            ServingCategory::Both,
        ]
        .iter()
        .map(|category| {
            let (users, ases, slash24, apple) =
                grouped.get(category).copied().unwrap_or((0, 0, 0, 0));
            Table2Row {
                category: *category,
                users,
                ases,
                slash24,
                apple_subnet_share: apple as f64 / slash24.max(1) as f64,
            }
        })
        .collect();
        Table2 { rows }
    }

    /// Row lookup.
    pub fn row(&self, category: ServingCategory) -> &Table2Row {
        self.rows
            .iter()
            .find(|r| r.category == category)
            // lintkit: allow(no-panic) -- the constructor emits one row per category unconditionally
            .expect("all categories present")
    }

    /// §4.1's headline share: subnets served by Apple across all
    /// categories.
    pub fn apple_subnet_share_overall(&self) -> f64 {
        let apple: f64 = self
            .rows
            .iter()
            .map(|r| r.slash24 as f64 * r.apple_subnet_share)
            .sum();
        let total: u64 = self.rows.iter().map(|r| r.slash24).sum();
        apple / total.max(1) as f64
    }
}

/// Ordering for serde/BTreeMap use.
impl Ord for ServingCategory {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(c: &ServingCategory) -> u8 {
            match c {
                ServingCategory::AkamaiOnly => 0,
                ServingCategory::AppleOnly => 1,
                ServingCategory::Both => 2,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

impl PartialOrd for ServingCategory {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The label the paper's table uses for a category.
pub fn category_label(category: ServingCategory) -> &'static str {
    match category {
        ServingCategory::AkamaiOnly => "AkamaiPR",
        ServingCategory::AppleOnly => "Apple",
        ServingCategory::Both => "Both",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecs_scan::{AsServing, EcsScanner};
    use tectonic_net::{Epoch, SimClock};
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    fn scan_report() -> (Deployment, EcsScanReport) {
        let d = Deployment::build(21, DeploymentConfig::scaled(1024));
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
        (d, report)
    }

    #[test]
    fn categories_from_serving_counts() {
        assert_eq!(
            AsServing {
                apple_subnets: 3,
                akamai_subnets: 0
            }
            .category(),
            Some(ServingCategory::AppleOnly)
        );
        assert_eq!(
            AsServing {
                apple_subnets: 0,
                akamai_subnets: 1
            }
            .category(),
            Some(ServingCategory::AkamaiOnly)
        );
        assert_eq!(
            AsServing {
                apple_subnets: 1,
                akamai_subnets: 1
            }
            .category(),
            Some(ServingCategory::Both)
        );
        assert_eq!(AsServing::default().category(), None);
    }

    #[test]
    fn table2_from_real_scan_has_paper_shape() {
        let (d, report) = scan_report();
        let table = Table2::build(&report, &d.aspop);
        let both = table.row(ServingCategory::Both);
        let akamai = table.row(ServingCategory::AkamaiOnly);
        let apple = table.row(ServingCategory::AppleOnly);
        // The both-category holds the bulk of subnets and users.
        assert!(both.slash24 > akamai.slash24);
        assert!(both.slash24 > apple.slash24);
        assert!(both.users > akamai.users);
        // Akamai-only has more ASes than Apple-only (34.6k vs 20.8k).
        assert!(
            akamai.ases > apple.ases,
            "{} !> {}",
            akamai.ases,
            apple.ases
        );
        // Apple's subnet share inside both-ASes ≈ 76 %.
        assert!(
            (0.70..0.82).contains(&both.apple_subnet_share),
            "share {:.3}",
            both.apple_subnet_share
        );
        // Overall Apple share ≈ 69 %.
        let overall = table.apple_subnet_share_overall();
        assert!((0.63..0.75).contains(&overall), "overall {overall:.3}");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(category_label(ServingCategory::AkamaiOnly), "AkamaiPR");
        assert_eq!(category_label(ServingCategory::AppleOnly), "Apple");
        assert_eq!(category_label(ServingCategory::Both), "Both");
    }

    #[test]
    fn empty_report_yields_zero_rows() {
        let d = Deployment::build(5, DeploymentConfig::scaled(2048));
        let empty = EcsScanReport {
            domain: "mask.icloud.com".parse().unwrap(),
            discovered: Default::default(),
            by_ingress_as: Default::default(),
            per_client_as: Default::default(),
            ingress_prefixes: Default::default(),
            subnets_served: Default::default(),
            queries_sent: 0,
            skipped_by_scope: 0,
            skipped_unrouted: 0,
            rate_limited: 0,
            retries: 0,
            exhausted: 0,
            decode_errors: 0,
            duration: tectonic_net::SimDuration::ZERO,
        };
        let table = Table2::build(&empty, &d.aspop);
        assert_eq!(table.rows.len(), 3);
        assert!(table.rows.iter().all(|r| r.ases == 0 && r.users == 0));
    }

    #[test]
    fn category_ordering() {
        assert!(ServingCategory::AkamaiOnly < ServingCategory::AppleOnly);
        assert!(ServingCategory::AppleOnly < ServingCategory::Both);
    }
}
