//! # tectonic-core
//!
//! The paper's measurement toolchain — the primary contribution of the
//! reproduction. Each module implements one methodological piece and its
//! analysis; `report` renders the paper's tables and figures from the
//! results.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`ecs_scan`] | §3/§4.1 ECS enumeration of ingress relays (Tables 1–2 input) |
//! | [`atlas_campaign`] | §4.1 RIPE Atlas validation, IPv6 enumeration (R1/R2) |
//! | [`blocking`] | §4.1 service-blocking survey (R3) |
//! | [`attribution`] | Table 2 client-AS / population attribution |
//! | [`egress_analysis`] | §4.2 Tables 3–4, Figures 2/4/5 |
//! | [`relay_scan`] | §4.3 through-relay scans (Figure 3) |
//! | [`rotation`] | §4.3 egress address rotation statistics (R4) |
//! | [`correlation`] | §6 prefix census, last-hop sharing, BGP first-seen (R5/R6) |
//! | [`quic_probe`] | §3 QUIC probing of ingress nodes (R7) |
//! | [`report`] | text rendering + JSON export of every artefact |
//!
//! The paper's §6 future-work questions are implemented as extensions:
//!
//! | module | §6 question |
//! |---|---|
//! | [`load`] | "does the system have bottlenecks?" — per-relay load concentration |
//! | [`monitor`] | "how does the system evolve?" — longitudinal scan diffing |
//! | [`qoe`] | "how does the service impact QoE?" — two-hop latency experiment |
//! | [`passive`] | §6's passive-measurement / IDS discussion — flow classification, session fragmentation |
//! | [`correlation_attack`] | §6's Tor-style timing correlation, dual-role vs split operators |
//! | [`masque_load`] | §4 findings rerun as a traffic-scale CONNECT-UDP session load test |

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod atlas_campaign;
pub mod attribution;
pub mod blocking;
pub mod correlation;
pub mod correlation_attack;
pub mod dataset;
pub mod ecs_scan;
pub mod egress_analysis;
pub mod load;
pub mod masque_load;
pub mod monitor;
pub mod passive;
pub mod qoe;
pub mod quic_probe;
pub mod relay_scan;
pub mod report;
pub mod rotation;

pub use atlas_campaign::{AtlasCampaignReport, AtlasSetup};
pub use attribution::Table2;
pub use blocking::BlockingReport;
pub use correlation::CorrelationReport;
pub use correlation_attack::{run_attack, AttackConfig, AttackReport};
pub use dataset::{Archive, ArchiveMeta};
pub use ecs_scan::{EcsScanConfig, EcsScanReport, EcsScanner};
pub use egress_analysis::{EgressAnalysis, Table3, Table4};
pub use load::LoadReport;
pub use masque_load::{
    run_engine as run_masque_engine, run_serial as run_masque_serial, DatagramChannel,
    PerfectChannel, RotationStats, StormConfig, StormReport,
};
pub use monitor::{evolution, ScanDiff};
pub use passive::{ids_fragmentation, PassiveMonitor, PassiveReport};
pub use qoe::{qoe_experiment, QoeReport};
pub use quic_probe::QuicProbeReport;
pub use relay_scan::{RelayScanConfig, RelayScanSeries};
pub use rotation::RotationReport;
