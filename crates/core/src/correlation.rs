//! The correlation audit (§6, R5/R6).
//!
//! Quantifies the traffic-correlation exposure the paper warns about:
//!
//! * the **prefix census** — of everything AS36183 announces, how many
//!   prefixes carry ingress relays, how many carry egress relays, and what
//!   share is used at all (the paper: 478 + 1335 announced, ingress in
//!   201, egress in 1472, 92.2 % used),
//! * **last-hop sharing** — traceroute-style validation that ingress and
//!   egress addresses inside AS36183 sit behind the same router,
//! * the **BGP history** check — AS36183 first became visible in June
//!   2021, the month Private Relay launched,
//! * the **topology degree** — AS36183's single peering to AS20940.

use std::collections::BTreeSet;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use tectonic_bgp::Month;
use tectonic_net::{Asn, Epoch, IpNet};
use tectonic_relay::{Deployment, Domain};

/// The §6 audit result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationReport {
    /// IPv4 prefixes announced by Akamai PR.
    pub announced_v4: usize,
    /// IPv6 prefixes announced by Akamai PR.
    pub announced_v6: usize,
    /// Announced prefixes containing at least one ingress relay.
    pub prefixes_with_ingress: usize,
    /// Announced prefixes containing at least one egress subnet.
    pub prefixes_with_egress: usize,
    /// Share of announced prefixes used for the relay service.
    pub used_share: f64,
    /// Whether any ingress/egress pair shares a BGP prefix (the paper:
    /// none do).
    pub ingress_egress_share_prefix: bool,
    /// Share of sampled ingress/egress pairs sharing a last-hop router.
    pub last_hop_sharing_rate: f64,
    /// First month Akamai PR was visible in BGP.
    pub first_seen: Option<Month>,
    /// Akamai PR's peering degree.
    pub akamai_pr_degree: usize,
    /// Its only neighbour (when degree is 1).
    pub single_peer: Option<Asn>,
}

impl CorrelationReport {
    /// Runs the audit against a deployment at `epoch`.
    pub fn audit(deployment: &Deployment, epoch: Epoch) -> CorrelationReport {
        let announced: Vec<IpNet> = deployment.rib.prefixes_of(Asn::AKAMAI_PR).to_vec();
        let announced_v4 = announced.iter().filter(|p| p.is_v4()).count();
        let announced_v6 = announced.iter().filter(|p| p.is_v6()).count();

        // Collect every active ingress address (both domains, both
        // families) inside Akamai PR.
        let mut ingress_addrs: Vec<IpAddr> = Vec::new();
        for domain in Domain::ALL {
            ingress_addrs.extend(
                deployment
                    .fleets
                    .fleet_v4(epoch, domain, Asn::AKAMAI_PR)
                    .iter()
                    .map(|a| IpAddr::V4(*a)),
            );
            ingress_addrs.extend(
                deployment
                    .fleets
                    .fleet_v6(epoch, domain, Asn::AKAMAI_PR)
                    .iter()
                    .map(|a| IpAddr::V6(*a)),
            );
        }
        let mut with_ingress: BTreeSet<String> = BTreeSet::new();
        for addr in &ingress_addrs {
            if let Some((prefix, asn)) = deployment.rib.lookup(*addr) {
                if asn == Asn::AKAMAI_PR {
                    with_ingress.insert(prefix.to_string());
                }
            }
        }

        // Egress prefixes of Akamai PR: the subnets' covering
        // announcements.
        let mut with_egress: BTreeSet<String> = BTreeSet::new();
        for entry in deployment.egress_list.entries() {
            if let Some((prefix, asn)) = deployment.rib.lookup_net(&entry.subnet) {
                if asn == Asn::AKAMAI_PR {
                    with_egress.insert(prefix.to_string());
                }
            }
        }

        let used: BTreeSet<&String> = with_ingress.union(&with_egress).collect();
        let used_share = used.len() as f64 / announced.len().max(1) as f64;
        let ingress_egress_share_prefix = with_ingress.intersection(&with_egress).next().is_some();

        // Last-hop sharing: sample ingress × egress v4 pairs.
        let ingress_v4: Vec<IpAddr> = ingress_addrs
            .iter()
            .filter(|a| a.is_ipv4())
            .copied()
            .collect();
        let egress_v4: Vec<IpAddr> = deployment
            .egress_list
            .entries()
            .iter()
            .filter(|e| e.subnet.is_v4())
            .filter(|e| {
                deployment
                    .rib
                    .lookup_net(&e.subnet)
                    .map(|(_, asn)| asn == Asn::AKAMAI_PR)
                    .unwrap_or(false)
            })
            .map(|e| e.subnet.network())
            .collect();
        let mut pairs = 0usize;
        let mut shared = 0usize;
        for (i, ing) in ingress_v4.iter().step_by(7).enumerate() {
            for eg in egress_v4.iter().skip(i % 3).step_by(11).take(24) {
                pairs += 1;
                if deployment
                    .routers
                    .shares_last_hop(Asn::AKAMAI_PR, *ing, *eg)
                {
                    shared += 1;
                }
            }
        }
        let last_hop_sharing_rate = shared as f64 / pairs.max(1) as f64;

        CorrelationReport {
            announced_v4,
            announced_v6,
            prefixes_with_ingress: with_ingress.len(),
            prefixes_with_egress: with_egress.len(),
            used_share,
            ingress_egress_share_prefix,
            last_hop_sharing_rate,
            first_seen: deployment.history.first_seen(Asn::AKAMAI_PR),
            akamai_pr_degree: deployment.topology.degree(Asn::AKAMAI_PR),
            single_peer: match deployment.topology.neighbors(Asn::AKAMAI_PR).as_slice() {
                [only] => Some(*only),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_relay::DeploymentConfig;

    fn paper_audit() -> CorrelationReport {
        let d = Deployment::build(77, DeploymentConfig::paper());
        CorrelationReport::audit(&d, Epoch::Apr2022)
    }

    #[test]
    fn census_matches_section6() {
        let r = paper_audit();
        assert_eq!(r.announced_v4, 478);
        assert_eq!(r.announced_v6, 1336);
        assert_eq!(r.prefixes_with_ingress, 201);
        // Egress: 301 v4 + 1172 v6 covering announcements.
        assert_eq!(r.prefixes_with_egress, 1473);
        assert!(
            (0.91..0.94).contains(&r.used_share),
            "used share {:.4}",
            r.used_share
        );
    }

    #[test]
    fn ingress_and_egress_never_share_a_prefix() {
        let r = paper_audit();
        assert!(!r.ingress_egress_share_prefix);
    }

    #[test]
    fn last_hop_sharing_occurs() {
        let r = paper_audit();
        assert!(
            r.last_hop_sharing_rate > 0.0,
            "no shared last hops observed"
        );
        // With 24 site routers the expected collision rate is ≈ 1/24.
        assert!(r.last_hop_sharing_rate < 0.5);
    }

    #[test]
    fn history_and_topology_findings() {
        let r = paper_audit();
        assert_eq!(r.first_seen, Some(Month::new(2021, 6)));
        assert_eq!(r.akamai_pr_degree, 1);
        assert_eq!(r.single_peer, Some(Asn::AKAMAI_EG));
    }

    #[test]
    fn scaled_deployment_keeps_shape() {
        let d = Deployment::build(77, DeploymentConfig::scaled(256));
        let r = CorrelationReport::audit(&d, Epoch::Apr2022);
        // Counts shrink but the structure holds.
        assert!(r.prefixes_with_ingress > 0);
        assert!(r.prefixes_with_egress > 0);
        assert!(r.used_share > 0.5);
        assert!(!r.ingress_egress_share_prefix);
    }
}
