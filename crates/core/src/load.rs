//! Ingress load analysis (§6 future work: "Where and how is traffic routed
//! to and from the relay nodes? Does the system have bottlenecks?").
//!
//! The ECS scan reveals which ingress address serves which client /24s;
//! aggregating those counts gives the per-address *potential load* a
//! passive ISP — or Apple — would see once adoption grows. The report
//! quantifies concentration (Gini coefficient, top-decile share) and the
//! heaviest relays.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use tectonic_net::Asn;

use crate::ecs_scan::EcsScanReport;

/// Per-operator load summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorLoad {
    /// Operator AS.
    pub asn: Asn,
    /// Addresses with any load.
    pub addresses: usize,
    /// Total client /24 subnets served.
    pub subnets: u64,
    /// Mean subnets per address.
    pub mean: f64,
    /// Maximum subnets on one address.
    pub max: u64,
    /// Gini coefficient of the per-address load distribution (0 = even,
    /// → 1 = concentrated).
    pub gini: f64,
    /// Share of subnets on the most-loaded 10 % of addresses.
    pub top_decile_share: f64,
}

/// The full load analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// One row per ingress operator.
    pub operators: Vec<OperatorLoad>,
    /// The globally most-loaded addresses, descending.
    pub hotspots: Vec<(Ipv4Addr, u64)>,
}

/// Gini coefficient of a non-negative distribution.
fn gini(values: &mut [u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable();
    let n = values.len() as f64;
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: f64 = values
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * *v as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

impl LoadReport {
    /// Builds the analysis from a scan report, attributing addresses with
    /// `asn_of`.
    pub fn build(
        scan: &EcsScanReport,
        asn_of: &dyn Fn(Ipv4Addr) -> Option<Asn>,
        hotspot_count: usize,
    ) -> LoadReport {
        let mut operators = Vec::new();
        for asn in Asn::INGRESS_OPERATORS {
            let mut loads: Vec<u64> = scan
                .subnets_served
                .iter()
                .filter(|(addr, _)| asn_of(**addr) == Some(asn))
                .map(|(_, served)| *served)
                .collect();
            if loads.is_empty() {
                continue;
            }
            let subnets: u64 = loads.iter().sum();
            let max = loads.iter().max().copied().unwrap_or(0);
            let g = gini(&mut loads);
            // loads is now sorted ascending.
            let decile = (loads.len() / 10).max(1);
            let top: u64 = loads.iter().rev().take(decile).sum();
            operators.push(OperatorLoad {
                asn,
                addresses: loads.len(),
                subnets,
                mean: subnets as f64 / loads.len() as f64,
                max,
                gini: g,
                top_decile_share: top as f64 / subnets.max(1) as f64,
            });
        }
        let mut hotspots: Vec<(Ipv4Addr, u64)> =
            scan.subnets_served.iter().map(|(a, s)| (*a, *s)).collect();
        hotspots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hotspots.truncate(hotspot_count);
        LoadReport {
            operators,
            hotspots,
        }
    }
}

/// Renders the load report.
pub fn render_load(report: &LoadReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Ingress load analysis (§6 future work)");
    let _ = writeln!(
        out,
        "{:<10} | {:>6} {:>10} {:>8} {:>8} {:>6} {:>10}",
        "AS", "addrs", "subnets", "mean", "max", "gini", "top-decile"
    );
    for op in &report.operators {
        let _ = writeln!(
            out,
            "{:<10} | {:>6} {:>10} {:>8.1} {:>8} {:>6.3} {:>9.1}%",
            op.asn.label(),
            op.addresses,
            op.subnets,
            op.mean,
            op.max,
            op.gini,
            op.top_decile_share * 100.0
        );
    }
    if let Some((addr, load)) = report.hotspots.first() {
        let _ = writeln!(out, "hottest relay: {addr} serving {load} client /24s");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecs_scan::EcsScanner;
    use tectonic_net::{Epoch, SimClock};
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    fn report() -> (Deployment, LoadReport) {
        let d = Deployment::build(21, DeploymentConfig::scaled(512));
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut clock = SimClock::new(Epoch::Apr2022.start());
        let scan = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
        let load = LoadReport::build(
            &scan,
            &|addr| d.fleets.asn_of(std::net::IpAddr::V4(addr)),
            5,
        );
        (d, load)
    }

    #[test]
    fn totals_are_conserved() {
        let (d, load) = report();
        // Every served subnet is accounted to exactly one operator.
        let total: u64 = load.operators.iter().map(|o| o.subnets).sum();
        assert!(total >= d.world.total_slash24(), "total {total}");
        for op in &load.operators {
            assert!(op.mean > 0.0);
            assert!(op.max as f64 >= op.mean);
            assert!((0.0..1.0).contains(&op.gini), "gini {}", op.gini);
            assert!(op.top_decile_share >= 0.1 - 1e-9);
        }
    }

    #[test]
    fn both_operators_have_load() {
        let (_, load) = report();
        assert_eq!(load.operators.len(), 2);
        let akamai = load
            .operators
            .iter()
            .find(|o| o.asn == Asn::AKAMAI_PR)
            .unwrap();
        let apple = load.operators.iter().find(|o| o.asn == Asn::APPLE).unwrap();
        // Apple serves ~69 % of subnets with ~22 % of addresses, so its
        // per-address mean load must exceed Akamai's — the §6 bottleneck
        // observation in miniature.
        assert!(
            apple.mean > akamai.mean,
            "apple mean {:.1} vs akamai {:.1}",
            apple.mean,
            akamai.mean
        );
    }

    #[test]
    fn hotspots_sorted_descending() {
        let (_, load) = report();
        assert!(!load.hotspots.is_empty());
        for pair in load.hotspots.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&mut []), 0.0);
        assert!(gini(&mut [5, 5, 5, 5]).abs() < 1e-9, "uniform is 0");
        let concentrated = gini(&mut [0, 0, 0, 100]);
        assert!(concentrated > 0.7, "concentrated {concentrated}");
        assert_eq!(gini(&mut [0, 0]), 0.0);
    }

    #[test]
    fn render_contains_rows() {
        let (_, load) = report();
        let text = render_load(&load);
        assert!(text.contains("Apple"));
        assert!(text.contains("AkamaiPR"));
        assert!(text.contains("hottest relay"));
    }
}
