//! QoE impact experiment (§6 future work: "How does the service impact
//! the user's QoE? Apple claims the impact is low…").
//!
//! Drives the latency model over a workload of (client country, target
//! country) pairs drawn from the deployment's client world and compares
//! the direct path against the two-hop relay path, with and without the
//! CDN backbone optimisation the paper's §2 describes (Cloudflare Argo).

use serde::{Deserialize, Serialize};
use tectonic_geo::country::CountryCode;
use tectonic_net::SimRng;
use tectonic_relay::{Deployment, LatencyModel};

/// Aggregate QoE comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QoeReport {
    /// Connections sampled.
    pub connections: usize,
    /// Median direct RTT, ms.
    pub median_direct_ms: f64,
    /// Median relayed RTT, ms.
    pub median_relayed_ms: f64,
    /// Median relay overhead, ms.
    pub median_overhead_ms: f64,
    /// 95th-percentile overhead, ms.
    pub p95_overhead_ms: f64,
    /// Share of connections whose relayed RTT is within 10 % of direct.
    pub within_10pct: f64,
    /// Share where the relay is actually *faster* (backbone wins).
    pub relay_faster: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the experiment: `samples` connections from clients drawn out of
/// the deployment's client world to targets drawn from popular hosting
/// countries.
pub fn qoe_experiment(
    deployment: &Deployment,
    model: &LatencyModel,
    samples: usize,
    seed: u64,
) -> QoeReport {
    let mut rng = SimRng::new(seed).fork("qoe");
    // Target countries weighted like hosting markets: mostly US/EU.
    let targets = [
        (CountryCode::US, 5.0),
        (CountryCode::DE, 2.0),
        (CountryCode::literal("NL"), 1.5),
        (CountryCode::literal("GB"), 1.0),
        (CountryCode::literal("SG"), 0.8),
        (CountryCode::literal("JP"), 0.7),
    ];
    let target_weights: Vec<f64> = targets.iter().map(|(_, w)| *w).collect();
    let ases = deployment.world.ases();
    let mut direct = Vec::with_capacity(samples);
    let mut relayed = Vec::with_capacity(samples);
    let mut overhead = Vec::with_capacity(samples);
    let mut within = 0usize;
    let mut faster = 0usize;
    for i in 0..samples {
        let client = &ases[rng.index(ases.len())];
        let target = targets[rng.pick_weighted(&target_weights).unwrap_or(0)].0;
        // The egress represents the client's own country (the default
        // "maintain region" setting).
        let conn = model.connection(client.cc, client.cc, target, seed ^ (i as u64));
        if conn.relayed_ms <= conn.direct_ms * 1.10 {
            within += 1;
        }
        if conn.relayed_ms < conn.direct_ms {
            faster += 1;
        }
        direct.push(conn.direct_ms);
        relayed.push(conn.relayed_ms);
        overhead.push(conn.overhead_ms());
    }
    direct.sort_by(|a, b| a.total_cmp(b));
    relayed.sort_by(|a, b| a.total_cmp(b));
    overhead.sort_by(|a, b| a.total_cmp(b));
    QoeReport {
        connections: samples,
        median_direct_ms: percentile(&direct, 0.5),
        median_relayed_ms: percentile(&relayed, 0.5),
        median_overhead_ms: percentile(&overhead, 0.5),
        p95_overhead_ms: percentile(&overhead, 0.95),
        within_10pct: within as f64 / samples.max(1) as f64,
        relay_faster: faster as f64 / samples.max(1) as f64,
    }
}

/// Renders the QoE report.
pub fn render_qoe(optimised: &QoeReport, unoptimised: &QoeReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "QoE impact of the two-hop relay (§6 future work)");
    let _ = writeln!(out, "{:<22} | {:>10} {:>10}", "", "optimised", "plain path");
    type RowExtractor = fn(&QoeReport) -> f64;
    let rows: [(&str, RowExtractor); 6] = [
        ("median direct (ms)", |r| r.median_direct_ms),
        ("median relayed (ms)", |r| r.median_relayed_ms),
        ("median overhead (ms)", |r| r.median_overhead_ms),
        ("p95 overhead (ms)", |r| r.p95_overhead_ms),
        ("within 10% of direct", |r| r.within_10pct * 100.0),
        ("relay faster (%)", |r| r.relay_faster * 100.0),
    ];
    for (label, f) in rows {
        let _ = writeln!(
            out,
            "{:<22} | {:>10.1} {:>10.1}",
            label,
            f(optimised),
            f(unoptimised)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_relay::DeploymentConfig;

    fn deployment() -> Deployment {
        Deployment::build(3, DeploymentConfig::scaled(1024))
    }

    #[test]
    fn experiment_is_deterministic() {
        let d = deployment();
        let model = LatencyModel::default();
        let a = qoe_experiment(&d, &model, 500, 9);
        let b = qoe_experiment(&d, &model, 500, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn optimised_backbone_beats_plain_routing() {
        let d = deployment();
        let optimised = qoe_experiment(&d, &LatencyModel::default(), 1000, 9);
        let plain = qoe_experiment(
            &d,
            &LatencyModel {
                backbone_factor: 1.25,
                ..LatencyModel::default()
            },
            1000,
            9,
        );
        assert!(optimised.median_overhead_ms < plain.median_overhead_ms);
        assert!(optimised.within_10pct > plain.within_10pct);
    }

    #[test]
    fn overhead_is_bounded_and_ordered() {
        let d = deployment();
        let report = qoe_experiment(&d, &LatencyModel::default(), 1000, 4);
        assert!(report.median_relayed_ms >= report.median_direct_ms * 0.5);
        assert!(report.p95_overhead_ms >= report.median_overhead_ms);
        // Apple's "low impact" claim: the majority of connections stay
        // within 10 % of direct, or the overhead stays small in absolute
        // terms.
        assert!(
            report.within_10pct > 0.3 || report.median_overhead_ms < 20.0,
            "within {:.2}, overhead {:.1}",
            report.within_10pct,
            report.median_overhead_ms
        );
    }

    #[test]
    fn render_shows_both_columns() {
        let d = deployment();
        let a = qoe_experiment(&d, &LatencyModel::default(), 200, 1);
        let text = render_qoe(&a, &a);
        assert!(text.contains("median overhead"));
        assert!(text.contains("relay faster"));
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }
}
