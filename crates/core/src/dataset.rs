//! The research data archive.
//!
//! The paper publishes its datasets (ingress address lists, scan results)
//! as a citable archive and keeps current results on a companion website.
//! [`Archive`] is that artefact as a typed object: collect the experiment
//! outputs, write them as a directory of JSON files plus the Apple-format
//! egress CSV, and load them back for longitudinal comparison.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::net::Ipv4Addr;
use std::path::Path;

use serde::{Deserialize, Serialize};
use tectonic_net::Epoch;

use tectonic_geo::egress::{CsvParseStats, EgressList};

use crate::attribution::Table2;
use crate::blocking::BlockingReport;
use crate::correlation::CorrelationReport;
use crate::ecs_scan::EcsScanReport;
use crate::egress_analysis::{Table3, Table4};
use crate::rotation::RotationReport;

/// Archive metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveMeta {
    /// The deployment seed the results were produced from.
    pub seed: u64,
    /// The client-world scale divisor.
    pub scale: u64,
    /// Tool version (the crate version at write time).
    pub version: String,
}

/// The collected research artefact.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Archive {
    /// Metadata, if set.
    pub meta: Option<ArchiveMeta>,
    /// Per-epoch ECS scan reports (default domain).
    pub scans: BTreeMap<String, EcsScanReport>,
    /// Table 2, if produced.
    pub table2: Option<Table2>,
    /// Table 3, if produced.
    pub table3: Option<Table3>,
    /// Table 4, if produced.
    pub table4: Option<Table4>,
    /// The blocking survey, if produced.
    pub blocking: Option<BlockingReport>,
    /// Rotation statistics, if produced.
    pub rotation: Option<RotationReport>,
    /// The correlation audit, if produced.
    pub correlation: Option<CorrelationReport>,
}

impl Archive {
    /// An empty archive with metadata.
    pub fn new(meta: ArchiveMeta) -> Archive {
        Archive {
            meta: Some(meta),
            ..Archive::default()
        }
    }

    /// Adds one epoch's scan.
    pub fn add_scan(&mut self, epoch: Epoch, report: EcsScanReport) {
        self.scans.insert(epoch.label().to_string(), report);
    }

    /// The published ingress-address list for an epoch (the dataset the
    /// paper's §1 promises to fellow researchers).
    pub fn ingress_list(&self, epoch: Epoch) -> Option<Vec<Ipv4Addr>> {
        self.scans
            .get(epoch.label())
            .map(|r| r.discovered.iter().copied().collect())
    }

    /// Writes the archive as `archive.json` (plus `egress-ip-ranges.csv`
    /// when an egress list is supplied) into `dir`.
    pub fn write_to_dir(&self, dir: &Path, egress: Option<&EgressList>) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(dir.join("archive.json"), json)?;
        if let Some(list) = egress {
            fs::write(dir.join("egress-ip-ranges.csv"), list.to_csv())?;
        }
        Ok(())
    }

    /// Loads an archive written by [`Archive::write_to_dir`].
    pub fn load_from_dir(dir: &Path) -> io::Result<Archive> {
        let json = fs::read_to_string(dir.join("archive.json"))?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads the egress CSV next to an archive, if present. Strict: the
    /// first malformed row fails the load.
    pub fn load_egress(dir: &Path) -> io::Result<Option<EgressList>> {
        let path = dir.join("egress-ip-ranges.csv");
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(path)?;
        EgressList::parse_csv(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Loads the egress CSV leniently: malformed rows are skipped and
    /// counted, so one corrupt row cannot abort a Table 3/4 run. Returns
    /// `None` stats when no CSV file is present.
    pub fn load_egress_lossy(dir: &Path) -> io::Result<Option<(EgressList, CsvParseStats)>> {
        let path = dir.join("egress-ip-ranges.csv");
        if !path.exists() {
            return Ok(None);
        }
        let text = fs::read_to_string(path)?;
        Ok(Some(EgressList::parse_csv_lossy(&text)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecs_scan::EcsScanner;
    use tectonic_net::SimClock;
    use tectonic_relay::{Deployment, DeploymentConfig, Domain};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tectonic-archive-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build_archive() -> (Deployment, Archive) {
        let d = Deployment::build(21, DeploymentConfig::scaled(1024));
        let auth = d.auth_server_unlimited();
        let scanner = EcsScanner::default();
        let mut archive = Archive::new(ArchiveMeta {
            seed: 21,
            scale: 1024,
            version: env!("CARGO_PKG_VERSION").to_string(),
        });
        for epoch in [Epoch::Jan2022, Epoch::Apr2022] {
            let mut clock = SimClock::new(epoch.start());
            let report = scanner.scan(Domain::MaskQuic.name(), &auth, &d.rib, &mut clock);
            archive.add_scan(epoch, report);
        }
        let april = archive.scans.get("Apr").unwrap().clone();
        archive.table2 = Some(Table2::build(&april, &d.aspop));
        (d, archive)
    }

    #[test]
    fn archive_round_trips_through_disk() {
        let (d, archive) = build_archive();
        let dir = tempdir("roundtrip");
        archive
            .write_to_dir(&dir, Some(&d.egress_list))
            .expect("write archive");
        let loaded = Archive::load_from_dir(&dir).expect("load archive");
        assert_eq!(loaded.meta, archive.meta);
        assert_eq!(loaded.scans.len(), 2);
        assert_eq!(
            loaded.scans.get("Apr").unwrap().discovered,
            archive.scans.get("Apr").unwrap().discovered
        );
        assert_eq!(loaded.table2, archive.table2);
        let egress = Archive::load_egress(&dir)
            .expect("load csv")
            .expect("csv present");
        assert_eq!(egress.len(), d.egress_list.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingress_list_exports_the_dataset() {
        let (d, archive) = build_archive();
        let list = archive.ingress_list(Epoch::Apr2022).expect("April scanned");
        assert!(!list.is_empty());
        for addr in &list {
            assert!(d.fleets.is_ingress(std::net::IpAddr::V4(*addr)));
        }
        assert!(archive.ingress_list(Epoch::May2022).is_none());
    }

    #[test]
    fn loading_missing_archive_errors_cleanly() {
        let dir = tempdir("missing");
        assert!(Archive::load_from_dir(&dir).is_err());
        // A missing egress CSV is not an error, just absent.
        assert!(Archive::load_egress(&dir).unwrap().is_none());
    }

    #[test]
    fn longitudinal_comparison_across_archives() {
        // Diff the loaded January scan against the loaded April scan —
        // the companion-website workflow.
        let (d, archive) = build_archive();
        let dir = tempdir("longitudinal");
        archive.write_to_dir(&dir, None).unwrap();
        let loaded = Archive::load_from_dir(&dir).unwrap();
        let jan = loaded.scans.get("Jan").unwrap();
        let apr = loaded.scans.get("Apr").unwrap();
        let diff = crate::monitor::ScanDiff::between(jan, apr);
        assert!(diff.growth_rate > 0.2);
        assert!(diff.churn_rate < 0.1);
        let _ = fs::remove_dir_all(&dir);
        let _ = d;
    }
}
