//! RIPE-Atlas-style campaigns against the relay deployment (§4.1).
//!
//! Wires the simulated probe platform to the simulated deployment:
//!
//! * A campaigns validate the ECS scan (R1 — Atlas must see a subset),
//! * AAAA campaigns enumerate the IPv6 ingress fleet (R2 — the only way,
//!   since ECS over IPv6 always comes back with scope 0),
//! * `whoami` campaigns recover the resolver mix (>50 % public).

use std::collections::{BTreeMap, BTreeSet};
use std::net::{Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};
use tectonic_atlas::measurement::{DnsCampaign, MeasurementOutcome, ProbeResult};
use tectonic_atlas::population::{generate, PopulationConfig, ProbeSite};
use tectonic_atlas::Probe;
use tectonic_dns::resolver::ResolverKind;
use tectonic_dns::server::NameServer;
use tectonic_dns::QType;
use tectonic_engine::{Engine, EngineConfig, ShardCtx, ShardModel};
use tectonic_net::{Asn, Epoch, SimRng, SimTime};
use tectonic_relay::deploy::anycast_source;
use tectonic_relay::{Deployment, Domain};

/// A probe population bound to a deployment.
pub struct AtlasSetup {
    /// The generated probes.
    pub probes: Vec<Probe>,
}

impl AtlasSetup {
    /// Builds a probe population hosted inside the deployment's client
    /// world (one candidate site per client AS).
    pub fn build(deployment: &Deployment, config: &PopulationConfig, seed: u64) -> AtlasSetup {
        let sites: Vec<ProbeSite> = deployment
            .world
            .ases()
            .iter()
            .map(|a| ProbeSite {
                asn: a.asn,
                cc: a.cc,
                probe_addr: a.host_addr(100),
                isp_resolver_addr: a.host_addr(53),
            })
            .collect();
        let probes = generate(&SimRng::new(seed), &sites, config, &|kind, cc| {
            anycast_source(kind, cc)
        });
        AtlasSetup { probes }
    }

    /// Runs an A or AAAA campaign for one mask domain at `epoch`.
    pub fn run_mask_campaign(
        &self,
        deployment: &Deployment,
        domain: Domain,
        qtype: QType,
        epoch: Epoch,
        seed: u64,
    ) -> Vec<ProbeResult> {
        let auth = deployment.auth_server_unlimited();
        self.run_mask_campaign_with(&auth, domain, qtype, epoch, seed)
    }

    /// Like [`run_mask_campaign`](AtlasSetup::run_mask_campaign), but
    /// against a caller-supplied authoritative server — the hook the chaos
    /// harness uses to interpose a fault-injecting wrapper on the
    /// probe-to-auth path. Passing `deployment.auth_server_unlimited()`
    /// reproduces `run_mask_campaign` exactly.
    pub fn run_mask_campaign_with(
        &self,
        auth: &dyn tectonic_dns::server::NameServer,
        domain: Domain,
        qtype: QType,
        epoch: Epoch,
        seed: u64,
    ) -> Vec<ProbeResult> {
        let campaign = DnsCampaign::mask(domain.name(), qtype);
        campaign.run(&self.probes, auth, epoch.start(), &SimRng::new(seed))
    }

    /// Like [`run_mask_campaign_with`](AtlasSetup::run_mask_campaign_with),
    /// but on the sharded discrete-event engine.
    ///
    /// Probes are dealt to shards in contiguous index ranges and each probe
    /// is one scheduled event at the epoch start. A probe's transient-flake
    /// draw is keyed by `(seed, probe.id)` (see
    /// [`DnsCampaign::run_probe`]), so the merged result vector is
    /// byte-equal to the serial campaign for every shard and worker count.
    /// `auths` is indexed `shard % auths.len()` — the chaos harness passes
    /// one fault-injecting wrapper per shard so shards never share a
    /// channel lock.
    pub fn run_mask_campaign_engine(
        &self,
        auths: &[&(dyn NameServer + Sync)],
        domain: Domain,
        qtype: QType,
        epoch: Epoch,
        seed: u64,
        engine: &EngineConfig,
    ) -> Vec<ProbeResult> {
        let campaign = DnsCampaign::mask(domain.name(), qtype);
        run_campaign_engine(&campaign, &self.probes, auths, epoch.start(), seed, engine)
    }

    /// Engine variant of
    /// [`run_control_campaign`](AtlasSetup::run_control_campaign); same
    /// sharding and equivalence contract as
    /// [`run_mask_campaign_engine`](AtlasSetup::run_mask_campaign_engine).
    pub fn run_control_campaign_engine(
        &self,
        control_auths: &[&(dyn NameServer + Sync)],
        epoch: Epoch,
        seed: u64,
        engine: &EngineConfig,
    ) -> Vec<ProbeResult> {
        let campaign = DnsCampaign::control(
            tectonic_dns::DomainName::literal("control.atlas-measurements.net"),
            QType::A,
        );
        run_campaign_engine(
            &campaign,
            &self.probes,
            control_auths,
            epoch.start(),
            seed,
            engine,
        )
    }

    /// Runs the control campaign (an unrelated, always-resolvable domain).
    pub fn run_control_campaign(
        &self,
        control_auth: &dyn tectonic_dns::server::NameServer,
        epoch: Epoch,
        seed: u64,
    ) -> Vec<ProbeResult> {
        let campaign = DnsCampaign::control(
            tectonic_dns::DomainName::literal("control.atlas-measurements.net"),
            QType::A,
        );
        campaign.run(
            &self.probes,
            control_auth,
            epoch.start(),
            &SimRng::new(seed),
        )
    }

    /// Distribution of resolver kinds across probes (the `whoami` result).
    pub fn resolver_mix(&self) -> BTreeMap<String, usize> {
        let mut mix = BTreeMap::new();
        for p in &self.probes {
            *mix.entry(format!("{:?}", p.resolver_kind)).or_insert(0) += 1;
        }
        mix
    }

    /// Share of probes using one of the four public resolvers.
    pub fn public_resolver_share(&self) -> f64 {
        let public = self
            .probes
            .iter()
            .filter(|p| p.resolver_kind.is_public())
            .count();
        public as f64 / self.probes.len().max(1) as f64
    }

    /// Distinct ASes the probes' ISP/local resolvers sit in — the paper's
    /// "resolvers are visible in 1.8 k different ASes".
    pub fn resolver_as_count(&self) -> usize {
        self.probes
            .iter()
            .filter(|p| matches!(p.resolver_kind, ResolverKind::Isp | ResolverKind::Local))
            .map(|p| p.asn)
            .collect::<BTreeSet<Asn>>()
            .len()
    }
}

/// Runs `campaign` over `probes` on the discrete-event engine: contiguous
/// probe ranges per shard, one event per probe, all at `now` (the serial
/// campaign measures every probe at the same instant). Shard outputs
/// concatenate in shard-index order, which is probe order.
fn run_campaign_engine(
    campaign: &DnsCampaign,
    probes: &[Probe],
    auths: &[&(dyn NameServer + Sync)],
    now: SimTime,
    seed: u64,
    engine: &EngineConfig,
) -> Vec<ProbeResult> {
    let Some(&first_auth) = auths.first() else {
        return Vec::new();
    };
    let shards = engine.shards.max(1);
    let per_shard = probes.len().div_ceil(shards).max(1);
    // Same derivation as the serial DnsCampaign::run, so per-probe flake
    // streams are identical.
    let flake_base = DnsCampaign::flake_base(&SimRng::new(seed));
    let models: Vec<ProbeShard<'_>> = probes
        .chunks(per_shard)
        .enumerate()
        .map(|(s, chunk)| ProbeShard {
            campaign,
            auth: auths.get(s % auths.len()).copied().unwrap_or(first_auth),
            flake_base: &flake_base,
            probes: chunk.iter(),
            results: Vec::with_capacity(chunk.len()),
        })
        .collect();
    let mut eng = Engine::new(engine, models, &SimRng::new(seed));
    for (s, chunk) in probes.chunks(per_shard).enumerate() {
        for _ in chunk {
            eng.seed(s, now, ());
        }
    }
    let mut merged = Vec::with_capacity(probes.len());
    for out in eng.run() {
        merged.extend(out);
    }
    merged
}

/// One engine shard of a DNS campaign: a contiguous probe range, one event
/// per probe. Events within a shard arrive in seed (= probe) order, so a
/// cursor over the range suffices — the event carries no payload.
struct ProbeShard<'a> {
    campaign: &'a DnsCampaign,
    auth: &'a (dyn NameServer + Sync),
    flake_base: &'a SimRng,
    probes: std::slice::Iter<'a, Probe>,
    results: Vec<ProbeResult>,
}

impl ShardModel for ProbeShard<'_> {
    type Event = ();
    type Out = Vec<ProbeResult>;

    fn handle(&mut self, now: SimTime, _event: (), _ctx: &mut ShardCtx<()>) {
        if let Some(probe) = self.probes.next() {
            self.results.push(
                self.campaign
                    .run_probe(probe, self.auth, now, self.flake_base),
            );
        }
    }

    fn finish(self) -> Self::Out {
        self.results
    }
}

/// Aggregated outcome of an address-enumeration campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtlasCampaignReport {
    /// Distinct IPv4 addresses observed.
    pub v4_addresses: BTreeSet<Ipv4Addr>,
    /// Distinct IPv6 addresses observed.
    pub v6_addresses: BTreeSet<Ipv6Addr>,
    /// Distinct IPv4 addresses per ingress AS.
    pub v4_by_as: BTreeMap<Asn, BTreeSet<Ipv4Addr>>,
    /// Distinct IPv6 addresses per ingress AS.
    pub v6_by_as: BTreeMap<Asn, BTreeSet<Ipv6Addr>>,
    /// Probes whose measurement produced any address.
    pub answering_probes: usize,
    /// Total probes measured.
    pub total_probes: usize,
}

impl AtlasCampaignReport {
    /// Aggregates raw probe results, attributing addresses via `deployment`.
    pub fn aggregate(deployment: &Deployment, results: &[ProbeResult]) -> AtlasCampaignReport {
        let mut report = AtlasCampaignReport {
            v4_addresses: BTreeSet::new(),
            v6_addresses: BTreeSet::new(),
            v4_by_as: BTreeMap::new(),
            v6_by_as: BTreeMap::new(),
            answering_probes: 0,
            total_probes: results.len(),
        };
        for r in results {
            if let MeasurementOutcome::Response {
                answers_v4,
                answers_v6,
                ..
            } = &r.outcome
            {
                if !answers_v4.is_empty() || !answers_v6.is_empty() {
                    report.answering_probes += 1;
                }
                for a in answers_v4 {
                    report.v4_addresses.insert(*a);
                    if let Some(asn) = deployment.fleets.asn_of(std::net::IpAddr::V4(*a)) {
                        report.v4_by_as.entry(asn).or_default().insert(*a);
                    }
                }
                for a in answers_v6 {
                    report.v6_addresses.insert(*a);
                    if let Some(asn) = deployment.fleets.asn_of(std::net::IpAddr::V6(*a)) {
                        report.v6_by_as.entry(asn).or_default().insert(*a);
                    }
                }
            }
        }
        report
    }

    /// IPv6 count for one AS.
    pub fn v6_count_for(&self, asn: Asn) -> usize {
        self.v6_by_as.get(&asn).map(BTreeSet::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tectonic_relay::DeploymentConfig;

    fn setup() -> (Deployment, AtlasSetup) {
        let d = Deployment::build(33, DeploymentConfig::scaled(1024));
        let config = PopulationConfig::paper().with_probes(1_500);
        let atlas = AtlasSetup::build(&d, &config, 44);
        (d, atlas)
    }

    #[test]
    fn a_campaign_sees_subset_of_full_fleet() {
        let (d, atlas) = setup();
        let results = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 1);
        let report = AtlasCampaignReport::aggregate(&d, &results);
        assert!(!report.v4_addresses.is_empty());
        // Every observed address is a current ingress address (⊆ ECS
        // ground truth by construction).
        let fleet: BTreeSet<Ipv4Addr> = d
            .fleets
            .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::APPLE)
            .iter()
            .chain(
                d.fleets
                    .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR),
            )
            .copied()
            .collect();
        // All *ingress* answers are in the fleet; the one hijacked probe
        // contributes a non-ingress address, exactly what the blocking
        // survey later flags.
        let ingress_seen: BTreeSet<Ipv4Addr> = report
            .v4_addresses
            .iter()
            .filter(|a| d.fleets.is_ingress(std::net::IpAddr::V4(**a)))
            .copied()
            .collect();
        assert!(ingress_seen.is_subset(&fleet));
        assert!(report.v4_addresses.len() - ingress_seen.len() <= 1);
        // And a strict subset: the Atlas view misses some addresses.
        assert!(
            ingress_seen.len() < fleet.len(),
            "Atlas saw the whole fleet ({} of {})",
            ingress_seen.len(),
            fleet.len()
        );
    }

    #[test]
    fn aaaa_campaign_enumerates_v6() {
        let (d, atlas) = setup();
        let results = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::AAAA, Epoch::Apr2022, 2);
        let report = AtlasCampaignReport::aggregate(&d, &results);
        assert!(!report.v6_addresses.is_empty());
        assert!(report.v6_count_for(Asn::AKAMAI_PR) > report.v6_count_for(Asn::APPLE));
        assert!(report.v4_addresses.is_empty());
    }

    #[test]
    fn resolver_mix_is_public_heavy() {
        let (_, atlas) = setup();
        let share = atlas.public_resolver_share();
        assert!(
            (0.45..0.62).contains(&share),
            "public resolver share {share:.3}"
        );
        let mix = atlas.resolver_mix();
        assert!(mix.contains_key("GooglePublic"));
        assert!(atlas.resolver_as_count() > 10);
    }

    #[test]
    fn engine_campaign_matches_serial_for_all_worker_counts() {
        let (d, atlas) = setup();
        let auth = d.auth_server_unlimited();
        let serial =
            atlas.run_mask_campaign_with(&auth, Domain::MaskQuic, QType::A, Epoch::Apr2022, 7);
        for (shards, workers) in [(1, 1), (5, 1), (5, 4), (8, 8)] {
            let engine = atlas.run_mask_campaign_engine(
                &[&auth],
                Domain::MaskQuic,
                QType::A,
                Epoch::Apr2022,
                7,
                &EngineConfig::new(shards, workers),
            );
            assert_eq!(engine, serial, "shards={shards} workers={workers}");
        }
        // Control path too, including per-shard auth fan-out.
        let serial_control = atlas.run_control_campaign(&auth, Epoch::Apr2022, 8);
        let auths: Vec<&(dyn NameServer + Sync)> = vec![&auth, &auth, &auth];
        let engine_control =
            atlas.run_control_campaign_engine(&auths, Epoch::Apr2022, 8, &EngineConfig::new(6, 3));
        assert_eq!(engine_control, serial_control);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let (d, atlas) = setup();
        let a = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 9);
        let b = atlas.run_mask_campaign(&d, Domain::MaskQuic, QType::A, Epoch::Apr2022, 9);
        assert_eq!(a, b);
    }
}
