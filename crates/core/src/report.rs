//! Rendering tables and figures as text, plus JSON export.
//!
//! Every experiment struct gets a `render_*` function that prints the rows
//! the paper reports (the benches call these so a `cargo bench` run shows
//! the regenerated artefacts), and everything is `serde`-serialisable for
//! the research-archive export.

use std::fmt::Write as _;

use serde::Serialize;
use tectonic_net::{Asn, Epoch};

use crate::attribution::{category_label, Table2};
use crate::blocking::BlockingReport;
use crate::correlation::CorrelationReport;
use crate::ecs_scan::EcsScanReport;
use crate::egress_analysis::{CdfSeries, Table3, Table4};
use crate::quic_probe::QuicProbeReport;
use crate::relay_scan::RelayScanSeries;
use crate::rotation::RotationReport;

/// Renders Table 1 from per-epoch scan reports:
/// `(epoch, default_report, optional fallback_report)` rows.
pub fn render_table1(rows: &[(Epoch, EcsScanReport, Option<EcsScanReport>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: ingress relay ASes per scan (Default = mask.icloud.com, Fallback = mask-h2)"
    );
    let _ = writeln!(
        out,
        "{:<5} | {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8}",
        "", "Apple", "Akamai", "Dflt Σ", "Apple", "Akamai", "Fallb Σ"
    );
    for (epoch, default, fallback) in rows {
        let da = default.count_for(Asn::APPLE);
        let dk = default.count_for(Asn::AKAMAI_PR);
        let (fa, fk, ft) = match fallback {
            Some(f) => (
                f.count_for(Asn::APPLE).to_string(),
                f.count_for(Asn::AKAMAI_PR).to_string(),
                f.total().to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let _ = writeln!(
            out,
            "{:<5} | {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8}",
            epoch.label(),
            da,
            dk,
            default.total(),
            fa,
            fk,
            ft
        );
    }
    out
}

/// Renders Table 2.
pub fn render_table2(table: &Table2) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: client ASes served by each ingress operator");
    let _ = writeln!(
        out,
        "{:<10} | {:>12} {:>8} {:>12} {:>12}",
        "AS", "AS pop", "ASes", "/24 subnets", "Apple share"
    );
    for row in &table.rows {
        let _ = writeln!(
            out,
            "{:<10} | {:>12} {:>8} {:>12} {:>11.1}%",
            category_label(row.category),
            format_users(row.users),
            row.ases,
            row.slash24,
            row.apple_subnet_share * 100.0
        );
    }
    let _ = writeln!(
        out,
        "Apple serves {:.1}% of all answered subnets",
        table.apple_subnet_share_overall() * 100.0
    );
    out
}

fn format_users(users: u64) -> String {
    if users >= 1_000_000 {
        format!("{:.0}M", users as f64 / 1e6)
    } else if users >= 1_000 {
        format!("{:.0}k", users as f64 / 1e3)
    } else {
        users.to_string()
    }
}

/// Renders Table 3.
pub fn render_table3(table: &Table3) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: egress subnets per operating AS");
    let _ = writeln!(
        out,
        "{:<11} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>5}",
        "", "v4 Subn", "v4 Pfxs", "v4 Addr", "v6 Subn", "v6 Pfxs", "CCs"
    );
    for row in &table.rows {
        let _ = writeln!(
            out,
            "{:<11} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>5}",
            row.asn.label(),
            row.v4_subnets,
            row.v4_bgp_prefixes,
            row.v4_addresses,
            row.v6_subnets,
            row.v6_bgp_prefixes,
            row.countries
        );
    }
    out
}

/// Renders Table 4.
pub fn render_table4(table: &Table4) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: covered cities per egress operator");
    let _ = writeln!(
        out,
        "{:<11} | {:>8} {:>8} {:>8}",
        "", "Cities", "IPv4", "IPv6"
    );
    for row in &table.rows {
        let _ = writeln!(
            out,
            "{:<11} | {:>8} {:>8} {:>8}",
            row.asn.label(),
            row.cities,
            row.cities_v4,
            row.cities_v6
        );
    }
    out
}

/// Renders the Figure 3 operator-change series as a sparse text timeline.
pub fn render_fig3(open: &RelayScanSeries, fixed: &RelayScanSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3: egress operator changes over the scan day");
    for (label, series) in [("Open Scan", open), ("Fixed DNS Scan", fixed)] {
        let changes = series.operator_changes();
        let _ = writeln!(
            out,
            "{label:<15}: {} rounds, operators {:?}, {} changes at {:?} s",
            series.rounds.len(),
            series
                .operators_seen()
                .iter()
                .map(|a| a.label())
                .collect::<Vec<_>>(),
            changes.len(),
            changes
        );
    }
    out
}

/// Renders Figure 4 CDF series compactly (every k-th point).
pub fn render_fig4(series: &[CdfSeries], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4 ({title}): cumulative subnet share");
    for s in series {
        let n = s.cumulative.len();
        let sample: Vec<String> = [0.25, 0.5, 0.75, 1.0]
            .iter()
            .filter_map(|q| {
                let idx = ((n as f64 * q) as usize).saturating_sub(1);
                s.cumulative.get(idx).map(|v| format!("{:.2}", v))
            })
            .collect();
        let _ = writeln!(
            out,
            "{:<11}: {} entities, CDF quartiles [{}]",
            s.asn.label(),
            n,
            sample.join(", ")
        );
    }
    out
}

/// Renders the blocking survey (R3).
pub fn render_blocking(report: &BlockingReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Service-blocking survey (§4.1)");
    let _ = writeln!(out, "probes requested      : {}", report.requested);
    let _ = writeln!(
        out,
        "timeouts              : {:.1}%",
        report.timeout_share * 100.0
    );
    let _ = writeln!(
        out,
        "failing DNS responses : {:.1}%",
        report.error_response_share * 100.0
    );
    for (rcode, share) in &report.rcode_breakdown {
        let _ = writeln!(out, "  {rcode:<10}: {:.0}%", share * 100.0);
    }
    let _ = writeln!(
        out,
        "blocked               : {} probes ({:.1}%), {} hijack(s)",
        report.blocked,
        report.blocked_share * 100.0,
        report.hijacks
    );
    out
}

/// Renders the rotation statistics (R4).
pub fn render_rotation(report: &RotationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Egress address rotation (§4.3)");
    let _ = writeln!(out, "rounds                : {}", report.rounds);
    let _ = writeln!(
        out,
        "distinct addresses    : {} (from {} subnets)",
        report.distinct_addresses, report.distinct_subnets
    );
    let _ = writeln!(
        out,
        "address change rate   : {:.1}%",
        report.change_rate * 100.0
    );
    let _ = writeln!(
        out,
        "parallel divergence   : {:.1}%",
        report.parallel_divergence * 100.0
    );
    out
}

/// Renders the correlation audit (R5/R6).
pub fn render_correlation(report: &CorrelationReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Correlation audit of AkamaiPR (§6)");
    let _ = writeln!(
        out,
        "announced prefixes    : {} IPv4 + {} IPv6",
        report.announced_v4, report.announced_v6
    );
    let _ = writeln!(
        out,
        "with ingress relays   : {}",
        report.prefixes_with_ingress
    );
    let _ = writeln!(
        out,
        "with egress relays    : {}",
        report.prefixes_with_egress
    );
    let _ = writeln!(
        out,
        "used for Private Relay: {:.1}%",
        report.used_share * 100.0
    );
    let _ = writeln!(
        out,
        "ingress/egress share a prefix: {}",
        report.ingress_egress_share_prefix
    );
    let _ = writeln!(
        out,
        "last-hop sharing rate : {:.1}%",
        report.last_hop_sharing_rate * 100.0
    );
    if let Some(m) = report.first_seen {
        let _ = writeln!(out, "BGP first seen        : {m}");
    }
    let _ = writeln!(
        out,
        "peering degree        : {} (peer: {})",
        report.akamai_pr_degree,
        report
            .single_peer
            .map(|a| a.label())
            .unwrap_or_else(|| "-".into())
    );
    out
}

/// Renders the QUIC probing summary (R7).
pub fn render_quic(report: &QuicProbeReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "QUIC probing of ingress nodes (§3)");
    let _ = writeln!(
        out,
        "standard Initial      : {}/{} timeouts",
        report.standard_timeouts, report.probed
    );
    let _ = writeln!(
        out,
        "forced negotiation    : {}/{} answered",
        report.negotiations, report.probed
    );
    for set in &report.version_sets {
        let versions: Vec<String> = set.iter().map(|v| format!("{v:#010x}")).collect();
        let _ = writeln!(out, "advertised versions   : [{}]", versions.join(", "));
    }
    out
}

/// Serialises any experiment artefact as pretty JSON for the research
/// archive.
pub fn to_archive_json<T: Serialize>(artefact: &T) -> String {
    serde_json::to_string_pretty(artefact)
        .unwrap_or_else(|e| format!("{{\"error\": \"artefact failed to serialise: {e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::Table2Row;
    use crate::ecs_scan::ServingCategory;

    #[test]
    fn table2_renders_all_rows() {
        let table = Table2 {
            rows: vec![
                Table2Row {
                    category: ServingCategory::AkamaiOnly,
                    users: 994_000_000,
                    ases: 34_627,
                    slash24: 1_100_000,
                    apple_subnet_share: 0.0,
                },
                Table2Row {
                    category: ServingCategory::AppleOnly,
                    users: 105_000_000,
                    ases: 20_807,
                    slash24: 200_000,
                    apple_subnet_share: 1.0,
                },
                Table2Row {
                    category: ServingCategory::Both,
                    users: 2_373_000_000,
                    ases: 17_301,
                    slash24: 10_600_000,
                    apple_subnet_share: 0.76,
                },
            ],
        };
        let text = render_table2(&table);
        assert!(text.contains("AkamaiPR"));
        assert!(text.contains("Both"));
        assert!(text.contains("76.0%"));
        assert!(text.contains("34627"));
    }

    #[test]
    fn format_users_scales() {
        assert_eq!(format_users(994_000_000), "994M");
        assert_eq!(format_users(105_000_000), "105M");
        assert_eq!(format_users(25_000), "25k");
        assert_eq!(format_users(9), "9");
    }

    #[test]
    fn table3_and_4_render_paper_rows() {
        use crate::egress_analysis::{Table3, Table3Row, Table4, Table4Row};
        use tectonic_net::Asn;
        let t3 = Table3 {
            rows: vec![Table3Row {
                asn: Asn::AKAMAI_PR,
                v4_subnets: 9890,
                v4_bgp_prefixes: 301,
                v4_addresses: 57_589,
                v6_subnets: 142_826,
                v6_bgp_prefixes: 1172,
                countries: 236,
            }],
        };
        let text = render_table3(&t3);
        assert!(text.contains("AkamaiPR"));
        assert!(text.contains("9890"));
        assert!(text.contains("57589"));
        assert!(text.contains("1172"));
        let t4 = Table4 {
            rows: vec![Table4Row {
                asn: Asn::FASTLY,
                cities: 848,
                cities_v4: 848,
                cities_v6: 848,
            }],
        };
        let text = render_table4(&t4);
        assert!(text.contains("Fastly"));
        assert!(text.contains("848"));
    }

    #[test]
    fn fig4_render_samples_quartiles() {
        use crate::egress_analysis::CdfSeries;
        use tectonic_net::Asn;
        let series = vec![CdfSeries {
            asn: Asn::CLOUDFLARE,
            cumulative: vec![0.4, 0.7, 0.9, 1.0],
        }];
        let text = render_fig4(&series, "test");
        assert!(text.contains("Cloudflare"));
        assert!(text.contains("4 entities"));
        assert!(text.contains("1.00"));
        // Empty series do not panic.
        let empty = vec![CdfSeries {
            asn: Asn::FASTLY,
            cumulative: vec![],
        }];
        let text = render_fig4(&empty, "empty");
        assert!(text.contains("0 entities"));
    }

    #[test]
    fn correlation_and_quic_render() {
        use crate::correlation::CorrelationReport;
        use crate::quic_probe::QuicProbeReport;
        use tectonic_bgp::Month;
        use tectonic_net::Asn;
        let c = CorrelationReport {
            announced_v4: 478,
            announced_v6: 1335,
            prefixes_with_ingress: 201,
            prefixes_with_egress: 1472,
            used_share: 0.922,
            ingress_egress_share_prefix: false,
            last_hop_sharing_rate: 0.05,
            first_seen: Some(Month::new(2021, 6)),
            akamai_pr_degree: 1,
            single_peer: Some(Asn::AKAMAI_EG),
        };
        let text = render_correlation(&c);
        assert!(text.contains("478 IPv4 + 1335 IPv6"));
        assert!(text.contains("92.2%"));
        assert!(text.contains("2021-06"));
        assert!(text.contains("AkamaiEG"));
        let q = QuicProbeReport {
            probed: 10,
            standard_timeouts: 10,
            blackholed: 0,
            negotiations: 10,
            version_sets: vec![vec![1, 0xff00_001d]],
        };
        let text = render_quic(&q);
        assert!(text.contains("10/10 timeouts"));
        assert!(text.contains("0x00000001"));
    }

    #[test]
    fn blocking_render_includes_breakdown() {
        use crate::blocking::BlockingReport;
        use std::collections::BTreeMap;
        let mut rcode_breakdown = BTreeMap::new();
        rcode_breakdown.insert("NXDOMAIN".to_string(), 0.72);
        let report = BlockingReport {
            requested: 11_700,
            verdicts: BTreeMap::new(),
            timeout_share: 0.10,
            error_response_share: 0.07,
            rcode_breakdown,
            blocked: 645,
            blocked_share: 0.055,
            hijacks: 1,
        };
        let text = render_blocking(&report);
        assert!(text.contains("11700"));
        assert!(text.contains("NXDOMAIN  : 72%"));
        assert!(text.contains("645 probes (5.5%), 1 hijack(s)"));
    }

    #[test]
    fn table1_render_marks_missing_fallback() {
        use crate::ecs_scan::EcsScanReport;
        use tectonic_net::{Epoch, SimDuration};
        let empty = EcsScanReport {
            domain: "mask.icloud.com".parse().unwrap(),
            discovered: Default::default(),
            by_ingress_as: Default::default(),
            per_client_as: Default::default(),
            ingress_prefixes: Default::default(),
            subnets_served: Default::default(),
            queries_sent: 0,
            skipped_by_scope: 0,
            skipped_unrouted: 0,
            rate_limited: 0,
            retries: 0,
            exhausted: 0,
            decode_errors: 0,
            duration: SimDuration::ZERO,
        };
        let rows = vec![(Epoch::Jan2022, empty.clone(), None)];
        let text = render_table1(&rows);
        assert!(text.contains("Jan"));
        assert!(text.contains('-'), "missing fallback rendered as dash");
    }

    #[test]
    fn archive_json_is_valid() {
        let report = RotationReport {
            rounds: 10,
            distinct_addresses: 6,
            distinct_subnets: 4,
            change_rate: 0.67,
            parallel_divergence: 0.5,
            operators: 2,
        };
        let json = to_archive_json(&report);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["distinct_addresses"], 6);
        let text = render_rotation(&report);
        assert!(text.contains("67.0%"));
    }
}
