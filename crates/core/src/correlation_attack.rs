//! A timing-correlation attack by the dual-role operator (§6, §5).
//!
//! The paper's central privacy concern: because AS36183 hosts ingress *and*
//! egress relays, one entity can observe a client's encrypted train of
//! connections entering the network and the corresponding train leaving it
//! towards the target — the Tor-style traffic-correlation setting
//! ([11, 22, 27] in the paper), which "the MASQUE draft explicitly lists
//! … as an issue the protocol cannot overcome".
//!
//! [`run_attack`] simulates concurrent client sessions, gives the adversary
//! the two event logs an AS-level observer would capture, and matches them
//! by inter-arrival timing. The experiment shows the paper's point
//! quantitatively: when the adversary sits on **both** hops, matching
//! succeeds far above chance; when ingress and egress are operated by
//! disjoint entities, the same adversary sees only one side and learns
//! nothing.

use serde::{Deserialize, Serialize};
use tectonic_net::{SimDuration, SimRng, SimTime};

/// One observed (encrypted) connection event at a relay hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopEvent {
    /// Millisecond timestamp of the observation.
    pub at: u64,
    /// The flow identifier the adversary can link events with on one side
    /// (client address on the ingress side, target on the egress side).
    pub side_id: u32,
}

/// Configuration of the simulated workload.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Connections per session.
    pub connections_per_session: usize,
    /// Mean gap between a session's connections.
    pub mean_gap: SimDuration,
    /// Network jitter applied independently at each hop (uniform ±).
    pub jitter: SimDuration,
    /// Relay processing delay between ingress and egress observation.
    pub relay_delay: SimDuration,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            sessions: 40,
            connections_per_session: 30,
            mean_gap: SimDuration::from_secs(20),
            jitter: SimDuration::from_millis(40),
            relay_delay: SimDuration::from_millis(25),
        }
    }
}

/// The attack's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Sessions in the workload.
    pub sessions: usize,
    /// Sessions the adversary matched correctly (both hops visible).
    pub matched_dual_role: usize,
    /// Match accuracy with both hops visible.
    pub accuracy_dual_role: f64,
    /// Match accuracy when the adversary sees only the ingress side and
    /// must guess the egress pairing (the split-operator deployment Apple
    /// claims; expected ≈ 1 / sessions).
    pub accuracy_split_operators: f64,
}

/// Generates the two hop logs for one workload.
fn generate_logs(
    config: &AttackConfig,
    rng: &mut SimRng,
) -> (Vec<Vec<HopEvent>>, Vec<Vec<HopEvent>>) {
    let start = SimTime::from_ymd(2022, 5, 10);
    let mut ingress_logs = Vec::with_capacity(config.sessions);
    let mut egress_logs = Vec::with_capacity(config.sessions);
    for session in 0..config.sessions {
        let mut t = start + SimDuration::from_millis(rng.below(60_000));
        let mut ingress = Vec::with_capacity(config.connections_per_session);
        let mut egress = Vec::with_capacity(config.connections_per_session);
        for _ in 0..config.connections_per_session {
            t += SimDuration::from_millis(rng.below(config.mean_gap.as_millis() * 2).max(1));
            let jitter_in = rng.below(config.jitter.as_millis().max(1));
            let jitter_out = rng.below(config.jitter.as_millis().max(1));
            ingress.push(HopEvent {
                at: t.as_millis() + jitter_in,
                side_id: session as u32,
            });
            egress.push(HopEvent {
                at: t.as_millis() + config.relay_delay.as_millis() + jitter_out,
                side_id: session as u32,
            });
        }
        ingress_logs.push(ingress);
        egress_logs.push(egress);
    }
    (ingress_logs, egress_logs)
}

/// Timing distance between two event trains: mean absolute offset of the
/// best alignment of inter-arrival patterns.
fn train_distance(a: &[HopEvent], b: &[HopEvent]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return f64::MAX;
    }
    // Estimate the constant relay delay as the median pairwise offset and
    // measure residual spread.
    let mut offsets: Vec<i64> = (0..n).map(|i| b[i].at as i64 - a[i].at as i64).collect();
    offsets.sort_unstable();
    let median = offsets[n / 2];
    offsets
        .iter()
        .map(|o| (o - median).abs() as f64)
        .sum::<f64>()
        / n as f64
}

/// Runs the attack.
pub fn run_attack(config: &AttackConfig, seed: u64) -> AttackReport {
    let mut rng = SimRng::new(seed).fork("correlation-attack");
    let (ingress_logs, egress_logs) = generate_logs(config, &mut rng);
    // Shuffle the egress side so the adversary cannot cheat via ordering.
    let mut egress_order: Vec<usize> = (0..config.sessions).collect();
    rng.shuffle(&mut egress_order);

    // Dual-role adversary: match every ingress train to its closest egress
    // train by timing.
    let mut matched = 0usize;
    for (session, ingress) in ingress_logs.iter().enumerate() {
        let best = egress_order
            .iter()
            .min_by(|x, y| {
                train_distance(ingress, &egress_logs[**x])
                    .total_cmp(&train_distance(ingress, &egress_logs[**y]))
            })
            .copied()
            .unwrap_or(session);
        if best == session {
            matched += 1;
        }
    }
    let accuracy_dual_role = matched as f64 / config.sessions.max(1) as f64;

    // Split-operator adversary: sees only the ingress logs; egress pairing
    // is a uniform guess.
    let accuracy_split_operators = 1.0 / config.sessions.max(1) as f64;

    AttackReport {
        sessions: config.sessions,
        matched_dual_role: matched,
        accuracy_dual_role,
        accuracy_split_operators,
    }
}

/// Renders the attack report.
pub fn render_attack(report: &AttackReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Timing-correlation attack (§6, Tor-style)");
    let _ = writeln!(out, "concurrent sessions        : {}", report.sessions);
    let _ = writeln!(
        out,
        "dual-role AS (AkamaiPR)    : {}/{} sessions de-anonymised ({:.0}%)",
        report.matched_dual_role,
        report.sessions,
        report.accuracy_dual_role * 100.0
    );
    let _ = writeln!(
        out,
        "disjoint operators         : {:.1}% (chance level — nothing to correlate)",
        report.accuracy_split_operators * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_role_adversary_deanonymises() {
        let report = run_attack(&AttackConfig::default(), 7);
        assert!(
            report.accuracy_dual_role > 0.9,
            "dual-role accuracy {:.2}",
            report.accuracy_dual_role
        );
        assert!(report.accuracy_split_operators < 0.05);
        assert!(report.accuracy_dual_role > 10.0 * report.accuracy_split_operators);
    }

    #[test]
    fn heavy_jitter_degrades_the_attack() {
        let clean = run_attack(&AttackConfig::default(), 9);
        let noisy = run_attack(
            &AttackConfig {
                // Jitter dominating the inter-arrival structure.
                jitter: SimDuration::from_secs(60),
                ..AttackConfig::default()
            },
            9,
        );
        assert!(
            noisy.accuracy_dual_role < clean.accuracy_dual_role,
            "noise did not hurt: {:.2} vs {:.2}",
            noisy.accuracy_dual_role,
            clean.accuracy_dual_role
        );
    }

    #[test]
    fn attack_is_deterministic() {
        let a = run_attack(&AttackConfig::default(), 3);
        let b = run_attack(&AttackConfig::default(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn more_sessions_lower_chance_baseline() {
        let small = run_attack(
            &AttackConfig {
                sessions: 10,
                ..AttackConfig::default()
            },
            5,
        );
        let large = run_attack(
            &AttackConfig {
                sessions: 80,
                ..AttackConfig::default()
            },
            5,
        );
        assert!(large.accuracy_split_operators < small.accuracy_split_operators);
        // Timing correlation stays strong even with more concurrency.
        assert!(large.accuracy_dual_role > 0.8);
    }

    #[test]
    fn render_mentions_both_adversaries() {
        let report = run_attack(&AttackConfig::default(), 1);
        let text = render_attack(&report);
        assert!(text.contains("dual-role"));
        assert!(text.contains("disjoint operators"));
    }

    #[test]
    fn train_distance_identity_is_small() {
        let train: Vec<HopEvent> = (0..10)
            .map(|i| HopEvent {
                at: 1000 * i,
                side_id: 0,
            })
            .collect();
        let shifted: Vec<HopEvent> = train
            .iter()
            .map(|e| HopEvent {
                at: e.at + 25,
                side_id: 1,
            })
            .collect();
        // Constant shift (the relay delay) does not count as distance.
        assert!(train_distance(&train, &shifted) < 1e-9);
        assert_eq!(train_distance(&[], &train), f64::MAX);
    }
}
