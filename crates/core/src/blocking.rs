//! The service-blocking survey (§4.1, R3).
//!
//! Classifies RIPE-Atlas-style probe results for the mask domains against a
//! control measurement, the way the paper does:
//!
//! * probes timing out on *both* runs are network flakiness, not blocking
//!   (the paper's 10 % baseline),
//! * NXDOMAIN and empty-NOERROR responses are attributed to intentional
//!   blocking — the authoritative is known never to answer that way,
//! * REFUSED counts as blocking only when the control run proves the
//!   resolver otherwise functional,
//! * an answer whose address is *not* an ingress address is a DNS hijack
//!   (the paper caught one, pointing at a filtering service),
//! * SERVFAIL / FORMERR stay unattributed (broken setups).

use std::collections::BTreeMap;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};
use tectonic_atlas::measurement::{MeasurementOutcome, ProbeResult};
use tectonic_dns::Rcode;

/// The survey's per-probe verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeVerdict {
    /// Resolution succeeded with a plausible ingress address.
    Working,
    /// Timed out on the mask domain (and typically the control too).
    Timeout,
    /// Blocked: NXDOMAIN claimed by the resolver.
    BlockedNxDomain,
    /// Blocked: NOERROR with no data.
    BlockedNoData,
    /// Blocked: REFUSED while the control run worked.
    BlockedRefused,
    /// Blocked: answer hijacked to a non-ingress address.
    Hijacked,
    /// Broken resolver (SERVFAIL/FORMERR or REFUSED with broken control).
    Broken,
}

impl ProbeVerdict {
    /// Whether the verdict counts as intentional blocking.
    pub fn is_blocked(&self) -> bool {
        matches!(
            self,
            ProbeVerdict::BlockedNxDomain
                | ProbeVerdict::BlockedNoData
                | ProbeVerdict::BlockedRefused
                | ProbeVerdict::Hijacked
        )
    }
}

/// The aggregated survey.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockingReport {
    /// Probes measured.
    pub requested: usize,
    /// Per-verdict counts.
    pub verdicts: BTreeMap<String, usize>,
    /// Probes that timed out (share of requested).
    pub timeout_share: f64,
    /// Probes with a failing DNS response (share of requested).
    pub error_response_share: f64,
    /// RCODE shares *within* the failing responses (the paper's 72 %
    /// NXDOMAIN / 13 % NOERROR / 5 % REFUSED breakdown).
    pub rcode_breakdown: BTreeMap<String, f64>,
    /// Probes classified as blocked.
    pub blocked: usize,
    /// Blocked share of requested probes (the paper's 5.5 %).
    pub blocked_share: f64,
    /// Hijacks detected (the paper: one).
    pub hijacks: usize,
}

/// Classifies one probe's mask-domain result against its control result.
///
/// `is_ingress` decides whether an answered address belongs to the relay
/// service (hijack detection).
pub fn classify(
    mask: &MeasurementOutcome,
    control: &MeasurementOutcome,
    is_ingress: &dyn Fn(IpAddr) -> bool,
) -> ProbeVerdict {
    match mask {
        MeasurementOutcome::Timeout => ProbeVerdict::Timeout,
        MeasurementOutcome::Response {
            rcode,
            answers_v4,
            answers_v6,
        } => match rcode {
            Rcode::NoError => {
                if answers_v4.is_empty() && answers_v6.is_empty() {
                    ProbeVerdict::BlockedNoData
                } else {
                    let all_ingress = answers_v4
                        .iter()
                        .map(|a| IpAddr::V4(*a))
                        .chain(answers_v6.iter().map(|a| IpAddr::V6(*a)))
                        .all(is_ingress);
                    if all_ingress {
                        ProbeVerdict::Working
                    } else {
                        ProbeVerdict::Hijacked
                    }
                }
            }
            Rcode::NxDomain => ProbeVerdict::BlockedNxDomain,
            Rcode::Refused => {
                // Verified against the control domain, as the paper did.
                if matches!(control, MeasurementOutcome::Response { rcode, .. } if *rcode == Rcode::NoError || *rcode == Rcode::Refused)
                {
                    ProbeVerdict::BlockedRefused
                } else {
                    ProbeVerdict::Broken
                }
            }
            _ => ProbeVerdict::Broken,
        },
    }
}

/// Builds the survey report from paired mask/control results (matched by
/// probe ID).
pub fn survey(
    mask_results: &[ProbeResult],
    control_results: &[ProbeResult],
    is_ingress: &dyn Fn(IpAddr) -> bool,
) -> BlockingReport {
    let control_by_id: BTreeMap<u32, &MeasurementOutcome> = control_results
        .iter()
        .map(|r| (r.probe_id, &r.outcome))
        .collect();
    let mut verdicts: BTreeMap<String, usize> = BTreeMap::new();
    let mut blocked = 0usize;
    let mut hijacks = 0usize;
    let mut timeouts = 0usize;
    let mut error_responses = 0usize;
    let mut rcode_counts: BTreeMap<String, usize> = BTreeMap::new();
    for r in mask_results {
        let control = control_by_id
            .get(&r.probe_id)
            .copied()
            .unwrap_or(&MeasurementOutcome::Timeout);
        let verdict = classify(&r.outcome, control, is_ingress);
        *verdicts.entry(format!("{verdict:?}")).or_insert(0) += 1;
        if verdict.is_blocked() {
            blocked += 1;
        }
        if verdict == ProbeVerdict::Hijacked {
            hijacks += 1;
        }
        match &r.outcome {
            MeasurementOutcome::Timeout => timeouts += 1,
            MeasurementOutcome::Response { rcode, .. } => {
                let failing = verdict != ProbeVerdict::Working;
                if failing {
                    error_responses += 1;
                    let label = if verdict == ProbeVerdict::BlockedNoData {
                        "NOERROR".to_string()
                    } else if verdict == ProbeVerdict::Hijacked {
                        "HIJACK".to_string()
                    } else {
                        rcode.mnemonic()
                    };
                    *rcode_counts.entry(label).or_insert(0) += 1;
                }
            }
        }
    }
    let requested = mask_results.len();
    let rcode_breakdown = rcode_counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / error_responses.max(1) as f64))
        .collect();
    BlockingReport {
        requested,
        verdicts,
        timeout_share: timeouts as f64 / requested.max(1) as f64,
        error_response_share: error_responses as f64 / requested.max(1) as f64,
        rcode_breakdown,
        blocked,
        blocked_share: blocked as f64 / requested.max(1) as f64,
        hijacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tectonic_geo::country::CountryCode;
    use tectonic_net::Asn;

    fn ok(addr: Ipv4Addr) -> MeasurementOutcome {
        MeasurementOutcome::Response {
            rcode: Rcode::NoError,
            answers_v4: vec![addr],
            answers_v6: vec![],
        }
    }

    fn rcode_only(rcode: Rcode) -> MeasurementOutcome {
        MeasurementOutcome::Response {
            rcode,
            answers_v4: vec![],
            answers_v6: vec![],
        }
    }

    fn ingress(addr: IpAddr) -> bool {
        match addr {
            IpAddr::V4(a) => a.octets()[0] == 17,
            IpAddr::V6(_) => false,
        }
    }

    #[test]
    fn classification_matrix() {
        let control_ok = ok(Ipv4Addr::new(93, 184, 216, 34));
        assert_eq!(
            classify(&ok(Ipv4Addr::new(17, 1, 1, 1)), &control_ok, &ingress),
            ProbeVerdict::Working
        );
        assert_eq!(
            classify(&ok(Ipv4Addr::new(198, 18, 200, 200)), &control_ok, &ingress),
            ProbeVerdict::Hijacked
        );
        assert_eq!(
            classify(&rcode_only(Rcode::NxDomain), &control_ok, &ingress),
            ProbeVerdict::BlockedNxDomain
        );
        assert_eq!(
            classify(&rcode_only(Rcode::NoError), &control_ok, &ingress),
            ProbeVerdict::BlockedNoData
        );
        assert_eq!(
            classify(&rcode_only(Rcode::Refused), &control_ok, &ingress),
            ProbeVerdict::BlockedRefused
        );
        assert_eq!(
            classify(
                &rcode_only(Rcode::Refused),
                &MeasurementOutcome::Timeout,
                &ingress
            ),
            ProbeVerdict::Broken
        );
        assert_eq!(
            classify(&rcode_only(Rcode::ServFail), &control_ok, &ingress),
            ProbeVerdict::Broken
        );
        assert_eq!(
            classify(&MeasurementOutcome::Timeout, &control_ok, &ingress),
            ProbeVerdict::Timeout
        );
    }

    fn probe_result(id: u32, outcome: MeasurementOutcome) -> ProbeResult {
        ProbeResult {
            probe_id: id,
            asn: Asn(100_000 + id),
            cc: CountryCode::US,
            resolver_kind: None,
            outcome,
        }
    }

    #[test]
    fn survey_aggregates_shares() {
        // 10 probes: 5 working, 2 NXDOMAIN, 1 NOERROR-nodata, 1 timeout,
        // 1 hijack.
        let mask: Vec<ProbeResult> = (0..10)
            .map(|i| {
                let outcome = match i {
                    0..=4 => ok(Ipv4Addr::new(17, 0, 0, i as u8 + 1)),
                    5 | 6 => rcode_only(Rcode::NxDomain),
                    7 => rcode_only(Rcode::NoError),
                    8 => MeasurementOutcome::Timeout,
                    _ => ok(Ipv4Addr::new(198, 18, 200, 200)),
                };
                probe_result(i, outcome)
            })
            .collect();
        let control: Vec<ProbeResult> = (0..10)
            .map(|i| probe_result(i, ok(Ipv4Addr::new(93, 184, 216, 34))))
            .collect();
        let report = survey(&mask, &control, &ingress);
        assert_eq!(report.requested, 10);
        assert_eq!(report.blocked, 4);
        assert!((report.blocked_share - 0.4).abs() < 1e-9);
        assert_eq!(report.hijacks, 1);
        assert!((report.timeout_share - 0.1).abs() < 1e-9);
        assert!((report.error_response_share - 0.4).abs() < 1e-9);
        // Breakdown within the 4 failing responses: 2 NXDOMAIN.
        assert!((report.rcode_breakdown["NXDOMAIN"] - 0.5).abs() < 1e-9);
        assert!((report.rcode_breakdown["NOERROR"] - 0.25).abs() < 1e-9);
        assert!((report.rcode_breakdown["HIJACK"] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn missing_control_counts_as_broken_for_refused() {
        let mask = vec![probe_result(0, rcode_only(Rcode::Refused))];
        let report = survey(&mask, &[], &ingress);
        assert_eq!(report.blocked, 0);
        assert_eq!(report.verdicts["Broken"], 1);
    }

    #[test]
    fn empty_survey() {
        let report = survey(&[], &[], &ingress);
        assert_eq!(report.requested, 0);
        assert_eq!(report.blocked_share, 0.0);
    }
}
