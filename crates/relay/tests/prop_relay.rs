//! Property tests for the relay deployment's invariants: egress selection
//! laws, client-world structure, and ECS zone behaviour under arbitrary
//! query subnets.

use std::net::IpAddr;
use std::sync::OnceLock;

use proptest::prelude::*;
use tectonic_dns::zone::{EcsAnswerer, QueryInfo};
use tectonic_dns::{EcsOption, QClass, QType, Question};
use tectonic_geo::country::CountryCode;
use tectonic_net::{Asn, Epoch, Ipv4Net, SimRng, SimTime};
use tectonic_relay::zone::MaskZone;
use tectonic_relay::{ClientWorld, Deployment, DeploymentConfig};

fn deployment() -> &'static Deployment {
    static DEPLOYMENT: OnceLock<Deployment> = OnceLock::new();
    DEPLOYMENT.get_or_init(|| Deployment::build(5150, DeploymentConfig::scaled(512)))
}

fn mask_zone() -> &'static MaskZone {
    static ZONE: OnceLock<MaskZone> = OnceLock::new();
    ZONE.get_or_init(|| {
        let d = deployment();
        MaskZone::new(d.fleets.clone(), d.world.clone(), 8, 42)
    })
}

fn arb_cc() -> impl Strategy<Value = CountryCode> {
    prop_oneof![
        Just(CountryCode::US),
        Just(CountryCode::DE),
        Just(CountryCode::new("JP").unwrap()),
        Just(CountryCode::new("BR").unwrap()),
        Just(CountryCode::new("KE").unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn egress_selection_always_inside_subnet(
        client_key in any::<u64>(),
        cc in arb_cc(),
        conn in any::<u64>(),
        minutes in 0u64..10_000,
        v6 in any::<bool>(),
    ) {
        let d = deployment();
        let now = SimTime::from_ymd(2022, 5, 1)
            + tectonic_net::SimDuration::from_mins(minutes);
        if let Some(sel) = d.egress_selector().select(client_key, cc, now, conn, v6) {
            prop_assert!(sel.subnet.contains(sel.addr));
            prop_assert!(Asn::EGRESS_OPERATORS.contains(&sel.operator));
            prop_assert_eq!(sel.subnet.is_v6(), v6);
            // The address lies in the operator's announced space.
            prop_assert!(d.in_operator_space(sel.operator, sel.addr));
            // Selection is deterministic for the same inputs.
            let again = d.egress_selector().select(client_key, cc, now, conn, v6);
            prop_assert_eq!(again, Some(sel));
        }
    }

    #[test]
    fn mask_zone_answers_are_well_formed(
        subnet_bits in any::<u32>(),
        quic in any::<bool>(),
        v6_query in any::<bool>(),
    ) {
        let d = deployment();
        let zone = mask_zone();
        let name = if quic { "mask.icloud.com" } else { "mask-h2.icloud.com" };
        let qtype = if v6_query { QType::AAAA } else { QType::A };
        let question = Question {
            name: name.parse().unwrap(),
            qtype,
            qclass: QClass::IN,
        };
        let ecs = EcsOption::for_v4_net(Ipv4Net::new(subnet_bits.into(), 24).unwrap());
        let info = QueryInfo {
            src: "138.246.253.10".parse().unwrap(),
            now: Epoch::Apr2022.start(),
        };
        let answer = zone.answer(&question, Some(&ecs), &info).expect("mask answers");
        prop_assert!(answer.rdatas.len() <= 8);
        // Every record is an ingress address of a single operator.
        let mut ops = std::collections::BTreeSet::new();
        for rd in &answer.rdatas {
            let addr: IpAddr = match (v6_query, rd.as_a(), rd.as_aaaa()) {
                (false, Some(a), _) => IpAddr::V4(a),
                (true, _, Some(a)) => IpAddr::V6(a),
                _ => return Err(TestCaseError::fail("wrong rdata family")),
            };
            let asn = d.fleets.asn_of(addr);
            prop_assert!(asn.is_some(), "{addr} not ingress");
            ops.insert(asn.unwrap());
        }
        if !answer.rdatas.is_empty() {
            prop_assert_eq!(ops.len(), 1, "answer mixes operators");
        }
        // Scope law: AAAA answers always scope 0; A answers never wider
        // than the query's /24.
        if v6_query {
            prop_assert_eq!(answer.scope_len, 0);
        } else {
            prop_assert!(answer.scope_len <= 24);
        }
    }

    #[test]
    fn client_world_serving_operator_is_stable(seed in any::<u64>()) {
        let config = DeploymentConfig::scaled(2048).client_world;
        let world = ClientWorld::generate(&SimRng::new(seed), &config);
        for client_as in world.ases().iter().step_by(11) {
            let subnet = client_as.slash24s().next().unwrap();
            let op1 = world.serving_operator(subnet);
            let op2 = world.serving_operator(subnet);
            prop_assert_eq!(op1, op2);
            prop_assert!(op1.is_some());
            // The operator is one of the two ingress operators.
            prop_assert!(Asn::INGRESS_OPERATORS.contains(&op1.unwrap()));
        }
    }

    #[test]
    fn last_hop_is_a_function_of_site(addr_bits in any::<u32>(), asn in 1u32..70_000) {
        let d = deployment();
        let asn = Asn(asn);
        let addr = IpAddr::V4(std::net::Ipv4Addr::from(addr_bits));
        let a = d.routers.last_hop(asn, addr);
        let b = d.routers.last_hop(asn, addr);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.asn, asn);
        // Traceroute always ends at the last hop.
        let hops = d.routers.traceroute(Asn(100_000), asn, addr);
        prop_assert_eq!(*hops.last().unwrap(), a);
        prop_assert_eq!(hops.len(), 4);
    }
}
