//! Ingress relay fleets.
//!
//! Addresses are allocated once from each plan's pool (at the maximum fleet
//! size across epochs) and every epoch exposes a *window* of that pool —
//! so fleets grow with low churn, as the paper observed. Each fleet is also
//! partitioned into per-country clusters: the ECS zone steers a client
//! subnet to its country's cluster, which is what makes the single-vantage
//! ECS scan see the whole world while RIPE Atlas (probes in only 168
//! countries) sees a strict subset (§4.1).

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use tectonic_net::{Asn, Epoch, FrozenLpm, Ipv4Net, Ipv6Net, PrefixTrie};

use tectonic_geo::country::{all_countries, CountryCode};
use tectonic_quic::IngressQuicBehavior;

use crate::config::{DeploymentConfig, Domain};

/// The address pool of one `(domain, operator)` fleet.
#[derive(Debug, Clone)]
pub struct FleetPool {
    /// IPv4 addresses, in allocation order (epoch windows are prefixes).
    pub v4: Vec<Ipv4Addr>,
    /// IPv6 addresses, in allocation order.
    pub v6: Vec<Ipv6Addr>,
    /// The /24 BGP prefixes hosting the IPv4 relays.
    pub v4_prefixes: Vec<Ipv4Net>,
    /// The /48 BGP prefixes hosting the IPv6 relays.
    pub v6_prefixes: Vec<Ipv6Net>,
}

/// All ingress fleets plus reverse lookup and QUIC behaviour.
#[derive(Debug)]
pub struct IngressFleets {
    pools: HashMap<(Domain, Asn), FleetPool>,
    /// Maps relay prefixes back to their operator. Fleets never change
    /// after `build`, so only the compiled form is kept.
    reverse: FrozenLpm<Asn>,
    /// Per-epoch fleet sizes come from the config.
    config_sizes: HashMap<(Domain, Asn), [[usize; 4]; 2]>,
    quic: IngressQuicBehavior,
    /// Country cluster boundaries are derived from these cumulative weights.
    cc_cumweights: Vec<(CountryCode, f64)>,
}

impl IngressFleets {
    /// Allocates every fleet from the configuration.
    pub fn build(config: &DeploymentConfig) -> IngressFleets {
        let mut pools = HashMap::new();
        let mut reverse = PrefixTrie::new();
        let mut config_sizes = HashMap::new();
        for plan in &config.ingress_plans {
            let v4_prefixes: Vec<Ipv4Net> = plan
                .v4_pool
                .subnets(24)
                .into_iter()
                .flatten()
                .take(plan.v4_prefixes)
                .collect();
            assert_eq!(v4_prefixes.len(), plan.v4_prefixes, "v4 pool too small");
            let v6_prefixes: Vec<Ipv6Net> = (0..plan.v6_prefixes)
                .filter_map(|i| plan.v6_pool.nth_subnet(48, i as u128).ok())
                .collect();
            assert_eq!(v6_prefixes.len(), plan.v6_prefixes, "v6 pool too small");
            let max4 = plan.max_size(false);
            let v4: Vec<Ipv4Addr> = (0..max4)
                .map(|i| {
                    let p = v4_prefixes[i % v4_prefixes.len().max(1)];
                    p.nth_addr(1 + (i / v4_prefixes.len().max(1)) as u64)
                })
                .collect();
            let max6 = plan.max_size(true);
            let v6: Vec<Ipv6Addr> = (0..max6)
                .map(|i| {
                    let p = v6_prefixes[i % v6_prefixes.len().max(1)];
                    p.nth_addr(1 + (i / v6_prefixes.len().max(1)) as u128)
                })
                .collect();
            for p in &v4_prefixes {
                reverse.insert(*p, plan.asn);
            }
            for p in &v6_prefixes {
                reverse.insert(*p, plan.asn);
            }
            config_sizes.insert(
                (plan.domain, plan.asn),
                [plan.v4_by_epoch, plan.v6_by_epoch],
            );
            pools.insert(
                (plan.domain, plan.asn),
                FleetPool {
                    v4,
                    v6,
                    v4_prefixes,
                    v6_prefixes,
                },
            );
        }
        let countries = all_countries();
        let total: f64 = countries.iter().map(|c| c.weight).sum();
        let mut acc = 0.0;
        let cc_cumweights = countries
            .iter()
            .map(|c| {
                acc += c.weight / total;
                (c.code, acc)
            })
            .collect();
        IngressFleets {
            pools,
            reverse: reverse.freeze(),
            config_sizes,
            quic: IngressQuicBehavior::default(),
            cc_cumweights,
        }
    }

    fn epoch_index(epoch: Epoch) -> usize {
        match epoch {
            Epoch::Jan2022 => 0,
            Epoch::Feb2022 => 1,
            Epoch::Mar2022 => 2,
            Epoch::Apr2022 | Epoch::May2022 => 3,
        }
    }

    /// The fleet pool for a `(domain, operator)` pair.
    pub fn pool(&self, domain: Domain, asn: Asn) -> Option<&FleetPool> {
        self.pools.get(&(domain, asn))
    }

    /// Configured window size for one `(domain, operator)` pair, family row
    /// (0 = v4, 1 = v6) and epoch; zero if the pair is unknown.
    fn config_size(&self, domain: Domain, asn: Asn, family: usize, epoch: Epoch) -> usize {
        self.config_sizes
            .get(&(domain, asn))
            .and_then(|rows| rows.get(family))
            .and_then(|row| row.get(Self::epoch_index(epoch)))
            .copied()
            .unwrap_or(0)
    }

    /// The active IPv4 fleet window at `epoch`.
    pub fn fleet_v4(&self, epoch: Epoch, domain: Domain, asn: Asn) -> &[Ipv4Addr] {
        let Some(pool) = self.pools.get(&(domain, asn)) else {
            return &[];
        };
        let size = self.config_size(domain, asn, 0, epoch);
        &pool.v4[..size.min(pool.v4.len())]
    }

    /// The active IPv6 fleet window at `epoch`.
    pub fn fleet_v6(&self, epoch: Epoch, domain: Domain, asn: Asn) -> &[Ipv6Addr] {
        let Some(pool) = self.pools.get(&(domain, asn)) else {
            return &[];
        };
        let size = self.config_size(domain, asn, 1, epoch);
        &pool.v6[..size.min(pool.v6.len())]
    }

    /// Every active IPv4 ingress address at `epoch`, across domains and
    /// operators (what a complete ECS scan of both domains can uncover).
    pub fn all_v4_at(&self, epoch: Epoch) -> Vec<Ipv4Addr> {
        let mut out = Vec::new();
        for domain in Domain::ALL {
            for asn in Asn::INGRESS_OPERATORS {
                out.extend_from_slice(self.fleet_v4(epoch, domain, asn));
            }
        }
        out
    }

    /// The operator of an ingress address, if it is one.
    pub fn asn_of(&self, addr: IpAddr) -> Option<Asn> {
        self.reverse.longest_match(addr).map(|(_, asn)| *asn)
    }

    /// Whether `addr` is an ingress relay address (any epoch window).
    pub fn is_ingress(&self, addr: IpAddr) -> bool {
        self.asn_of(addr).is_some()
    }

    /// The QUIC behaviour every ingress node exhibits (§3).
    pub fn quic_behavior(&self) -> &IngressQuicBehavior {
        &self.quic
    }

    /// The country cluster of a fleet: the contiguous window of the fleet
    /// serving clients in `cc`. Every country gets at least one address.
    pub fn cc_cluster<'a, T>(&self, fleet: &'a [T], cc: CountryCode) -> &'a [T] {
        if fleet.is_empty() {
            return fleet;
        }
        let mut prev = 0.0;
        for (code, cum) in &self.cc_cumweights {
            if *code == cc {
                let start = (prev * fleet.len() as f64) as usize;
                let end = ((*cum * fleet.len() as f64) as usize).max(start + 1);
                let start = start.min(fleet.len() - 1);
                let end = end.min(fleet.len()).max(start + 1);
                return &fleet[start..end];
            }
            prev = *cum;
        }
        // Unknown country: the first cluster.
        &fleet[..1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn fleets() -> IngressFleets {
        IngressFleets::build(&DeploymentConfig::paper())
    }

    #[test]
    fn april_default_fleet_sizes_match_table1() {
        let f = fleets();
        assert_eq!(
            f.fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::APPLE)
                .len(),
            349
        );
        assert_eq!(
            f.fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)
                .len(),
            1237
        );
        assert_eq!(
            f.fleet_v4(Epoch::Jan2022, Domain::MaskH2, Asn::AKAMAI_PR)
                .len(),
            0
        );
        assert_eq!(
            f.fleet_v4(Epoch::Apr2022, Domain::MaskH2, Asn::AKAMAI_PR)
                .len(),
            1062
        );
    }

    #[test]
    fn addresses_are_unique_across_all_fleets() {
        let f = fleets();
        let all = f.all_v4_at(Epoch::Apr2022);
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len(), "duplicate ingress addresses");
        assert_eq!(all.len(), 1586 + 1398);
    }

    #[test]
    fn growth_windows_are_prefixes() {
        let f = fleets();
        let jan = f.fleet_v4(Epoch::Jan2022, Domain::MaskQuic, Asn::AKAMAI_PR);
        let apr = f.fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR);
        assert!(jan.len() < apr.len());
        assert_eq!(&apr[..jan.len()], jan, "older fleet must persist");
    }

    #[test]
    fn addresses_live_in_declared_prefixes() {
        let f = fleets();
        for domain in Domain::ALL {
            for asn in Asn::INGRESS_OPERATORS {
                let pool = f.pool(domain, asn).unwrap();
                for addr in &pool.v4 {
                    assert!(
                        pool.v4_prefixes.iter().any(|p| p.contains(*addr)),
                        "{addr} outside fleet prefixes"
                    );
                }
                for addr in &pool.v6 {
                    assert!(pool.v6_prefixes.iter().any(|p| p.contains(*addr)));
                }
            }
        }
    }

    #[test]
    fn reverse_lookup_attributes_operator() {
        let f = fleets();
        let apple = f.fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::APPLE)[0];
        assert_eq!(f.asn_of(IpAddr::V4(apple)), Some(Asn::APPLE));
        let akamai = f.fleet_v6(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR)[0];
        assert_eq!(f.asn_of(IpAddr::V6(akamai)), Some(Asn::AKAMAI_PR));
        assert_eq!(f.asn_of("8.8.8.8".parse().unwrap()), None);
        assert!(f.is_ingress(IpAddr::V4(apple)));
    }

    #[test]
    fn ipv6_april_totals() {
        let f = fleets();
        let total: usize = Asn::INGRESS_OPERATORS
            .iter()
            .map(|a| f.fleet_v6(Epoch::Apr2022, Domain::MaskQuic, *a).len())
            .sum();
        assert_eq!(total, 1575);
    }

    #[test]
    fn cc_clusters_partition_fleet() {
        let f = fleets();
        let fleet = f.fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::AKAMAI_PR);
        // Every country's cluster is non-empty and in range.
        let mut covered: HashSet<Ipv4Addr> = HashSet::new();
        for c in all_countries() {
            let cluster = f.cc_cluster(fleet, c.code);
            assert!(!cluster.is_empty(), "{} empty cluster", c.code);
            covered.extend(cluster.iter().copied());
        }
        // Together the clusters cover (almost) the whole fleet.
        assert!(
            covered.len() as f64 / fleet.len() as f64 > 0.95,
            "clusters cover only {}/{}",
            covered.len(),
            fleet.len()
        );
        // US cluster is the biggest single-country cluster.
        let us = f.cc_cluster(fleet, CountryCode::US).len();
        let kn = f.cc_cluster(fleet, CountryCode::new("KN").unwrap()).len();
        assert!(us > kn);
    }

    #[test]
    fn quic_behavior_is_paper_shaped() {
        let f = fleets();
        let (std_outcome, vn_outcome) = tectonic_quic::QuicProber.probe_ingress(f.quic_behavior());
        assert_eq!(std_outcome, tectonic_quic::ProbeOutcome::Timeout);
        assert!(matches!(
            vn_outcome,
            tectonic_quic::ProbeOutcome::VersionNegotiation(_)
        ));
    }

    #[test]
    fn empty_fleet_for_unknown_pairs() {
        let f = fleets();
        assert!(f
            .fleet_v4(Epoch::Apr2022, Domain::MaskQuic, Asn::CLOUDFLARE)
            .is_empty());
        assert!(f.pool(Domain::MaskH2, Asn::FASTLY).is_none());
    }
}
