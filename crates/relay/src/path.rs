//! Router-level paths and traceroute.
//!
//! §6 of the paper validates the correlation concern with traceroutes: an
//! ingress and an egress address inside AS36183 share the *same last-hop
//! router*. [`RouterTopology`] models a small router layer per AS — client
//! gateway → transit → AS border → site router → destination — where
//! Akamai&#8239;PR addresses (ingress or egress alike) map onto a shared
//! pool of site routers.

use std::net::{IpAddr, Ipv4Addr};

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, Ipv4Net};

/// One traceroute hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RouterHop {
    /// The responding router address.
    pub addr: Ipv4Addr,
    /// AS the router belongs to.
    pub asn: Asn,
}

/// Router-level model of the relay-relevant ASes.
#[derive(Debug, Clone)]
pub struct RouterTopology {
    /// Number of site routers each relay AS operates.
    site_routers_per_as: usize,
    seed: u64,
}

/// Router addresses are synthesised from TEST-NET-3-like space per AS so
/// they never collide with relay or client addresses.
fn router_addr(asn: Asn, index: usize) -> Ipv4Addr {
    // 198.18.0.0/15 (benchmarking range) re-purposed as router space.
    let base = u32::from(Ipv4Addr::new(198, 18, 0, 0));
    let asn_block = (asn.value() % 512) << 8;
    Ipv4Addr::from(base | asn_block | (index as u32 & 0xFF))
}

impl RouterTopology {
    /// A topology with `site_routers_per_as` site routers per relay AS.
    ///
    /// The paper-shaped default is a few dozen sites: small enough that an
    /// ingress and an egress address in AS36183 frequently share their
    /// last hop.
    pub fn new(site_routers_per_as: usize, seed: u64) -> RouterTopology {
        RouterTopology {
            site_routers_per_as: site_routers_per_as.max(1),
            seed,
        }
    }

    /// The last-hop (site) router in front of `addr` within `asn`.
    ///
    /// The mapping is stable per /24 (v4) or /48 (v6): addresses in the
    /// same site share the router, and Akamai&#8239;PR ingress and egress
    /// sites draw from the same router pool.
    pub fn last_hop(&self, asn: Asn, addr: IpAddr) -> RouterHop {
        let site_key: u64 = match addr {
            IpAddr::V4(a) => u64::from(u32::from(a) >> 8),
            IpAddr::V6(a) => (u128::from(a) >> 80) as u64,
        };
        let mut h = site_key ^ self.seed ^ u64::from(asn.value()) << 40;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let index = (h as usize) % self.site_routers_per_as;
        RouterHop {
            addr: router_addr(asn, index),
            asn,
        }
    }

    /// A traceroute from a client (in `client_asn`) to `dst` in `dst_asn`.
    ///
    /// Hop sequence: client gateway → transit → destination-AS border →
    /// destination-AS site router (last hop) — the level of detail the
    /// paper's validation needs.
    pub fn traceroute(&self, client_asn: Asn, dst_asn: Asn, dst: IpAddr) -> Vec<RouterHop> {
        let transit = Asn(3356);
        let gateway = RouterHop {
            addr: router_addr(client_asn, 0),
            asn: client_asn,
        };
        let transit_hop = RouterHop {
            addr: router_addr(transit, (client_asn.value() % 7) as usize),
            asn: transit,
        };
        let border = RouterHop {
            addr: router_addr(dst_asn, 0xFF & (dst_asn.value() as usize)),
            asn: dst_asn,
        };
        let last = self.last_hop(dst_asn, dst);
        vec![gateway, transit_hop, border, last]
    }

    /// Convenience: do two addresses in `asn` share their last-hop router?
    pub fn shares_last_hop(&self, asn: Asn, a: IpAddr, b: IpAddr) -> bool {
        self.last_hop(asn, a) == self.last_hop(asn, b)
    }

    /// The router pool size per AS.
    pub fn sites_per_as(&self) -> usize {
        self.site_routers_per_as
    }
}

/// The benchmarking prefix used for synthetic router addresses.
pub fn router_space() -> Ipv4Net {
    Ipv4Net::literal("198.18.0.0/15")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_hop_is_stable_per_slash24() {
        let t = RouterTopology::new(32, 1);
        let a: IpAddr = "172.224.5.7".parse().unwrap();
        let b: IpAddr = "172.224.5.200".parse().unwrap();
        let c: IpAddr = "172.224.9.1".parse().unwrap();
        assert_eq!(t.last_hop(Asn::AKAMAI_PR, a), t.last_hop(Asn::AKAMAI_PR, b));
        // A different /24 may map elsewhere (not asserted equal).
        let _ = t.last_hop(Asn::AKAMAI_PR, c);
    }

    #[test]
    fn ingress_and_egress_can_share_last_hop() {
        // With a small site pool, some ingress/egress /24 pairs collide —
        // the §6 validation. Search a few candidates.
        let t = RouterTopology::new(16, 7);
        let ingress: IpAddr = "172.240.3.1".parse().unwrap();
        let mut shared = false;
        for third in 0..200u32 {
            let egress: IpAddr = format!("172.224.{}.9", third % 250).parse().unwrap();
            if t.shares_last_hop(Asn::AKAMAI_PR, ingress, egress) {
                shared = true;
                break;
            }
        }
        assert!(shared, "no shared last hop found in 200 candidate sites");
    }

    #[test]
    fn different_ases_never_share_routers() {
        let t = RouterTopology::new(16, 7);
        let addr: IpAddr = "1.2.3.4".parse().unwrap();
        let a = t.last_hop(Asn::AKAMAI_PR, addr);
        let b = t.last_hop(Asn::CLOUDFLARE, addr);
        assert_ne!(a.addr, b.addr);
        assert_ne!(a.asn, b.asn);
    }

    #[test]
    fn traceroute_shape() {
        let t = RouterTopology::new(16, 7);
        let hops = t.traceroute(Asn(100_123), Asn::AKAMAI_PR, "172.240.3.1".parse().unwrap());
        assert_eq!(hops.len(), 4);
        assert_eq!(hops[0].asn, Asn(100_123));
        assert_eq!(hops[1].asn, Asn(3356));
        assert_eq!(hops[2].asn, Asn::AKAMAI_PR);
        assert_eq!(hops[3].asn, Asn::AKAMAI_PR);
        // The last hop equals the dedicated last_hop() computation.
        assert_eq!(
            hops[3],
            t.last_hop(Asn::AKAMAI_PR, "172.240.3.1".parse().unwrap())
        );
    }

    #[test]
    fn router_addresses_live_in_benchmark_space() {
        let t = RouterTopology::new(64, 3);
        let hop = t.last_hop(Asn::AKAMAI_PR, "172.224.0.1".parse().unwrap());
        assert!(router_space().contains(hop.addr));
    }

    #[test]
    fn v6_addresses_map_to_sites_too() {
        let t = RouterTopology::new(16, 7);
        let a: IpAddr = "2a02:26f7:0:1::1".parse().unwrap();
        let b: IpAddr = "2a02:26f7:0:1::2".parse().unwrap();
        assert_eq!(t.last_hop(Asn::AKAMAI_PR, a), t.last_hop(Asn::AKAMAI_PR, b));
    }
}
