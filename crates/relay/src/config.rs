//! Deployment configuration, calibrated to the paper.

use serde::{Deserialize, Serialize};
use tectonic_net::{Asn, Epoch, Ipv4Net, Ipv6Net};

use tectonic_geo::egress::OperatorEgressSpec;

/// The two service domains of iCloud Private Relay.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Domain {
    /// `mask.icloud.com` — the QUIC (default) ingress domain.
    MaskQuic,
    /// `mask-h2.icloud.com` — the TCP/HTTP2 fallback ingress domain.
    MaskH2,
}

impl Domain {
    /// Both domains, default first.
    pub const ALL: [Domain; 2] = [Domain::MaskQuic, Domain::MaskH2];

    /// The DNS name.
    pub fn name(&self) -> tectonic_dns::DomainName {
        match self {
            Domain::MaskQuic => tectonic_dns::DomainName::literal("mask.icloud.com"),
            Domain::MaskH2 => tectonic_dns::DomainName::literal("mask-h2.icloud.com"),
        }
    }

    /// Table-row label.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::MaskQuic => "Default",
            Domain::MaskH2 => "Fallback",
        }
    }
}

/// Per-epoch ingress fleet sizes for one `(domain, operator)` pair.
///
/// Fleets grow (or shrink) as address-count *windows* into a stable pool,
/// so an address present in January is normally still present in April —
/// matching the observed low churn.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IngressFleetPlan {
    /// Operator AS.
    pub asn: Asn,
    /// Domain served.
    pub domain: Domain,
    /// IPv4 fleet size at each scan epoch (Jan, Feb, Mar, Apr).
    pub v4_by_epoch: [usize; 4],
    /// IPv6 fleet size at each scan epoch.
    pub v6_by_epoch: [usize; 4],
    /// Pool IPv4 relay addresses are allocated from.
    pub v4_pool: Ipv4Net,
    /// Number of /24 BGP prefixes hosting the IPv4 relays (April).
    pub v4_prefixes: usize,
    /// Pool IPv6 relay addresses are allocated from.
    pub v6_pool: Ipv6Net,
    /// Number of /48 BGP prefixes hosting the IPv6 relays (April).
    pub v6_prefixes: usize,
}

impl IngressFleetPlan {
    /// Fleet size at `epoch` for the given family.
    pub fn size_at(&self, epoch: Epoch, v6: bool) -> usize {
        let idx = match epoch {
            Epoch::Jan2022 => 0,
            Epoch::Feb2022 => 1,
            Epoch::Mar2022 => 2,
            Epoch::Apr2022 | Epoch::May2022 => 3,
        };
        if v6 {
            self.v6_by_epoch[idx]
        } else {
            self.v4_by_epoch[idx]
        }
    }

    /// Maximum fleet size across epochs (the pool size to allocate).
    pub fn max_size(&self, v6: bool) -> usize {
        if v6 {
            self.v6_by_epoch.iter().max().copied().unwrap_or(0)
        } else {
            self.v4_by_epoch.iter().max().copied().unwrap_or(0)
        }
    }
}

/// Client-world structure: Table 2's three service-split categories.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClientWorldConfig {
    /// ASes served exclusively by Akamai&#8239;PR ingress relays.
    pub akamai_only_ases: usize,
    /// Total /24 subnets across Akamai-only ASes (1.1 M in the paper).
    pub akamai_only_slash24: u64,
    /// Total users across Akamai-only ASes (994 M).
    pub akamai_only_users: u64,
    /// ASes served exclusively by Apple ingress relays.
    pub apple_only_ases: usize,
    /// Total /24 subnets across Apple-only ASes (0.2 M).
    pub apple_only_slash24: u64,
    /// Total users across Apple-only ASes (105 M).
    pub apple_only_users: u64,
    /// ASes served by both operators, split per subnet.
    pub both_ases: usize,
    /// Total /24 subnets across both-ASes (10.6 M).
    pub both_slash24: u64,
    /// Total users across both-ASes (2373 M).
    pub both_users: u64,
    /// Apple's share of subnets within both-ASes (0.76).
    pub both_apple_subnet_share: f64,
}

impl ClientWorldConfig {
    /// The paper's full-scale Table 2 numbers.
    pub fn paper() -> ClientWorldConfig {
        ClientWorldConfig {
            akamai_only_ases: 34_627,
            akamai_only_slash24: 1_100_000,
            akamai_only_users: 994_000_000,
            apple_only_ases: 20_807,
            apple_only_slash24: 200_000,
            apple_only_users: 105_000_000,
            both_ases: 17_301,
            both_slash24: 10_600_000,
            both_users: 2_373_000_000,
            both_apple_subnet_share: 0.76,
        }
    }

    /// Scales AS and subnet counts by `1/div` (populations keep their
    /// totals, so Table 2's user column still reads in the paper's units).
    pub fn scaled_down(mut self, div: u64) -> ClientWorldConfig {
        let d = div.max(1);
        self.akamai_only_ases = (self.akamai_only_ases as u64 / d).max(4) as usize;
        self.akamai_only_slash24 = (self.akamai_only_slash24 / d).max(16);
        self.apple_only_ases = (self.apple_only_ases as u64 / d).max(4) as usize;
        self.apple_only_slash24 = (self.apple_only_slash24 / d).max(16);
        self.both_ases = (self.both_ases as u64 / d).max(4) as usize;
        self.both_slash24 = (self.both_slash24 / d).max(16);
        self
    }

    /// Total client ASes.
    pub fn total_ases(&self) -> usize {
        self.akamai_only_ases + self.apple_only_ases + self.both_ases
    }

    /// Total routed client /24 subnets.
    pub fn total_slash24(&self) -> u64 {
        self.akamai_only_slash24 + self.apple_only_slash24 + self.both_slash24
    }
}

/// Counts of Akamai&#8239;PR prefixes announced without hosting any relay,
/// calibrated so §6's 92.2 % used-prefix share comes out.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UnusedPrefixPlan {
    /// Unused IPv4 announcements.
    pub v4: usize,
    /// Unused IPv6 announcements.
    pub v6: usize,
    /// Pool the unused IPv4 prefixes are carved from.
    pub v4_pool: Ipv4Net,
    /// Pool the unused IPv6 prefixes are carved from.
    pub v6_pool: Ipv6Net,
}

/// The whole deployment configuration.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// Ingress fleet plans (one per domain × operator).
    pub ingress_plans: Vec<IngressFleetPlan>,
    /// Records returned per A answer (the paper saw up to eight).
    pub max_records_per_answer: usize,
    /// Egress generation specs (Table 3/4 structure).
    pub egress_specs: Vec<OperatorEgressSpec>,
    /// Egress list scale per epoch (Jan ≈ 0.87 of the May list).
    pub egress_scale_by_epoch: [(Epoch, f64); 5],
    /// Client world (Table 2 structure).
    pub client_world: ClientWorldConfig,
    /// Akamai&#8239;PR announcements with no relays (§6 census).
    pub unused_akamai_pr: UnusedPrefixPlan,
    /// City-universe size backing egress geography.
    pub city_universe_size: usize,
}

impl DeploymentConfig {
    /// Full paper-scale configuration.
    ///
    /// Table 1 fleet sizes:
    ///
    /// | epoch | default Apple | default Ak&#8239;PR | fallback Apple | fallback Ak&#8239;PR |
    /// |-------|------:|------:|------:|------:|
    /// | Jan   | 365 | 823 | 356 | 0 |
    /// | Feb   | 355 | 845 | 356 | 0 |
    /// | Mar   | 347 | 945 | 334 | 25 |
    /// | Apr   | 349 | 1237 | 336 | 1062 |
    ///
    /// IPv6 (measured via Atlas in April): Apple 346, Akamai&#8239;PR 1229.
    pub fn paper() -> DeploymentConfig {
        let ingress_plans = vec![
            IngressFleetPlan {
                asn: Asn::APPLE,
                domain: Domain::MaskQuic,
                v4_by_epoch: [365, 355, 347, 349],
                v6_by_epoch: [350, 348, 346, 346],
                v4_pool: Ipv4Net::literal("17.64.0.0/12"),
                v4_prefixes: 20,
                v6_pool: Ipv6Net::literal("2620:149:a000::/40"),
                v6_prefixes: 12,
            },
            IngressFleetPlan {
                asn: Asn::AKAMAI_PR,
                domain: Domain::MaskQuic,
                v4_by_epoch: [823, 845, 945, 1237],
                v6_by_epoch: [700, 780, 950, 1229],
                v4_pool: Ipv4Net::literal("172.240.0.0/13"),
                v4_prefixes: 64,
                v6_pool: Ipv6Net::literal("2a02:26f8::/33"),
                v6_prefixes: 70,
            },
            IngressFleetPlan {
                asn: Asn::APPLE,
                domain: Domain::MaskH2,
                v4_by_epoch: [356, 356, 334, 336],
                v6_by_epoch: [340, 340, 330, 332],
                v4_pool: Ipv4Net::literal("17.128.0.0/12"),
                v4_prefixes: 9,
                v6_pool: Ipv6Net::literal("2620:149:b000::/40"),
                v6_prefixes: 8,
            },
            IngressFleetPlan {
                asn: Asn::AKAMAI_PR,
                domain: Domain::MaskH2,
                v4_by_epoch: [0, 0, 25, 1062],
                v6_by_epoch: [0, 0, 20, 1000],
                v4_pool: Ipv4Net::literal("172.248.0.0/13"),
                v4_prefixes: 30,
                v6_pool: Ipv6Net::literal("2a02:26f8:8000::/33"),
                v6_prefixes: 37,
            },
        ];
        DeploymentConfig {
            ingress_plans,
            max_records_per_answer: 8,
            egress_specs: OperatorEgressSpec::paper_defaults(),
            egress_scale_by_epoch: [
                (Epoch::Jan2022, 0.87),
                (Epoch::Feb2022, 0.90),
                (Epoch::Mar2022, 0.94),
                (Epoch::Apr2022, 0.97),
                (Epoch::May2022, 1.0),
            ],
            client_world: ClientWorldConfig::paper(),
            unused_akamai_pr: UnusedPrefixPlan {
                v4: 83,
                v6: 57,
                v4_pool: Ipv4Net::literal("23.0.0.0/12"),
                v6_pool: Ipv6Net::literal("2a02:26f9::/32"),
            },
            city_universe_size: 25_000,
        }
    }

    /// A configuration with the client world (and egress list) scaled down
    /// by `div` for fast tests and benches. Ingress fleets and prefix
    /// censuses keep their paper-scale values — they are small already.
    pub fn scaled(div: u64) -> DeploymentConfig {
        let mut cfg = DeploymentConfig::paper();
        cfg.client_world = cfg.client_world.scaled_down(div);
        if div > 1 {
            for spec in &mut cfg.egress_specs {
                for (_, count) in &mut spec.v4_mask_plan {
                    *count = (*count as u64 / div).max(2) as usize;
                }
                spec.v6_subnets = (spec.v6_subnets as u64 / div).max(2) as usize;
                spec.v4_bgp_prefixes = (spec.v4_bgp_prefixes as u64 / div).max(1) as usize;
                spec.v6_bgp_prefixes = (spec.v6_bgp_prefixes as u64 / div).max(1) as usize;
                spec.cities_v4 = (spec.cities_v4 as u64 / div).max(2) as usize;
                spec.cities_v6 = (spec.cities_v6 as u64 / div).max(2) as usize;
            }
            cfg.city_universe_size =
                (cfg.city_universe_size as u64 / div.min(8)).max(2_000) as usize;
        }
        cfg
    }

    /// The fleet plan for a `(domain, operator)` pair, if any.
    pub fn plan_for(&self, domain: Domain, asn: Asn) -> Option<&IngressFleetPlan> {
        self.ingress_plans
            .iter()
            .find(|p| p.domain == domain && p.asn == asn)
    }

    /// Egress-list scale factor at `epoch`.
    pub fn egress_scale(&self, epoch: Epoch) -> f64 {
        self.egress_scale_by_epoch
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, s)| *s)
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        let cfg = DeploymentConfig::paper();
        // April total ingress IPv4 addresses: 1586.
        let apr_total: usize = [Domain::MaskQuic, Domain::MaskH2]
            .iter()
            .flat_map(|d| {
                Asn::INGRESS_OPERATORS
                    .iter()
                    .filter_map(|a| cfg.plan_for(*d, *a))
            })
            .map(|p| p.size_at(Epoch::Apr2022, false))
            .sum::<usize>();
        // Default (QUIC) April: 349 + 1237 = 1586 (the headline number);
        // fallback April: 336 + 1062 = 1398 (paper: 1398).
        let default_apr: usize = Asn::INGRESS_OPERATORS
            .iter()
            .map(|a| {
                cfg.plan_for(Domain::MaskQuic, *a)
                    .unwrap()
                    .size_at(Epoch::Apr2022, false)
            })
            .sum();
        assert_eq!(default_apr, 1586);
        let fallback_apr: usize = Asn::INGRESS_OPERATORS
            .iter()
            .map(|a| {
                cfg.plan_for(Domain::MaskH2, *a)
                    .unwrap()
                    .size_at(Epoch::Apr2022, false)
            })
            .sum();
        assert_eq!(fallback_apr, 1398);
        let _ = apr_total;
    }

    #[test]
    fn ipv6_totals_match_paper() {
        let cfg = DeploymentConfig::paper();
        // April IPv6 on the default domain: 346 + 1229 = 1575.
        let v6: usize = Asn::INGRESS_OPERATORS
            .iter()
            .map(|a| {
                cfg.plan_for(Domain::MaskQuic, *a)
                    .unwrap()
                    .size_at(Epoch::Apr2022, true)
            })
            .sum();
        assert_eq!(v6, 1575);
    }

    #[test]
    fn quic_growth_is_34_percent() {
        let cfg = DeploymentConfig::paper();
        let total = |e: Epoch| -> usize {
            Asn::INGRESS_OPERATORS
                .iter()
                .map(|a| {
                    cfg.plan_for(Domain::MaskQuic, *a)
                        .unwrap()
                        .size_at(e, false)
                })
                .sum()
        };
        let jan = total(Epoch::Jan2022);
        let apr = total(Epoch::Apr2022);
        let growth = (apr as f64 - jan as f64) / jan as f64;
        assert!(
            (0.30..0.38).contains(&growth),
            "QUIC relay growth {growth:.3} not ≈ 34 %"
        );
    }

    #[test]
    fn fallback_growth_is_293_percent() {
        let cfg = DeploymentConfig::paper();
        let total = |e: Epoch| -> usize {
            Asn::INGRESS_OPERATORS
                .iter()
                .map(|a| cfg.plan_for(Domain::MaskH2, *a).unwrap().size_at(e, false))
                .sum()
        };
        // Paper: 356 (first fallback scan) → 1398 in April, +293 %.
        let feb = total(Epoch::Feb2022);
        let apr = total(Epoch::Apr2022);
        assert_eq!(feb, 356);
        assert_eq!(apr, 1398);
        let growth = (apr as f64 - feb as f64) / feb as f64;
        assert!((2.8..3.0).contains(&growth), "growth {growth:.3}");
    }

    #[test]
    fn ingress_prefix_count_is_123() {
        // §4.1: IPv4 ingress addresses lie within 123 routed BGP prefixes.
        let cfg = DeploymentConfig::paper();
        let total: usize = cfg.ingress_plans.iter().map(|p| p.v4_prefixes).sum();
        assert_eq!(total, 123);
    }

    #[test]
    fn akamai_pr_announcement_census_matches_section6() {
        let cfg = DeploymentConfig::paper();
        let egress = cfg
            .egress_specs
            .iter()
            .find(|s| s.asn == Asn::AKAMAI_PR)
            .unwrap();
        let ingress_v4: usize = cfg
            .ingress_plans
            .iter()
            .filter(|p| p.asn == Asn::AKAMAI_PR)
            .map(|p| p.v4_prefixes)
            .sum();
        let ingress_v6: usize = cfg
            .ingress_plans
            .iter()
            .filter(|p| p.asn == Asn::AKAMAI_PR)
            .map(|p| p.v6_prefixes)
            .sum();
        let announced_v4 = egress.v4_bgp_prefixes + ingress_v4 + cfg.unused_akamai_pr.v4;
        let announced_v6 = egress.v6_bgp_prefixes + ingress_v6 + cfg.unused_akamai_pr.v6;
        assert_eq!(announced_v4, 478, "announced v4");
        assert_eq!(announced_v6, 1336, "announced v6");
        let used = egress.v4_bgp_prefixes + egress.v6_bgp_prefixes + ingress_v4 + ingress_v6;
        let share = used as f64 / (announced_v4 + announced_v6) as f64;
        assert!(
            (0.915..0.93).contains(&share),
            "used-prefix share {share:.4} not ≈ 92.2 %"
        );
    }

    #[test]
    fn scaled_config_shrinks_but_keeps_fleets() {
        let cfg = DeploymentConfig::scaled(64);
        assert!(cfg.client_world.total_ases() < 1500);
        assert!(cfg.client_world.total_slash24() < 200_000);
        // Ingress fleets untouched.
        assert_eq!(
            cfg.plan_for(Domain::MaskQuic, Asn::AKAMAI_PR)
                .unwrap()
                .size_at(Epoch::Apr2022, false),
            1237
        );
    }

    #[test]
    fn client_world_arithmetic() {
        let cw = ClientWorldConfig::paper();
        assert_eq!(cw.total_ases(), 72_735);
        assert_eq!(cw.total_slash24(), 11_900_000);
        // Apple-served subnet share ≈ 69 % (§4.1).
        let apple =
            cw.apple_only_slash24 as f64 + cw.both_apple_subnet_share * cw.both_slash24 as f64;
        let share = apple / cw.total_slash24() as f64;
        assert!((0.67..0.71).contains(&share), "Apple share {share:.3}");
    }

    #[test]
    fn domains_resolve_to_names() {
        assert_eq!(Domain::MaskQuic.name().to_string(), "mask.icloud.com");
        assert_eq!(Domain::MaskH2.name().to_string(), "mask-h2.icloud.com");
        assert_eq!(Domain::MaskQuic.label(), "Default");
        assert_eq!(Domain::MaskH2.label(), "Fallback");
    }

    #[test]
    fn fleet_plan_windows() {
        let cfg = DeploymentConfig::paper();
        let plan = cfg.plan_for(Domain::MaskQuic, Asn::APPLE).unwrap();
        assert_eq!(plan.size_at(Epoch::Jan2022, false), 365);
        assert_eq!(plan.size_at(Epoch::May2022, false), 349);
        assert_eq!(plan.max_size(false), 365);
        assert_eq!(plan.max_size(true), 350);
    }

    #[test]
    fn egress_scale_monotone() {
        let cfg = DeploymentConfig::paper();
        let mut prev = 0.0;
        for e in Epoch::ALL {
            let s = cfg.egress_scale(e);
            assert!(s >= prev, "scale not monotone at {e}");
            prev = s;
        }
        assert_eq!(cfg.egress_scale(Epoch::May2022), 1.0);
        // +15 % Jan → May.
        let growth = 1.0 / cfg.egress_scale(Epoch::Jan2022) - 1.0;
        assert!((0.13..0.17).contains(&growth), "growth {growth:.3}");
    }
}
